//! `maxnvm-lint`: the repo-specific static analysis pass.
//!
//! Six rule families enforce the contracts the evaluation results rest
//! on (see DESIGN.md §11 and §16):
//!
//! - **D1 determinism** — result-affecting crates (`envm`, `encoding`,
//!   `ecc`, `dnn`, `faultsim`) must not use iteration-order-unstable
//!   containers (`HashMap`/`HashSet`), ambient randomness
//!   (`thread_rng`), or wall-clock reads (`Instant`, `SystemTime`) in
//!   library code. The one sanctioned exception — `cancel.rs` deadline
//!   checks — lives in the curated allow-list.
//! - **D2 no-panic** — library code must not call `.unwrap()`,
//!   `.expect()`, or the `panic!`-family macros; failures surface as
//!   typed errors. The `assert!` family is permitted for documented
//!   internal invariants. Direct slice indexing is reported as an
//!   advisory count only.
//! - **D3 unsafe hygiene** — every `unsafe` keyword must be covered by a
//!   `// SAFETY:` comment, and every lint escape hatch (inline allow or
//!   allow-list entry) must carry a justification, which the report
//!   prints.
//! - **S1 semantics drift** — the fingerprints of the semantics-critical
//!   modules (see [`crate::semantics`]) must match the committed
//!   `semantics.lock`; a fingerprint change without a
//!   `TRIAL_SEMANTICS_VERSION` bump (or a bump without a change) fails.
//! - **R1 panic reachability** — a crate-level call graph (see
//!   [`crate::graph`]) turns the A1 advisory into an enforced rule for
//!   the dangerous subset: fns of result-affecting crates containing
//!   arithmetic-in-bracket index expressions (`x[i + 1]`) that are
//!   reachable from the crate's `pub` API must be fixed or annotated —
//!   in release builds the arithmetic wraps, so an overflow reads a
//!   *wrong* element silently instead of panicking. Plain `x[i]` stays
//!   advisory, now with a public-reachability split per crate.
//! - **C1 event-loop hygiene** — within the supervisor's `event_loop`
//!   span and every intra-crate fn it (non-detachedly) calls: no file
//!   I/O, no `sleep`, no `recv` on anything but the loop's own channel
//!   parameter, no joining runner threads; plus a crate-wide ban on
//!   unbounded `mpsc::channel()` in the service crates (`server`,
//!   `faultsim`) in favour of `sync_channel`.
//!
//! Scope: `src/` of every workspace crate plus the root package, minus
//! `src/bin/`, `tests/`, `benches/`, `examples/`, `#[cfg(test)]` /
//! `#[test]` / `#[cfg(loom)]` items, and this xtask itself.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::graph::{analyze_file, CrateGraph, FileAnalysis, SiteKind};
use crate::scan::{find_word, scan, FileScan};
use crate::semantics;

/// Crates whose library code feeds Monte-Carlo results (rule D1).
const RESULT_AFFECTING: &[&str] = &["envm", "encoding", "ecc", "dnn", "faultsim"];

/// Identifiers banned by D1, with the sub-rule they trip.
const D1_BANNED: &[(&str, &str, &str)] = &[
    (
        "HashMap",
        "D1/hash-container",
        "iteration order is nondeterministic",
    ),
    (
        "HashSet",
        "D1/hash-container",
        "iteration order is nondeterministic",
    ),
    (
        "thread_rng",
        "D1/thread-rng",
        "ambient RNG breaks seeded reproducibility",
    ),
    (
        "Instant",
        "D1/wallclock",
        "wall-clock reads make results timing-dependent",
    ),
    (
        "SystemTime",
        "D1/wallclock",
        "wall-clock reads make results timing-dependent",
    ),
];

/// Macros banned by D2 (the `assert!` family is explicitly allowed).
const D2_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Crates under the C1 unbounded-channel ban (rule C1). Both sides of
/// the supervisor protocol: an unbounded queue hides backpressure
/// failures until memory runs out.
const C1_CRATES: &[&str] = &["server", "faultsim"];

/// The crate whose `event_loop` fn anchors the C1 traversal. The fn
/// must exist — a rename silently dropping the rule is a config error.
const EVENT_LOOP_CRATE: &str = "server";

/// One rule violation at a source location.
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    pub snippet: String,
}

/// A violation suppressed by an escape hatch; justification is printed.
pub struct Allowed {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub source: &'static str, // "inline" | "allow-list"
    pub justification: String,
}

/// One entry of the curated `lint-allow.toml`.
pub struct AllowEntry {
    pub path: String,
    pub rule: String,
    pub justification: String,
    pub used: std::cell::Cell<bool>,
}

/// Parsed `lint-allow.toml`.
pub struct AllowList {
    pub version: u64,
    pub entries: Vec<AllowEntry>,
}

/// S1 summary: the lock/tree state the gate compared.
pub struct SemanticsInfo {
    pub lock_format: u64,
    pub lock_tsv: u32,
    pub current_tsv: u32,
    pub modules: usize,
}

/// Per-crate R1 reachability statistics (advisory context for the
/// enforced findings).
pub struct ReachStat {
    pub krate: String,
    pub fns: usize,
    pub pub_fns: usize,
    pub index_plain: usize,
    pub index_plain_reachable: usize,
    pub index_arith: usize,
    pub index_arith_reachable: usize,
}

/// A rendered call path to a dangerous-but-sanctioned site: an
/// inline-allowed D2 construct or an allowed R1 hotspot. Reported so
/// reviewers see what the public API can actually reach.
pub struct PathInfo {
    pub path: String,
    pub line: usize,
    pub rule: String,
    pub call_path: String,
}

/// Full result of a lint run.
pub struct Report {
    pub version: u64,
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub allowed: Vec<Allowed>,
    /// Advisory: direct index expressions per crate (not enforced).
    pub slice_index_counts: BTreeMap<String, usize>,
    pub errors: Vec<String>,
    /// S1 state; `None` when the gate could not run (config errors).
    pub semantics: Option<SemanticsInfo>,
    /// R1 per-crate reachability statistics.
    pub reachability: Vec<ReachStat>,
    /// Call paths from pub APIs to allowed dangerous sites.
    pub allowed_paths: Vec<PathInfo>,
}

fn empty_report() -> Report {
    Report {
        version: 0,
        files_scanned: 0,
        violations: Vec::new(),
        allowed: Vec::new(),
        slice_index_counts: BTreeMap::new(),
        errors: Vec::new(),
        semantics: None,
        reachability: Vec::new(),
        allowed_paths: Vec::new(),
    }
}

/// Runs the pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> Report {
    let mut report = empty_report();

    let allow = match load_allow_list(&root.join("lint-allow.toml")) {
        Ok(a) => a,
        Err(e) => {
            report.errors.push(e);
            AllowList {
                version: 0,
                entries: Vec::new(),
            }
        }
    };
    report.version = allow.version;
    if allow.entries.len() > 5 {
        report.errors.push(format!(
            "lint-allow.toml has {} entries; the curated allow-list is capped at 5 — fix the code instead",
            allow.entries.len()
        ));
    }
    for e in &allow.entries {
        if e.justification.trim().is_empty() {
            report.errors.push(format!(
                "lint-allow.toml entry for {} has no justification",
                e.path
            ));
        }
    }

    // Per-crate caches for the graph rules: (rel, src, scan, analysis).
    let mut crate_files: BTreeMap<String, Vec<(String, String, FileScan, FileAnalysis)>> =
        BTreeMap::new();

    for file in workspace_sources(root) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                report.errors.push(format!("cannot read {rel}: {e}"));
                continue;
            }
        };
        report.files_scanned += 1;
        let fsc = scan(&src);
        lint_file(&rel, &src, &fsc, &allow, &mut report);
        if let Some(krate) = crate_of(&rel) {
            if RESULT_AFFECTING.contains(&krate) || C1_CRATES.contains(&krate) {
                let analysis = analyze_file(&rel, &fsc);
                crate_files
                    .entry(krate.to_string())
                    .or_default()
                    .push((rel, src, fsc, analysis));
            }
        }
    }

    semantics_gate(root, &mut report);
    graph_rules(&crate_files, &allow, &mut report);

    for e in &allow.entries {
        if !e.used.get() {
            report.errors.push(format!(
                "lint-allow.toml entry for {} ({}) matched nothing — remove it",
                e.path, e.rule
            ));
        }
    }
    report
}

/// S1: compare the tree's semantics-critical fingerprints against
/// `semantics.lock`, keyed by `TRIAL_SEMANTICS_VERSION`.
fn semantics_gate(root: &Path, report: &mut Report) {
    let lock_path = root.join(semantics::LOCK_FILE);
    if !lock_path.exists() {
        report.errors.push(format!(
            "{} is missing — bootstrap it with `cargo xtask lint --update-semantics-lock`",
            semantics::LOCK_FILE
        ));
        return;
    }
    let lock = match semantics::load_lock(&lock_path) {
        Ok(l) => l,
        Err(e) => {
            report.errors.push(e);
            return;
        }
    };
    let current = match semantics::current_modules(root) {
        Ok(c) => c,
        Err(e) => {
            report.errors.push(e);
            return;
        }
    };
    let cur_tsv = match semantics::trial_semantics_version(root) {
        Ok(v) => v,
        Err(e) => {
            report.errors.push(e);
            return;
        }
    };
    // Drift is never allow-listable: findings go straight to
    // violations, bypassing the escape hatches.
    for (rule, path, message) in semantics::verify(&lock, &current, cur_tsv) {
        report.violations.push(Violation {
            path,
            line: 0,
            rule,
            message,
            snippet: String::new(),
        });
    }
    report.semantics = Some(SemanticsInfo {
        lock_format: lock.format,
        lock_tsv: lock.trial_semantics_version,
        current_tsv: cur_tsv,
        modules: current.len(),
    });
}

/// R1 + C1: the call-graph rules over the cached per-crate analyses.
fn graph_rules(
    crate_files: &BTreeMap<String, Vec<(String, String, FileScan, FileAnalysis)>>,
    allow: &AllowList,
    report: &mut Report,
) {
    for (krate, files) in crate_files {
        // Assemble the crate graph; remember which file each fn and
        // each orphan site came from.
        let mut fns = Vec::new();
        let mut fn_file: Vec<usize> = Vec::new(); // fn idx -> files idx
        for (fi, (_, _, _, analysis)) in files.iter().enumerate() {
            for f in &analysis.fns {
                fns.push(f.clone());
                fn_file.push(fi);
            }
        }
        let graph = CrateGraph::build(fns);
        let pub_roots = graph.pub_roots();
        let reachable = graph.reach(&pub_roots, true);

        if RESULT_AFFECTING.contains(&krate.as_str()) {
            r1_rules(krate, files, &graph, &fn_file, &reachable, allow, report);
        }
        if C1_CRATES.contains(&krate.as_str()) {
            c1_rules(krate, files, &graph, &fn_file, allow, report);
        }
    }
}

/// R1: enforce arithmetic-index hotspots reachable from the pub API;
/// collect reachability statistics and paths to allowed D2 sites.
#[allow(clippy::too_many_arguments)]
fn r1_rules(
    krate: &str,
    files: &[(String, String, FileScan, FileAnalysis)],
    graph: &CrateGraph,
    fn_file: &[usize],
    reachable: &[Option<usize>],
    allow: &AllowList,
    report: &mut Report,
) {
    let mut stat = ReachStat {
        krate: krate.to_string(),
        fns: graph.fns.len(),
        pub_fns: graph.pub_roots().len(),
        index_plain: 0,
        index_plain_reachable: 0,
        index_arith: 0,
        index_arith_reachable: 0,
    };
    for (_, _, _, analysis) in files {
        for s in &analysis.orphan_sites {
            match s.kind {
                SiteKind::IndexPlain => stat.index_plain += 1,
                SiteKind::IndexArith => stat.index_arith += 1,
                _ => {}
            }
        }
    }
    for (i, f) in graph.fns.iter().enumerate() {
        let is_reachable = reachable[i].is_some();
        let mut arith_lines: Vec<usize> = Vec::new();
        for s in &f.sites {
            match s.kind {
                SiteKind::IndexPlain => {
                    stat.index_plain += 1;
                    if is_reachable {
                        stat.index_plain_reachable += 1;
                    }
                }
                SiteKind::IndexArith => {
                    stat.index_arith += 1;
                    if is_reachable {
                        stat.index_arith_reachable += 1;
                        arith_lines.push(s.line);
                    }
                }
                _ => {}
            }
        }
        if arith_lines.is_empty() {
            continue;
        }
        arith_lines.dedup();
        let call_path = graph.path_to(reachable, i);
        let (rel, src, fsc, _) = &files[fn_file[i]];
        let n_before = report.allowed.len();
        // Attributed at the fn signature so one fn-level annotation
        // covers every hotspot in the body.
        record(
            report,
            fsc,
            allow,
            rel,
            f.line,
            "R1/index-arith",
            format!(
                "fn `{}` computes indices arithmetically ({}) and is reachable from the pub API \
                 via `{}`; release-mode wrap makes an overflow read the wrong element silently — \
                 bound the arithmetic or annotate the fn",
                f.name,
                lines_list(&arith_lines),
                call_path,
            ),
            src,
        );
        if report.allowed.len() > n_before {
            report.allowed_paths.push(PathInfo {
                path: rel.clone(),
                line: f.line,
                rule: "R1/index-arith".to_string(),
                call_path: call_path.clone(),
            });
        }
    }
    // Paths to D2 sites that were inline-allowed earlier in this run:
    // the allow suppresses the violation, the path stays visible.
    let mut d2_paths = Vec::new();
    for a in &report.allowed {
        if !a.rule.starts_with("D2") || crate_of(&a.path) != Some(krate) {
            continue;
        }
        let Some(i) = graph
            .fns
            .iter()
            .position(|f| f.file == a.path && f.line <= a.line && a.line <= f.end_line)
        else {
            continue;
        };
        if reachable[i].is_some() {
            d2_paths.push(PathInfo {
                path: a.path.clone(),
                line: a.line,
                rule: a.rule.to_string(),
                call_path: graph.path_to(reachable, i),
            });
        }
    }
    report.allowed_paths.extend(d2_paths);
    report.reachability.push(stat);
}

/// C1: event-loop hygiene in the supervisor plus the crate-wide
/// unbounded-channel ban.
fn c1_rules(
    krate: &str,
    files: &[(String, String, FileScan, FileAnalysis)],
    graph: &CrateGraph,
    fn_file: &[usize],
    allow: &AllowList,
    report: &mut Report,
) {
    // Crate-wide: unbounded channels (fn bodies and item position,
    // detached or not — a runner-side unbounded queue is just as
    // unbounded).
    for (i, f) in graph.fns.iter().enumerate() {
        for s in &f.sites {
            if s.kind == SiteKind::UnboundedChannel {
                let (rel, src, fsc, _) = &files[fn_file[i]];
                record(
                    report,
                    fsc,
                    allow,
                    rel,
                    s.line,
                    "C1/unbounded-channel",
                    "unbounded `mpsc::channel()` in a service crate; use `sync_channel` so \
                     backpressure surfaces instead of growing the queue"
                        .to_string(),
                    src,
                );
            }
        }
    }
    for (fi, (rel, src, fsc, analysis)) in files.iter().enumerate() {
        let _ = fi;
        for s in &analysis.orphan_sites {
            if s.kind == SiteKind::UnboundedChannel {
                record(
                    report,
                    fsc,
                    allow,
                    rel,
                    s.line,
                    "C1/unbounded-channel",
                    "unbounded `mpsc::channel()` in a service crate; use `sync_channel` so \
                     backpressure surfaces instead of growing the queue"
                        .to_string(),
                    src,
                );
            }
        }
    }

    // Event-loop traversal only anchors in the supervisor's crate.
    if krate != EVENT_LOOP_CRATE {
        return;
    }
    let roots: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name == "event_loop")
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        report.errors.push(format!(
            "C1: no `event_loop` fn found in crate `{krate}` — the hygiene rule has nothing to \
             anchor on (renamed? update EVENT_LOOP_CRATE/lint)",
        ));
        return;
    }
    // The channels the loop may legitimately block on: its own
    // Receiver-typed parameters.
    let mut loop_receivers: Vec<String> = Vec::new();
    for &r in &roots {
        loop_receivers.extend(graph.fns[r].receiver_params.iter().cloned());
    }
    // Detached call edges are NOT followed: runner-thread code is not
    // loop code.
    let in_loop = graph.reach(&roots, false);
    for (i, f) in graph.fns.iter().enumerate() {
        if in_loop[i].is_none() {
            continue;
        }
        let call_path = graph.path_to(&in_loop, i);
        let (rel, src, fsc, _) = &files[fn_file[i]];
        for s in &f.sites {
            if s.detached {
                continue; // runs on a runner thread, not the loop
            }
            let (rule, message) = match &s.kind {
                SiteKind::Sleep => (
                    "C1/sleep",
                    format!("`sleep` on the event-loop thread (via `{call_path}`); block on the loop channel's timeout instead"),
                ),
                SiteKind::BlockingIo => (
                    "C1/blocking-io",
                    format!("file I/O on the event-loop thread (via `{call_path}`); move it to a runner thread or do it before the loop starts"),
                ),
                SiteKind::Join => (
                    "C1/thread-join",
                    format!("thread join on the event-loop thread (via `{call_path}`); joining a live runner stalls every stream"),
                ),
                SiteKind::Recv { receiver, method } => {
                    let own = loop_receivers.iter().any(|r| r == receiver)
                        || f.receiver_params.iter().any(|r| r == receiver);
                    if own {
                        continue;
                    }
                    (
                        "C1/foreign-recv",
                        format!("`.{method}()` on `{receiver}`, which is not the loop's own channel (via `{call_path}`); a foreign recv deadlocks the loop"),
                    )
                }
                _ => continue,
            };
            record(report, fsc, allow, rel, s.line, rule, message, src);
        }
    }
}

fn lines_list(lines: &[usize]) -> String {
    let mut out = String::from(if lines.len() == 1 { "line " } else { "lines " });
    for (i, l) in lines.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{l}");
    }
    out
}

/// Library sources under `crates/*/src` and the root `src/`, minus
/// `src/bin/` and the xtask crate itself.
fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() && p.file_name().is_some_and(|n| n != "xtask") {
                dirs.push(p.join("src"));
            }
        }
    }
    while let Some(dir) = dirs.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n != "bin") {
                    dirs.push(p);
                }
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

/// Crate name for a repo-relative path, or `None` for the root package.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

fn is_result_affecting(rel: &str) -> bool {
    crate_of(rel).is_some_and(|c| RESULT_AFFECTING.contains(&c))
}

fn lint_file(rel: &str, src: &str, fs: &FileScan, allow: &AllowList, report: &mut Report) {
    let d1 = is_result_affecting(rel);
    let mut slice_indexes = 0usize;

    for (idx, line) in fs.code.iter().enumerate() {
        if fs.excluded[idx] {
            continue;
        }
        let lineno = idx + 1;
        let mut emit = |rule: &'static str, message: String| {
            record(report, fs, allow, rel, lineno, rule, message, src);
        };

        if d1 {
            for (ident, rule, why) in D1_BANNED {
                if !find_word(line, ident).is_empty() {
                    emit(rule, format!("`{ident}` in result-affecting crate: {why}"));
                }
            }
        }

        for at in find_word(line, "unwrap") {
            if called_as_method(line, at, "unwrap") {
                emit(
                    "D2/unwrap",
                    "`.unwrap()` in library code; use a typed error or a total rewrite".into(),
                );
            }
        }
        for at in find_word(line, "expect") {
            if called_as_method(line, at, "expect") {
                emit(
                    "D2/expect",
                    "`.expect()` in library code; use a typed error or a total rewrite".into(),
                );
            }
        }
        for mac in D2_MACROS {
            for at in find_word(line, mac) {
                let rest = line[at + mac.len()..].trim_start();
                if rest.starts_with('!') {
                    emit(
                        "D2/panic",
                        format!("`{mac}!` in library code; surface a typed error"),
                    );
                }
            }
        }

        for at in find_word(line, "unsafe") {
            let _ = at;
            if !has_safety_comment(fs, idx) {
                emit(
                    "D3/safety-comment",
                    "`unsafe` without a `// SAFETY:` comment in the preceding lines".into(),
                );
            }
        }

        slice_indexes += count_index_exprs(line);
    }

    if slice_indexes > 0 {
        let key = crate_of(rel).unwrap_or("(root)").to_string();
        *report.slice_index_counts.entry(key).or_insert(0) += slice_indexes;
    }
}

/// Records a violation, routing it through the escape hatches first.
#[allow(clippy::too_many_arguments)]
fn record(
    report: &mut Report,
    fs: &FileScan,
    allow: &AllowList,
    rel: &str,
    lineno: usize,
    rule: &'static str,
    message: String,
    src: &str,
) {
    if let Some(justification) = inline_allow(fs, lineno, rule) {
        if justification.is_empty() {
            report.violations.push(Violation {
                path: rel.to_string(),
                line: lineno,
                rule: "D3/allow-justification",
                message: format!("inline allow for {rule} has no justification text"),
                snippet: snippet(src, lineno),
            });
        } else {
            report.allowed.push(Allowed {
                path: rel.to_string(),
                line: lineno,
                rule,
                source: "inline",
                justification,
            });
        }
        return;
    }
    for entry in &allow.entries {
        if entry.path == rel && rule.starts_with(entry.rule.as_str()) {
            entry.used.set(true);
            report.allowed.push(Allowed {
                path: rel.to_string(),
                line: lineno,
                rule,
                source: "allow-list",
                justification: entry.justification.clone(),
            });
            return;
        }
    }
    report.violations.push(Violation {
        path: rel.to_string(),
        line: lineno,
        rule,
        message,
        snippet: snippet(src, lineno),
    });
}

/// Is the identifier at byte offset `at` a method call `.name(`?
fn called_as_method(line: &str, at: usize, name: &str) -> bool {
    let before = line[..at].trim_end();
    if !before.ends_with('.') {
        return false;
    }
    let after = line[at + name.len()..].trim_start();
    after.starts_with('(')
}

/// Looks for `// SAFETY:` on the same line or within the 10 preceding
/// lines (attributes and the `unsafe` item header may sit in between).
fn has_safety_comment(fs: &FileScan, idx: usize) -> bool {
    let lo = idx.saturating_sub(10);
    fs.comments[lo..=idx].iter().any(|c| c.contains("SAFETY:"))
}

/// Parses `maxnvm-lint: allow(rule): justification` on the violation
/// line or the immediately preceding comment lines. Returns the
/// justification (possibly empty) when the rule matches.
fn inline_allow(fs: &FileScan, lineno: usize, rule: &str) -> Option<String> {
    let idx = lineno - 1;
    let lo = idx.saturating_sub(3);
    for c in fs.comments[lo..=idx].iter().rev() {
        let Some(pos) = c.find("maxnvm-lint: allow(") else {
            continue;
        };
        let rest = &c[pos + "maxnvm-lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let allowed_rule = rest[..close].trim();
        if !rule.starts_with(allowed_rule) {
            continue;
        }
        let just = rest[close + 1..]
            .trim_start_matches([':', ' ', '-', '—', '–'])
            .trim()
            .to_string();
        return Some(just);
    }
    None
}

/// Advisory: counts `expr[...]` index expressions (`name[`, `)[`, `][`).
fn count_index_exprs(line: &str) -> usize {
    let bytes = line.as_bytes();
    let mut n = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if crate::scan::is_ident_char(prev) || prev == ')' || prev == ']' {
            // Attributes (`#[...]`) never match: prev is `#` or `!` there.
            n += 1;
        }
    }
    n
}

fn snippet(src: &str, lineno: usize) -> String {
    src.lines()
        .nth(lineno - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

/// Minimal parser for the subset of TOML `lint-allow.toml` uses:
/// a top-level `version = N` and `[[allow]]` tables of string keys.
pub fn load_allow_list(path: &Path) -> Result<AllowList, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut version = 0u64;
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut in_allow = false;
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(AllowEntry {
                path: String::new(),
                rule: String::new(),
                justification: String::new(),
                used: std::cell::Cell::new(false),
            });
            in_allow = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint-allow.toml:{}: expected `key = value`", n + 1));
        };
        let key = key.trim();
        let value = value.trim().trim_matches('"').to_string();
        if !in_allow {
            if key == "version" {
                version = value.parse().map_err(|_| {
                    format!("lint-allow.toml:{}: version must be an integer", n + 1)
                })?;
            }
            continue;
        }
        let entry = entries
            .last_mut()
            .ok_or_else(|| format!("lint-allow.toml:{}: key outside [[allow]]", n + 1))?;
        match key {
            "path" => entry.path = value,
            "rule" => entry.rule = value,
            "justification" => entry.justification = value,
            other => {
                return Err(format!("lint-allow.toml:{}: unknown key {other:?}", n + 1));
            }
        }
    }
    Ok(AllowList { version, entries })
}

impl Report {
    /// Non-empty violations or configuration errors fail the run.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "maxnvm-lint v{} — D1 determinism, D2 no-panic, D3 unsafe hygiene, \
             S1 semantics drift, R1 panic reachability, C1 event-loop hygiene",
            self.version
        );
        for v in &self.violations {
            let _ = writeln!(out, "error[{}]: {}", v.rule, v.message);
            if v.line == 0 {
                let _ = writeln!(out, "  --> {}", v.path);
            } else {
                let _ = writeln!(out, "  --> {}:{}", v.path, v.line);
            }
            if !v.snippet.is_empty() {
                let _ = writeln!(out, "   | {}", v.snippet);
            }
        }
        for e in &self.errors {
            let _ = writeln!(out, "error[config]: {e}");
        }
        if !self.allowed.is_empty() {
            let _ = writeln!(out, "allowed ({}):", self.allowed.len());
            for a in &self.allowed {
                let _ = writeln!(
                    out,
                    "  {}:{} [{}] ({}): {}",
                    a.path, a.line, a.rule, a.source, a.justification
                );
            }
        }
        if let Some(s) = &self.semantics {
            let _ = writeln!(
                out,
                "semantics: lock v{} @ TRIAL_SEMANTICS_VERSION {} — {} module(s), tree at version {}",
                s.lock_format, s.lock_tsv, s.modules, s.current_tsv
            );
        }
        for r in &self.reachability {
            let _ = writeln!(
                out,
                "advisory[R1/reach]: {}: {}/{} fn(s) pub, {} plain index site(s) ({} pub-reachable), {} arithmetic ({} pub-reachable, enforced)",
                r.krate,
                r.pub_fns,
                r.fns,
                r.index_plain,
                r.index_plain_reachable,
                r.index_arith,
                r.index_arith_reachable
            );
        }
        for (krate, n) in &self.slice_index_counts {
            let _ = writeln!(
                out,
                "advisory[A1/slice-index]: {krate}: {n} direct index expressions (not enforced; panics on out-of-range)"
            );
        }
        let _ = writeln!(
            out,
            "summary: {} violation(s), {} allowed, {} file(s) scanned",
            self.violations.len() + self.errors.len(),
            self.allowed.len(),
            self.files_scanned
        );
        out
    }

    /// Violation + allow counts per rule, for the JSON report and the
    /// bench provenance stamp.
    pub fn rule_counts(&self) -> BTreeMap<String, (usize, usize)> {
        let mut counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for v in &self.violations {
            counts.entry(v.rule.to_string()).or_default().0 += 1;
        }
        for a in &self.allowed {
            counts.entry(a.rule.to_string()).or_default().1 += 1;
        }
        counts
    }

    /// Machine-readable JSON report (schema v2: adds `rule_counts`,
    /// `semantics`, `reachability`, and `allowed_paths`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"maxnvm-lint-report/v2\",");
        let _ = writeln!(out, "  \"lint_pass_version\": {},", self.version);
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        match &self.semantics {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "  \"semantics\": {{\"lock_format\": {}, \"lock_trial_semantics_version\": {}, \"current_trial_semantics_version\": {}, \"modules\": {}}},",
                    s.lock_format, s.lock_tsv, s.current_tsv, s.modules
                );
            }
            None => {
                let _ = writeln!(out, "  \"semantics\": null,");
            }
        }
        out.push_str("  \"rule_counts\": {\n");
        let counts = self.rule_counts();
        for (i, (rule, (viols, allowed))) in counts.iter().enumerate() {
            let _ = write!(
                out,
                "    {}: {{\"violations\": {viols}, \"allowed\": {allowed}}}",
                json_str(rule)
            );
            out.push_str(if i + 1 < counts.len() { ",\n" } else { "\n" });
        }
        out.push_str("  },\n");
        out.push_str("  \"reachability\": [\n");
        for (i, r) in self.reachability.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"crate\": {}, \"fns\": {}, \"pub_fns\": {}, \"index_plain\": {}, \"index_plain_reachable\": {}, \"index_arith\": {}, \"index_arith_reachable\": {}}}",
                json_str(&r.krate),
                r.fns,
                r.pub_fns,
                r.index_plain,
                r.index_plain_reachable,
                r.index_arith,
                r.index_arith_reachable
            );
            out.push_str(if i + 1 < self.reachability.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"allowed_paths\": [\n");
        for (i, p) in self.allowed_paths.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"call_path\": {}}}",
                json_str(&p.path),
                p.line,
                json_str(&p.rule),
                json_str(&p.call_path)
            );
            out.push_str(if i + 1 < self.allowed_paths.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&v.path),
                v.line,
                json_str(v.rule),
                json_str(&v.message)
            );
            out.push_str(if i + 1 < self.violations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"allowed\": [\n");
        for (i, a) in self.allowed.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"source\": {}, \"justification\": {}}}",
                json_str(&a.path),
                a.line,
                json_str(a.rule),
                json_str(a.source),
                json_str(&a.justification)
            );
            out.push_str(if i + 1 < self.allowed.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"config_errors\": [\n");
        for (i, e) in self.errors.iter().enumerate() {
            let _ = write!(out, "    {}", json_str(e));
            out.push_str(if i + 1 < self.errors.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"advisory_slice_index\": {\n");
        let total = self.slice_index_counts.len();
        for (i, (krate, n)) in self.slice_index_counts.iter().enumerate() {
            let _ = write!(out, "    {}: {}", json_str(krate), n);
            out.push_str(if i + 1 < total { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, src: &str) -> Report {
        let mut report = empty_report();
        report.version = 2;
        report.files_scanned = 1;
        let allow = AllowList {
            version: 2,
            entries: Vec::new(),
        };
        lint_file(rel, src, &scan(src), &allow, &mut report);
        report
    }

    /// Runs the full graph-rule pass over in-memory files of one crate.
    fn graph_str(krate: &str, files: &[(&str, &str)]) -> Report {
        let mut report = empty_report();
        report.version = 2;
        let allow = AllowList {
            version: 2,
            entries: Vec::new(),
        };
        let mut crate_files: BTreeMap<String, Vec<(String, String, FileScan, FileAnalysis)>> =
            BTreeMap::new();
        for (rel, src) in files {
            let fsc = scan(src);
            let analysis = analyze_file(rel, &fsc);
            crate_files.entry(krate.to_string()).or_default().push((
                rel.to_string(),
                src.to_string(),
                fsc,
                analysis,
            ));
        }
        graph_rules(&crate_files, &allow, &mut report);
        report
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let r = lint_str(
            "crates/envm/src/x.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "D2/unwrap");
        assert_eq!(r.violations[0].line, 1);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let r = lint_str(
            "crates/envm/src/x.rs",
            "fn f(x: Option<u8>) { x.unwrap_or(0); }\n",
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { None::<u8>.unwrap(); }\n}\n";
        let r = lint_str("crates/envm/src/x.rs", src);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn hashmap_flagged_only_in_result_affecting_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_str("crates/envm/src/x.rs", src).violations.len(), 1);
        assert!(lint_str("crates/nvsim/src/x.rs", src).violations.is_empty());
    }

    #[test]
    fn assert_family_is_allowed() {
        let src = "fn f(n: usize) { assert!(n > 0); debug_assert_eq!(n, n); }\n";
        assert!(lint_str("crates/ecc/src/x.rs", src).violations.is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        let src = "fn f() { unreachable!(); }\n";
        let r = lint_str("crates/dnn/src/x.rs", src);
        assert_eq!(r.violations[0].rule, "D2/panic");
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { core() } }\n";
        let good = "// SAFETY: scope guard joins before return.\nfn f() { unsafe { core() } }\n";
        assert_eq!(
            lint_str("crates/faultsim/src/x.rs", bad).violations[0].rule,
            "D3/safety-comment"
        );
        assert!(lint_str("crates/faultsim/src/x.rs", good)
            .violations
            .is_empty());
    }

    #[test]
    fn inline_allow_with_justification_suppresses() {
        let src = "fn f(x: Option<u8>) {\n  // maxnvm-lint: allow(D2/unwrap): cannot fail, slot filled above\n  x.unwrap();\n}\n";
        let r = lint_str("crates/envm/src/x.rs", src);
        assert!(r.violations.is_empty());
        assert_eq!(r.allowed.len(), 1);
        assert!(r.allowed[0].justification.contains("cannot fail"));
    }

    #[test]
    fn inline_allow_without_justification_is_a_violation() {
        let src = "// maxnvm-lint: allow(D2/unwrap)\nfn f(x: Option<u8>) { x.unwrap(); }\n";
        let r = lint_str("crates/envm/src/x.rs", src);
        assert_eq!(r.violations[0].rule, "D3/allow-justification");
    }

    #[test]
    fn banned_names_in_strings_and_comments_do_not_fire() {
        let src = "fn f() -> &'static str { \"HashMap Instant unwrap()\" } // thread_rng\n";
        assert!(lint_str("crates/envm/src/x.rs", src).violations.is_empty());
    }

    #[test]
    fn sparse_modules_are_in_the_d1_scan() {
        // The sparse compute format is result-affecting end to end: the
        // walk-built matrices, the sparse GEMM, and the prefix cache all
        // feed Monte-Carlo error rates. Lock them into the D1 scan so a
        // module move can't silently drop them from enforcement.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files: Vec<String> = workspace_sources(&root)
            .iter()
            .map(|p| {
                p.strip_prefix(&root)
                    .unwrap_or(p)
                    .to_string_lossy()
                    .replace('\\', "/")
            })
            .collect();
        for rel in [
            "crates/dnn/src/sparse.rs",
            "crates/dnn/src/gemm.rs",
            "crates/dnn/src/gemm/dispatch.rs",
            "crates/dnn/src/gemm/kernel_x86.rs",
            "crates/dnn/src/gemm/kernel_neon.rs",
            "crates/dnn/src/prefix.rs",
            "crates/encoding/src/storage/prepared.rs",
            "crates/faultsim/src/evaluate.rs",
        ] {
            assert!(
                files.iter().any(|f| f == rel),
                "{rel} missing from the lint scan"
            );
            assert!(is_result_affecting(rel), "{rel} exempt from D1");
        }
        let r = lint_str(
            "crates/dnn/src/sparse.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "D1/hash-container");
    }

    #[test]
    fn server_and_checkpoint_modules_have_the_right_scan_status() {
        // The checkpoint substrate (stores, retry, parsing) feeds
        // resumed campaign results, so it must stay under the full D1
        // scan. The supervisor crate is service plumbing — its watchdog
        // legitimately reads wall clocks — so it must be *in* the scan
        // (D2 no-panic still applies) but *not* result-affecting.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files: Vec<String> = workspace_sources(&root)
            .iter()
            .map(|p| {
                p.strip_prefix(&root)
                    .unwrap_or(p)
                    .to_string_lossy()
                    .replace('\\', "/")
            })
            .collect();
        for rel in [
            "crates/faultsim/src/checkpoint.rs",
            "crates/faultsim/src/engine/shard.rs",
            "crates/encoding/src/storage/cache.rs",
            "crates/encoding/src/storage/diskcache.rs",
            "crates/server/src/supervisor.rs",
            "crates/server/src/config.rs",
            "crates/server/src/job.rs",
        ] {
            assert!(
                files.iter().any(|f| f == rel),
                "{rel} missing from the lint scan"
            );
        }
        assert!(is_result_affecting("crates/faultsim/src/checkpoint.rs"));
        // Shard assignment decides which RNG streams execute where, and
        // the disk cache feeds decoded artifacts straight into trials —
        // both stay under the full D1 determinism scan.
        assert!(is_result_affecting("crates/faultsim/src/engine/shard.rs"));
        assert!(is_result_affecting(
            "crates/encoding/src/storage/diskcache.rs"
        ));
        assert!(!is_result_affecting("crates/server/src/supervisor.rs"));
        // D2 holds for the server crate even though it is D1-exempt.
        let r = lint_str(
            "crates/server/src/supervisor.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "D2/unwrap");
        // And Instant stays banned where it matters: the checkpoint
        // module retries with Duration arithmetic only.
        let r = lint_str(
            "crates/faultsim/src/checkpoint.rs",
            "use std::time::Instant;\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "D1/wallclock");
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let r = lint_str(
            "crates/envm/src/x.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        let j = r.render_json();
        assert!(j.contains("\"schema\": \"maxnvm-lint-report/v2\""));
        assert!(j.contains("\"rule\": \"D2/unwrap\""));
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\"rule_counts\""));
        assert!(j.contains("\"D2/unwrap\": {\"violations\": 1, \"allowed\": 0}"));
    }

    #[test]
    fn r1_flags_reachable_arithmetic_index_fns() {
        let r = graph_str(
            "dnn",
            &[(
                "crates/dnn/src/x.rs",
                "pub fn api(x: &[f32], i: usize) -> f32 { inner(x, i) }\n\
                 fn inner(x: &[f32], i: usize) -> f32 { x[i * 4 + 1] }\n\
                 fn dead(x: &[f32], i: usize) -> f32 { x[i + 2] }\n",
            )],
        );
        assert_eq!(r.violations.len(), 1, "only the reachable fn is enforced");
        assert_eq!(r.violations[0].rule, "R1/index-arith");
        assert_eq!(r.violations[0].line, 2);
        assert!(r.violations[0].message.contains("api -> inner"));
        let stat = &r.reachability[0];
        assert_eq!(stat.index_arith, 2);
        assert_eq!(stat.index_arith_reachable, 1);
    }

    #[test]
    fn r1_inline_allow_suppresses_and_reports_the_path() {
        let r = graph_str(
            "dnn",
            &[(
                "crates/dnn/src/x.rs",
                "// maxnvm-lint: allow(R1/index-arith): i < len/4 by construction\n\
                 pub fn api(x: &[f32], i: usize) -> f32 { x[i * 4] }\n",
            )],
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.allowed.len(), 1);
        assert_eq!(r.allowed_paths.len(), 1);
        assert_eq!(r.allowed_paths[0].rule, "R1/index-arith");
    }

    #[test]
    fn plain_indexing_stays_advisory() {
        let r = graph_str(
            "dnn",
            &[(
                "crates/dnn/src/x.rs",
                "pub fn api(x: &[f32], i: usize) -> f32 { x[i] }\n",
            )],
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.reachability[0].index_plain, 1);
        assert_eq!(r.reachability[0].index_plain_reachable, 1);
    }

    #[test]
    fn c1_event_loop_hygiene_bans_blocking_constructs() {
        let src = "\
use std::sync::mpsc::Receiver;
pub fn event_loop(rx: Receiver<u32>) {
    let _ = rx.recv_timeout(tick);
    helper();
}
fn helper() {
    let _ = std::fs::read(\"x\");
    other_rx.recv();
}
";
        let r = graph_str("server", &[("crates/server/src/supervisor.rs", src)]);
        let rules: Vec<&str> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"C1/blocking-io"), "rules: {rules:?}");
        assert!(rules.contains(&"C1/foreign-recv"), "rules: {rules:?}");
        // The loop's own recv_timeout is fine.
        assert!(!r
            .violations
            .iter()
            .any(|v| v.rule == "C1/foreign-recv" && v.line == 3));
    }

    #[test]
    fn c1_spawned_runner_code_is_exempt() {
        let src = "\
pub fn event_loop(rx: Receiver<u32>) {
    let _ = rx.recv_timeout(tick);
    std::thread::Builder::new().spawn(move || {
        run_stream();
    });
}
fn run_stream() {
    let _ = std::fs::read(\"x\");
    std::thread::sleep(d);
}
";
        let r = graph_str("server", &[("crates/server/src/supervisor.rs", src)]);
        assert!(
            r.violations.is_empty(),
            "runner-thread code is not loop code: {:?}",
            r.violations
                .iter()
                .map(|v| (v.rule, v.line))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn c1_unbounded_channel_is_banned_in_service_crates() {
        let src = "pub fn wire() { let (tx, rx) = std::sync::mpsc::channel(); }\n";
        let r = graph_str("faultsim", &[("crates/faultsim/src/x.rs", src)]);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "C1/unbounded-channel");
        // `sync_channel` is the sanctioned spelling.
        let ok = "pub fn wire() { let (tx, rx) = std::sync::mpsc::sync_channel(8); }\n";
        let r = graph_str("server", &[("crates/server/src/x.rs", ok)]);
        // (missing event_loop is a config error in the server crate,
        // but the channel itself is clean)
        assert!(r.violations.is_empty());
    }

    #[test]
    fn c1_missing_event_loop_is_a_config_error() {
        let r = graph_str("server", &[("crates/server/src/x.rs", "pub fn api() {}\n")]);
        assert!(r.errors.iter().any(|e| e.contains("event_loop")));
    }
}
