/root/repo/target/debug/examples/model_update-4987dece22c3fbec.d: examples/model_update.rs Cargo.toml

/root/repo/target/debug/examples/libmodel_update-4987dece22c3fbec.rmeta: examples/model_update.rs Cargo.toml

examples/model_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
