/root/repo/target/debug/deps/recurrent-db47f68e35cc1748.d: tests/recurrent.rs Cargo.toml

/root/repo/target/debug/deps/librecurrent-db47f68e35cc1748.rmeta: tests/recurrent.rs Cargo.toml

tests/recurrent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
