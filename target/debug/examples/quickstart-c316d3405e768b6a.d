/root/repo/target/debug/examples/quickstart-c316d3405e768b6a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c316d3405e768b6a: examples/quickstart.rs

examples/quickstart.rs:
