//! Quickstart: run the full MaxNVM co-design pipeline for one model and
//! technology and print the resulting design point.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use maxnvm::{baseline_design, optimal_design, CellTechnology, NvdlaConfig};
use maxnvm_dnn::zoo;

fn main() {
    // 1. Pick a model from the paper's zoo (Table 2) and a technology.
    let model = zoo::resnet50();
    let tech = CellTechnology::MlcCtt;
    println!(
        "Model: {} ({}, {} weight layers, {:.1}M parameters)",
        model.name,
        model.dataset,
        model.layers.len(),
        model.params() as f64 / 1e6
    );

    // 2. Run the pipeline: prune/cluster targets from Table 2, exhaustive
    //    encoding x bits-per-cell x protection exploration under the
    //    calibrated fault model, then array + system characterization.
    let design = optimal_design(&model, tech).expect("design");
    println!("\nOptimal on-chip storage ({}):", tech.name());
    println!("  encoding            {}", design.scheme_label);
    println!("  max bits per cell   {}", design.max_bits_per_cell);
    println!("  memory cells        {:.1}M", design.cells as f64 / 1e6);
    println!("  capacity            {:.1} MB", design.capacity_mb);
    println!("  macro area          {:.2} mm2", design.array.area_mm2);
    println!(
        "  read latency        {:.2} ns",
        design.array.read_latency_ns
    );
    println!(
        "  est. error          {:.2}% (bound {:.2}%)",
        design.mean_error * 100.0,
        (model.paper.classification_error + model.paper.itn_bound) * 100.0
    );

    // 3. Compare the resulting system against the DRAM baseline (Fig. 9).
    let base = baseline_design(&model, &NvdlaConfig::nvdla_64());
    let ours = &design.system_64;
    println!("\nNVDLA-64 system comparison (DRAM baseline vs on-chip eNVM):");
    println!(
        "  energy/inference    {:.2} mJ -> {:.2} mJ  ({:.1}x)",
        base.energy_per_inference_mj,
        ours.energy_per_inference_mj,
        base.energy_per_inference_mj / ours.energy_per_inference_mj
    );
    println!(
        "  average power       {:.0} mW -> {:.0} mW  ({:.1}x)",
        base.avg_power_mw,
        ours.avg_power_mw,
        base.avg_power_mw / ours.avg_power_mw
    );
    println!("  frames per second   {:.1} -> {:.1}", base.fps, ours.fps);
    println!(
        "\nRewriting all weights would take {:.1} minutes of {} programming.",
        design.write_time_s / 60.0,
        tech.name()
    );
}
