/root/repo/target/debug/deps/pipeline-966a1b442db288a5.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-966a1b442db288a5.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
