/root/repo/target/debug/deps/rand-cec2db056c7293e5.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-cec2db056c7293e5: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
