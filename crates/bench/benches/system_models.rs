//! Criterion benchmarks for the system-model layers: the NVSim-style
//! array sweep, the NVDLA evaluation, the spec-level design-space
//! exploration (the engine behind Fig. 6 / Table 4), and the hybrid
//! partition sweep (Fig. 11).

use criterion::{criterion_group, criterion_main, Criterion};
use maxnvm::{baseline_design, optimal_design, CellTechnology, NvdlaConfig};
use maxnvm_dnn::zoo;
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::SenseAmp;
use maxnvm_faultsim::dse::explore_spec;
use maxnvm_nvdla::hybrid::sweep_hybrid;
use maxnvm_nvdla::perf::encoded_weight_bytes;
use maxnvm_nvsim::{characterize, sweep, ArrayRequest, OptTarget};

fn bench_nvsim(c: &mut Criterion) {
    let req = ArrayRequest::new(CellTechnology::MlcCtt, 90_000_000, 3);
    c.bench_function("nvsim_sweep_90M_cells", |b| b.iter(|| sweep(&req)));
    c.bench_function("nvsim_characterize_edp", |b| {
        b.iter(|| characterize(&req, OptTarget::ReadEdp))
    });
}

fn bench_nvdla(c: &mut Criterion) {
    let model = zoo::resnet50();
    let cfg = NvdlaConfig::nvdla_1024();
    c.bench_function("nvdla_evaluate_resnet50", |b| {
        b.iter(|| baseline_design(&model, &cfg))
    });
}

fn bench_dse(c: &mut Criterion) {
    let spec = zoo::resnet50();
    let sa = SenseAmp::paper_default();
    c.bench_function("dse_explore_spec_resnet50", |b| {
        b.iter(|| explore_spec(&spec, CellTechnology::MlcCtt, &sa, spec.paper.itn_bound))
    });
    c.bench_function("full_pipeline_resnet50_ctt", |b| {
        b.iter(|| optimal_design(&spec, CellTechnology::MlcCtt).expect("design"))
    });
}

fn bench_hybrid(c: &mut Criterion) {
    let model = zoo::vgg16();
    let bytes = encoded_weight_bytes(&model, EncodingKind::Csr, false);
    c.bench_function("hybrid_sweep_vgg16_5pts", |b| {
        b.iter(|| {
            sweep_hybrid(
                &model,
                &NvdlaConfig::nvdla_1024(),
                CellTechnology::MlcCtt,
                3,
                1.0,
                &bytes,
                &[0.0, 0.25, 0.5, 0.75, 0.9],
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_nvsim, bench_nvdla, bench_dse, bench_hybrid
}
criterion_main!(benches);
