/root/repo/target/debug/deps/maxnvm_bench-075f71a03201ebae.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_bench-075f71a03201ebae.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_bench-075f71a03201ebae.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
