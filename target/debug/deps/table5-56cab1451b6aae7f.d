/root/repo/target/debug/deps/table5-56cab1451b6aae7f.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-56cab1451b6aae7f: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
