//! The [`StructureCodec`] seam: every decode path — clean control arm,
//! Monte-Carlo fault injection, Fig. 5 isolated injection, and
//! programmed-chip readback — supplies read cell levels through this one
//! trait, so alignment recovery, ECC, and centroid mapping live in a
//! single core ([`super::StoredLayer::decode_with_codec`]).

use super::structure::StoredStructure;
use crate::StructureKind;
use maxnvm_envm::{FaultMap, MlcConfig};
use rand::Rng;
use std::borrow::Cow;
use std::sync::Arc;

/// Supplies the cell levels "read back" for each stored structure.
///
/// `read` is called once per structure, in storage order. The returned
/// count is the number of cells whose read level differs from the
/// programmed level (fault accounting for
/// [`super::DecodeStats::cell_faults`]). Borrowing fault-free reads via
/// [`Cow::Borrowed`] keeps the clean path allocation-free.
pub trait StructureCodec {
    /// Produce the read levels for structure number `index`.
    fn read<'s>(&mut self, index: usize, structure: &'s StoredStructure) -> (Cow<'s, [u8]>, usize);
}

/// Reads every cell back exactly as programmed (sanity/control arm).
#[derive(Debug, Default, Clone, Copy)]
pub struct CleanCodec;

impl StructureCodec for CleanCodec {
    fn read<'s>(
        &mut self,
        _index: usize,
        structure: &'s StoredStructure,
    ) -> (Cow<'s, [u8]>, usize) {
        (Cow::Borrowed(&structure.cells), 0)
    }
}

/// Samples per-cell faults from the structure's fault map — the
/// Monte-Carlo arm. With a `target`, only structures of that kind are
/// injected and everything else reads back perfectly (the isolation
/// methodology of Fig. 5).
///
/// RNG discipline: cells are sampled in storage order, exactly one draw
/// per injected cell, so a given `(seed, layer, scheme)` triple yields
/// the same fault pattern no matter which code path drives the decode.
pub struct FaultInjectionCodec<'a, R: Rng + ?Sized> {
    target: Option<StructureKind>,
    fault_for: &'a dyn Fn(MlcConfig) -> Arc<FaultMap>,
    rng: &'a mut R,
}

impl<'a, R: Rng + ?Sized> FaultInjectionCodec<'a, R> {
    /// Inject into every structure.
    pub fn all(fault_for: &'a dyn Fn(MlcConfig) -> Arc<FaultMap>, rng: &'a mut R) -> Self {
        Self {
            target: None,
            fault_for,
            rng,
        }
    }

    /// Inject only into structures of `target` kind.
    pub fn isolated(
        target: StructureKind,
        fault_for: &'a dyn Fn(MlcConfig) -> Arc<FaultMap>,
        rng: &'a mut R,
    ) -> Self {
        Self {
            target: Some(target),
            fault_for,
            rng,
        }
    }
}

impl<R: Rng + ?Sized> StructureCodec for FaultInjectionCodec<'_, R> {
    fn read<'s>(
        &mut self,
        _index: usize,
        structure: &'s StoredStructure,
    ) -> (Cow<'s, [u8]>, usize) {
        if self.target.is_some_and(|t| t != structure.kind) {
            return (Cow::Borrowed(&structure.cells), 0);
        }
        let map = (self.fault_for)(structure.bpc);
        let mut cells = structure.cells.clone();
        let mut faults = 0;
        for c in cells.iter_mut() {
            let read = map.sample(*c as usize, &mut *self.rng);
            if read != *c as usize {
                *c = read as u8;
                faults += 1;
            }
        }
        (Cow::Owned(cells), faults)
    }
}

/// Replays pre-recorded read levels — the programmed-chip arm, where
/// faults are permanent programming outcomes rather than per-read noise.
///
/// Reports zero faults per structure; [`super::ProgrammedLayer::decode`]
/// substitutes the chip-level fault count afterwards.
pub struct FixedReadCodec<'a> {
    reads: &'a [Vec<u8>],
}

impl<'a> FixedReadCodec<'a> {
    /// Replay `reads`, one entry per stored structure.
    pub fn new(reads: &'a [Vec<u8>]) -> Self {
        Self { reads }
    }
}

impl StructureCodec for FixedReadCodec<'_> {
    fn read<'s>(
        &mut self,
        index: usize,
        _structure: &'s StoredStructure,
    ) -> (Cow<'s, [u8]>, usize) {
        (Cow::Owned(self.reads[index].clone()), 0)
    }
}
