//! Monte-Carlo fault injection over arrays of programmed cell levels
//! (the eNVM half of the Ares-style framework, §4.1).

use crate::level::CellModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Adjacent-level misread probabilities for every level of a cell.
///
/// `p_up[i]` is the probability that level `i` is read as `i+1`;
/// `p_down[i]` that it is read as `i-1`. Non-adjacent misreads are below
/// the paper's `1.5e-10` bound and are not modeled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    p_up: Vec<f64>,
    p_down: Vec<f64>,
    /// Cached cumulative threshold `p_up[i] + p_down[i]` per level, so
    /// [`Self::sample`] compares against precomputed bounds instead of
    /// re-adding on every call.
    p_tot: Vec<f64>,
}

impl FaultMap {
    /// Creates a fault map.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, if any probability is outside
    /// `[0, 1]`, if the top level has `p_up > 0`, or the bottom `p_down > 0`.
    pub fn new(p_up: Vec<f64>, p_down: Vec<f64>) -> Self {
        assert_eq!(p_up.len(), p_down.len(), "length mismatch");
        assert!(!p_up.is_empty(), "empty fault map");
        for (&u, &d) in p_up.iter().zip(&p_down) {
            assert!((0.0..=1.0).contains(&u) && (0.0..=1.0).contains(&d));
            assert!(u + d <= 1.0, "combined fault probability exceeds 1");
        }
        assert_eq!(
            p_up.last().copied(),
            Some(0.0),
            "top level cannot fault upward"
        );
        assert_eq!(p_down[0], 0.0, "bottom level cannot fault downward");
        let p_tot = p_up.iter().zip(&p_down).map(|(u, d)| u + d).collect();
        Self {
            p_up,
            p_down,
            p_tot,
        }
    }

    /// A fault-free map for `levels` levels (useful as a control arm).
    pub fn perfect(levels: usize) -> Self {
        Self {
            p_up: vec![0.0; levels],
            p_down: vec![0.0; levels],
            p_tot: vec![0.0; levels],
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.p_up.len()
    }

    /// Probability of level `i` being read as `i+1`.
    pub fn p_up(&self, i: usize) -> f64 {
        self.p_up[i]
    }

    /// Probability of level `i` being read as `i-1`.
    pub fn p_down(&self, i: usize) -> f64 {
        self.p_down[i]
    }

    /// Total probability of level `i` being misread at all
    /// (`p_up(i) + p_down(i)`, precomputed).
    pub fn p_total(&self, i: usize) -> f64 {
        self.p_tot[i]
    }

    /// The largest adjacent misread probability across all levels.
    pub fn worst_adjacent_rate(&self) -> f64 {
        self.p_up
            .iter()
            .chain(&self.p_down)
            .fold(0.0f64, |a, &b| a.max(b))
    }

    /// The mean total fault probability per cell, averaged over levels
    /// (assumes uniformly distributed stored values).
    pub fn mean_fault_rate(&self) -> f64 {
        let n = self.num_levels() as f64;
        self.p_up
            .iter()
            .zip(&self.p_down)
            .map(|(u, d)| u + d)
            .sum::<f64>()
            / n
    }

    /// Returns a copy with every probability multiplied by `factor`
    /// (clamped to 1). Used for sensitivity studies.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "negative scale factor");
        let clamp = |p: f64| (p * factor).min(1.0);
        let p_up: Vec<f64> = self.p_up.iter().map(|&p| clamp(p)).collect();
        let p_down: Vec<f64> = self.p_down.iter().map(|&p| clamp(p)).collect();
        let p_tot = p_up.iter().zip(&p_down).map(|(u, d)| u + d).collect();
        Self {
            p_up,
            p_down,
            p_tot,
        }
    }

    /// Samples the level read back for a cell programmed to `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn sample<R: Rng + ?Sized>(&self, level: usize, rng: &mut R) -> usize {
        let tot = self.p_tot[level];
        if tot == 0.0 {
            return level;
        }
        let u: f64 = rng.gen();
        if u < self.p_up[level] {
            level + 1
        } else if u < tot {
            level - 1
        } else {
            level
        }
    }
}

impl From<&CellModel> for FaultMap {
    fn from(cell: &CellModel) -> Self {
        cell.fault_map()
    }
}

/// Applies a [`FaultMap`] to whole arrays of programmed levels.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    map: FaultMap,
}

impl FaultInjector {
    /// Creates an injector from a fault map.
    pub fn new(map: FaultMap) -> Self {
        Self { map }
    }

    /// Creates an injector directly from a cell model.
    pub fn from_cell(cell: &CellModel) -> Self {
        Self::new(cell.fault_map())
    }

    /// The underlying fault map.
    pub fn map(&self) -> &FaultMap {
        &self.map
    }

    /// Injects faults in place, returning the number of cells that flipped.
    ///
    /// # Panics
    ///
    /// Panics if any cell's level is out of range for the fault map.
    pub fn inject<R: Rng + ?Sized>(&self, cells: &mut [u8], rng: &mut R) -> usize {
        let n = self.map.num_levels();
        let mut faults = 0;
        for c in cells.iter_mut() {
            let level = *c as usize;
            assert!(level < n, "cell level {level} out of range ({n} levels)");
            let read = self.map.sample(level, rng);
            if read != level {
                *c = read as u8;
                faults += 1;
            }
        }
        faults
    }

    /// Expected number of faults for an array of `cells` uniformly
    /// distributed levels.
    ///
    /// Real programmed arrays are rarely uniform (sparse encodings skew
    /// heavily toward level 0); use [`Self::expected_faults_exact`] with
    /// the actual level histogram when it is available.
    pub fn expected_faults(&self, cells: usize) -> f64 {
        self.map.mean_fault_rate() * cells as f64
    }

    /// Exact expected number of faults given the actual level histogram
    /// (`histogram[l]` = number of cells programmed to level `l`):
    /// `Σ histogram[l] · (p_up[l] + p_down[l])`.
    ///
    /// # Panics
    ///
    /// Panics if the histogram has more entries than the map has levels.
    pub fn expected_faults_exact(&self, histogram: &[usize]) -> f64 {
        let n = self.map.num_levels();
        assert!(
            histogram.len() <= n,
            "histogram has {} levels, map has {n}",
            histogram.len()
        );
        histogram
            .iter()
            .enumerate()
            .map(|(level, &count)| count as f64 * self.map.p_total(level))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::LevelDistribution;
    use rand::SeedableRng;

    fn map_1e2(levels: usize) -> FaultMap {
        let mut up = vec![0.01; levels];
        let mut down = vec![0.01; levels];
        *up.last_mut().unwrap() = 0.0;
        down[0] = 0.0;
        FaultMap::new(up, down)
    }

    #[test]
    fn perfect_map_never_faults() {
        let m = FaultMap::perfect(8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for lvl in 0..8 {
            assert_eq!(m.sample(lvl, &mut rng), lvl);
        }
        assert_eq!(m.worst_adjacent_rate(), 0.0);
    }

    #[test]
    fn sample_respects_bounds() {
        let m = map_1e2(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let s = m.sample(0, &mut rng);
            assert!(s <= 1, "level 0 can only stay or go up");
            let s = m.sample(3, &mut rng);
            assert!(s >= 2, "level 3 can only stay or go down");
        }
    }

    #[test]
    fn injection_rate_matches_probability() {
        let m = map_1e2(4);
        let inj = FaultInjector::new(m);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut cells: Vec<u8> = (0..200_000u32).map(|i| (i % 4) as u8).collect();
        let faults = inj.inject(&mut cells, &mut rng);
        let expected = inj.expected_faults(200_000);
        let rel = (faults as f64 - expected).abs() / expected;
        assert!(rel < 0.1, "observed {faults}, expected {expected}");
    }

    #[test]
    fn faulted_cells_move_one_level() {
        let m = map_1e2(8);
        let inj = FaultInjector::new(m);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let orig: Vec<u8> = (0..50_000u32).map(|i| (i % 8) as u8).collect();
        let mut cells = orig.clone();
        inj.inject(&mut cells, &mut rng);
        for (o, c) in orig.iter().zip(&cells) {
            assert!((*o as i16 - *c as i16).abs() <= 1, "non-adjacent fault");
        }
    }

    #[test]
    fn scaled_map_scales() {
        let m = map_1e2(4).scaled(0.5);
        assert!((m.p_up(0) - 0.005).abs() < 1e-12);
        let m2 = map_1e2(4).scaled(1000.0);
        assert!(m2.p_up(0) <= 1.0);
    }

    #[test]
    fn from_cell_model_matches_fault_map() {
        let levels = (0..4)
            .map(|i| LevelDistribution::new(i as f64 * 0.3, 0.04))
            .collect();
        let cell = CellModel::new(levels);
        let inj = FaultInjector::from_cell(&cell);
        assert_eq!(inj.map(), &cell.fault_map());
    }

    #[test]
    #[should_panic(expected = "top level cannot fault upward")]
    fn rejects_top_level_up_fault() {
        FaultMap::new(vec![0.0, 0.1], vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inject_rejects_out_of_range_levels() {
        let inj = FaultInjector::new(map_1e2(4));
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        inj.inject(&mut [7u8], &mut rng);
    }

    #[test]
    fn mean_fault_rate_averages() {
        let m = map_1e2(4);
        // levels: 0 -> 0.01, 1 -> 0.02, 2 -> 0.02, 3 -> 0.01; mean = 0.015
        assert!((m.mean_fault_rate() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn p_total_is_the_cached_sum() {
        let m = map_1e2(4);
        for l in 0..4 {
            assert_eq!(m.p_total(l), m.p_up(l) + m.p_down(l));
        }
        let s = m.scaled(0.5);
        for l in 0..4 {
            assert_eq!(s.p_total(l), s.p_up(l) + s.p_down(l));
        }
    }

    #[test]
    fn expected_faults_exact_uses_the_histogram() {
        let inj = FaultInjector::new(map_1e2(4));
        // All cells at level 0 (p_tot = 0.01): exact differs from uniform.
        let exact = inj.expected_faults_exact(&[1000, 0, 0, 0]);
        assert!((exact - 10.0).abs() < 1e-9, "exact {exact}");
        let uniform = inj.expected_faults(1000);
        assert!((uniform - 15.0).abs() < 1e-9, "uniform {uniform}");
        // A uniform histogram reproduces the uniform estimate.
        let even = inj.expected_faults_exact(&[250, 250, 250, 250]);
        assert!((even - uniform).abs() < 1e-9);
    }
}
