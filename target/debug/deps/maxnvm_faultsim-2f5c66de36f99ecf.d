/root/repo/target/debug/deps/maxnvm_faultsim-2f5c66de36f99ecf.d: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

/root/repo/target/debug/deps/maxnvm_faultsim-2f5c66de36f99ecf: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

crates/faultsim/src/lib.rs:
crates/faultsim/src/analytic.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/dse.rs:
crates/faultsim/src/engine/mod.rs:
crates/faultsim/src/engine/error.rs:
crates/faultsim/src/engine/pool.rs:
crates/faultsim/src/evaluate.rs:
crates/faultsim/src/vulnerability.rs:
