/root/repo/target/debug/deps/serde-3e65f4cbe84b90fe.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-3e65f4cbe84b90fe.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-3e65f4cbe84b90fe.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
