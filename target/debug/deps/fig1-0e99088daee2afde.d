/root/repo/target/debug/deps/fig1-0e99088daee2afde.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-0e99088daee2afde: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
