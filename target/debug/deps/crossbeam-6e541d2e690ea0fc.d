/root/repo/target/debug/deps/crossbeam-6e541d2e690ea0fc.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-6e541d2e690ea0fc.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-6e541d2e690ea0fc.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
