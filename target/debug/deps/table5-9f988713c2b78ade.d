/root/repo/target/debug/deps/table5-9f988713c2b78ade.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-9f988713c2b78ade.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
