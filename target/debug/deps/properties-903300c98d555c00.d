/root/repo/target/debug/deps/properties-903300c98d555c00.d: crates/nvdla/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-903300c98d555c00.rmeta: crates/nvdla/tests/properties.rs Cargo.toml

crates/nvdla/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
