//! Gray coding for MLC level assignment (§3.3).
//!
//! When a binary value is stored directly across the levels of an MLC, an
//! adjacent-level misread can flip several bits at once (e.g. level 3
//! `011` ↔ level 4 `100` flips three bits), which a single-error-correcting
//! Hamming code cannot repair. Storing values in **Gray code** guarantees
//! an adjacent-level fault is exactly one bit flip, making level faults
//! correctable by SEC-DED ECC.

/// Converts a binary value to its reflected Gray code.
pub fn to_gray(value: u64) -> u64 {
    value ^ (value >> 1)
}

/// Converts a reflected Gray code back to binary.
pub fn from_gray(gray: u64) -> u64 {
    let mut v = gray;
    let mut shift = 1;
    while shift < 64 {
        v ^= v >> shift;
        shift <<= 1;
    }
    v
}

/// Maps a binary field of `bits` bits to the MLC level it should be
/// programmed to, using Gray ordering (level index = position of the Gray
/// codeword in level order).
///
/// The stored level is chosen so that adjacent levels differ in exactly one
/// bit of the *binary* payload.
///
/// # Panics
///
/// Panics if `value` does not fit in `bits` or `bits` is 0 or > 8.
pub fn binary_to_level(value: u64, bits: u8) -> u8 {
    assert!((1..=8).contains(&bits), "bits out of range");
    assert!(value < (1u64 << bits), "value does not fit");
    // Level i holds Gray codeword to_gray(i); to store `value`, find the
    // level whose Gray codeword equals it: level = from_gray(value).
    from_gray(value) as u8
}

/// Inverse of [`binary_to_level`]: decodes the binary payload from a level.
///
/// # Panics
///
/// Panics if `level` does not fit in `bits` or `bits` is 0 or > 8.
pub fn level_to_binary(level: u8, bits: u8) -> u64 {
    assert!((1..=8).contains(&bits), "bits out of range");
    assert!((level as u64) < (1u64 << bits), "level does not fit");
    to_gray(level as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_3bit_sequence() {
        let seq: Vec<u64> = (0..8).map(to_gray).collect();
        assert_eq!(
            seq,
            vec![0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100]
        );
    }

    #[test]
    fn round_trip_small() {
        for v in 0..256u64 {
            assert_eq!(from_gray(to_gray(v)), v);
        }
    }

    #[test]
    fn adjacent_levels_differ_in_one_bit() {
        for bits in 1..=8u8 {
            let n = 1u64 << bits;
            for lvl in 0..n - 1 {
                let a = level_to_binary(lvl as u8, bits);
                let b = level_to_binary((lvl + 1) as u8, bits);
                assert_eq!(
                    (a ^ b).count_ones(),
                    1,
                    "levels {lvl},{} bits {bits}",
                    lvl + 1
                );
            }
        }
    }

    #[test]
    fn binary_to_level_is_inverse() {
        for bits in 1..=8u8 {
            for v in 0..(1u64 << bits) {
                assert_eq!(level_to_binary(binary_to_level(v, bits), bits), v);
            }
        }
    }

    #[test]
    fn level_mapping_is_a_permutation() {
        let mut seen = [false; 8];
        for v in 0..8u64 {
            let l = binary_to_level(v, 3);
            assert!(!seen[l as usize], "duplicate level {l}");
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest! {
        #[test]
        fn prop_gray_round_trip(v in any::<u64>()) {
            prop_assert_eq!(from_gray(to_gray(v)), v);
        }

        #[test]
        fn prop_gray_adjacency(v in 0u64..u64::MAX) {
            // Consecutive integers map to Gray codes differing in one bit.
            let a = to_gray(v);
            let b = to_gray(v + 1);
            prop_assert_eq!((a ^ b).count_ones(), 1);
        }
    }
}
