//! AArch64 NEON micro-kernels.
//!
//! Same contract as the x86 kernels: one single-rounding fused
//! multiply-add per `(k, element)` term, ascending k — `vfmaq_f32`
//! lanes are IEEE-754 fused operations bit-identical to
//! `f32::mul_add`, so this tier produces the same bits as every other
//! tier. NEON is architecturally guaranteed on AArch64, so the
//! dispatch layer selects this tier unconditionally there.

use core::arch::aarch64::*;

/// NEON micro-kernel: one full 8×8 tile, two 128-bit accumulator lanes
/// per row.
///
/// # Safety
///
/// `cp` must point at the tile's top-left element of a row-major buffer
/// with row stride `stride` such that all 8 rows of 8 elements are in
/// bounds and unaliased by other concurrent writers; `pa`/`pb` must
/// hold at least `kc*8` packed floats each.
// SAFETY: `unsafe fn` — caller contract in the doc `# Safety` section above.
pub(super) unsafe fn micro_8x8_neon(
    cp: *mut f32,
    stride: usize,
    pa: *const f32,
    pb: *const f32,
    kc: usize,
) {
    let mut acc = [[vdupq_n_f32(0.0); 2]; 8];
    for (i, row) in acc.iter_mut().enumerate() {
        row[0] = vld1q_f32(cp.add(i * stride));
        row[1] = vld1q_f32(cp.add(i * stride + 4));
    }
    for kk in 0..kc {
        let b0 = vld1q_f32(pb.add(kk * 8));
        let b1 = vld1q_f32(pb.add(kk * 8 + 4));
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = vdupq_n_f32(*pa.add(kk * 8 + i));
            row[0] = vfmaq_f32(row[0], ai, b0);
            row[1] = vfmaq_f32(row[1], ai, b1);
        }
    }
    for (i, row) in acc.iter().enumerate() {
        vst1q_f32(cp.add(i * stride), row[0]);
        vst1q_f32(cp.add(i * stride + 4), row[1]);
    }
}

/// NEON `dst[j] = fma(a, src[j], dst[j])`: 4-lane vector body,
/// `f32::mul_add` tail — one fused rounding per element either way.
///
/// # Safety
///
/// `dst` and `src` must be the same length.
// SAFETY: `unsafe fn` — caller contract in the doc `# Safety` section above.
pub(super) unsafe fn axpy_neon(dst: &mut [f32], src: &[f32], a: f32) {
    let n = dst.len().min(src.len());
    let av = vdupq_n_f32(a);
    let mut j = 0;
    while j + 4 <= n {
        let d = vld1q_f32(dst.as_ptr().add(j));
        let s = vld1q_f32(src.as_ptr().add(j));
        vst1q_f32(dst.as_mut_ptr().add(j), vfmaq_f32(d, av, s));
        j += 4;
    }
    while j < n {
        dst[j] = a.mul_add(src[j], dst[j]);
        j += 1;
    }
}
