/root/repo/target/release/deps/maxnvm_faultsim-0dcf8d539e8d6290.d: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

/root/repo/target/release/deps/libmaxnvm_faultsim-0dcf8d539e8d6290.rlib: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

/root/repo/target/release/deps/libmaxnvm_faultsim-0dcf8d539e8d6290.rmeta: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

crates/faultsim/src/lib.rs:
crates/faultsim/src/analytic.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/dse.rs:
crates/faultsim/src/evaluate.rs:
crates/faultsim/src/vulnerability.rs:
