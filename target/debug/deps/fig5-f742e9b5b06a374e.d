/root/repo/target/debug/deps/fig5-f742e9b5b06a374e.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-f742e9b5b06a374e: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
