/root/repo/target/debug/deps/properties-a990c9c72fdb445d.d: crates/nvsim/tests/properties.rs

/root/repo/target/debug/deps/properties-a990c9c72fdb445d: crates/nvsim/tests/properties.rs

crates/nvsim/tests/properties.rs:
