/root/repo/target/debug/deps/maxnvm_envm-9d89249d8a682d01.d: crates/envm/src/lib.rs crates/envm/src/fault.rs crates/envm/src/gray.rs crates/envm/src/level.rs crates/envm/src/math.rs crates/envm/src/reference.rs crates/envm/src/retention.rs crates/envm/src/sense.rs crates/envm/src/tech.rs crates/envm/src/write.rs

/root/repo/target/debug/deps/maxnvm_envm-9d89249d8a682d01: crates/envm/src/lib.rs crates/envm/src/fault.rs crates/envm/src/gray.rs crates/envm/src/level.rs crates/envm/src/math.rs crates/envm/src/reference.rs crates/envm/src/retention.rs crates/envm/src/sense.rs crates/envm/src/tech.rs crates/envm/src/write.rs

crates/envm/src/lib.rs:
crates/envm/src/fault.rs:
crates/envm/src/gray.rs:
crates/envm/src/level.rs:
crates/envm/src/math.rs:
crates/envm/src/reference.rs:
crates/envm/src/retention.rs:
crates/envm/src/sense.rs:
crates/envm/src/tech.rs:
crates/envm/src/write.rs:
