//! Sharing raw sparse-encodings across candidate storage schemes.
//!
//! A design-space sweep stores the same clustered layers under dozens of
//! schemes, but the expensive step — running the sparse encoder over the
//! weight matrix — only depends on the encoding choice (plus IdxSync
//! configuration for BitMask), not on bits-per-cell or ECC. This cache
//! keys on exactly that, so a 100-scheme sweep performs a handful of
//! encodes per layer instead of hundreds.

use super::diskcache::{EncodeCacheStats, EncodeDiskCache};
use super::layer::{EncodedStreams, StoredLayer};
use super::prepared::CleanLayerDecode;
use super::scheme::StorageScheme;
use crate::cluster::ClusteredLayer;
use crate::EncodingKind;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a raw encode actually depends on. For non-BitMask encodings
/// IdxSync is inert, and without IdxSync the block size is inert, so
/// both normalize away — schemes differing only there share an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct StreamKey {
    layer: usize,
    encoding: EncodingKind,
    idx_sync: bool,
    sync_block_bits: usize,
}

impl StreamKey {
    fn for_scheme(layer: usize, scheme: &StorageScheme) -> Self {
        let idx_sync = scheme.encoding == EncodingKind::BitMask && scheme.idx_sync;
        Self {
            layer,
            encoding: scheme.encoding,
            idx_sync,
            sync_block_bits: if idx_sync { scheme.sync_block_bits } else { 0 },
        }
    }
}

/// Concurrency-safe cache of [`EncodedStreams`] keyed by layer index and
/// the scheme components that affect the raw encode.
///
/// Layer identity is the caller's index into its layer list; one cache
/// must only ever be used with one list of layers.
#[derive(Default)]
pub struct EncodeCache {
    // Ordered maps: nothing iterates these today, but BTreeMap keeps
    // any future traversal deterministic by construction (lint rule D1).
    map: Mutex<BTreeMap<StreamKey, Arc<EncodedStreams>>>,
    decoded: Mutex<BTreeMap<StreamKey, Arc<CleanLayerDecode>>>,
    /// Optional cross-process persistence layer: on an in-memory miss
    /// the artifact is looked up on disk before recomputing, and fresh
    /// computations are written back, so concurrent shard processes of
    /// one sweep pay each encode once between them.
    disk: Option<EncodeDiskCache>,
}

impl std::fmt::Debug for EncodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual impl: the vendored parking_lot Mutex has no Debug.
        f.debug_struct("EncodeCache")
            .field("entries", &self.len())
            .field("disk", &self.disk)
            .finish()
    }
}

impl EncodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Backs this cache with a content-addressed on-disk layer shared
    /// across processes.
    pub fn with_disk(mut self, disk: EncodeDiskCache) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Counters of the disk layer's activity (all zero when this cache
    /// has no disk layer).
    pub fn stats(&self) -> EncodeCacheStats {
        self.disk
            .as_ref()
            .map(EncodeDiskCache::stats)
            .unwrap_or_default()
    }

    /// The raw encoded streams for `layer` (at position `layer_idx`)
    /// under `scheme`, encoding on first use.
    pub fn streams(
        &self,
        layer_idx: usize,
        layer: &ClusteredLayer,
        scheme: &StorageScheme,
    ) -> Arc<EncodedStreams> {
        let key = StreamKey::for_scheme(layer_idx, scheme);
        if let Some(hit) = self.map.lock().get(&key) {
            return Arc::clone(hit);
        }
        // Encode (or disk-load) outside the lock: concurrent misses may
        // both do the work, but the results are identical and sweeps
        // never stall behind one worker's encode.
        if let Some(disk) = &self.disk {
            if let Some(loaded) = disk.load_streams(layer_idx, layer, scheme) {
                let loaded = Arc::new(loaded);
                return Arc::clone(self.map.lock().entry(key).or_insert(loaded));
            }
        }
        let encoded = Arc::new(EncodedStreams::encode(layer, scheme));
        if let Some(disk) = &self.disk {
            disk.store_streams(layer_idx, layer, scheme, &encoded);
        }
        Arc::clone(self.map.lock().entry(key).or_insert(encoded))
    }

    /// Stores `layer` under `scheme`, reusing the cached raw encode.
    pub fn store_layer(
        &self,
        layer_idx: usize,
        layer: &ClusteredLayer,
        scheme: &StorageScheme,
    ) -> StoredLayer {
        let encoded = self.streams(layer_idx, layer, scheme);
        StoredLayer::store_encoded(layer, scheme, &encoded)
    }

    /// The clean decode of `stored` (at layer position `layer_idx`),
    /// decoding on first use.
    ///
    /// Keyed like the raw encodes: bits-per-cell and ECC round-trip
    /// losslessly when no faults are injected, so a clean decode depends
    /// only on the raw encoded streams and every scheme sharing a
    /// [`StreamKey`] shares the decode.
    pub fn clean_decode(&self, layer_idx: usize, stored: &StoredLayer) -> Arc<CleanLayerDecode> {
        let key = StreamKey::for_scheme(layer_idx, &stored.scheme);
        if let Some(hit) = self.decoded.lock().get(&key) {
            return Arc::clone(hit);
        }
        // Decode outside the lock, same rationale as `streams`.
        let clean = Arc::new(CleanLayerDecode::of(stored));
        Arc::clone(self.decoded.lock().entry(key).or_insert(clean))
    }

    /// Like [`Self::clean_decode`], additionally consulting the disk
    /// layer. Needs the clustered `layer` in hand because disk entries
    /// are content-addressed by the layer's weights, not the in-process
    /// index.
    pub fn clean_decode_cached(
        &self,
        layer_idx: usize,
        layer: &ClusteredLayer,
        stored: &StoredLayer,
    ) -> Arc<CleanLayerDecode> {
        let Some(disk) = &self.disk else {
            return self.clean_decode(layer_idx, stored);
        };
        let key = StreamKey::for_scheme(layer_idx, &stored.scheme);
        if let Some(hit) = self.decoded.lock().get(&key) {
            return Arc::clone(hit);
        }
        if let Some(loaded) = disk.load_decode(layer_idx, layer, &stored.scheme) {
            let loaded = Arc::new(loaded);
            return Arc::clone(self.decoded.lock().entry(key).or_insert(loaded));
        }
        let clean = Arc::new(CleanLayerDecode::of(stored));
        disk.store_decode(layer_idx, layer, &stored.scheme, &clean);
        Arc::clone(self.decoded.lock().entry(key).or_insert(clean))
    }

    /// Number of distinct raw encodes currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
