//! Packing encoded structures into MLC cells and decoding them back
//! *through* faults — the storage half of the Ares-style framework (§4.1).
//!
//! Every structure of an encoded layer gets its own bits-per-cell setting
//! (the axis the paper's design-space exploration sweeps) and optional
//! SEC-DED protection; ECC-protected structures are Gray-coded so an
//! adjacent-level fault is exactly one correctable bit flip (§3.3).
//!
//! Module layout:
//!
//! - [`scheme`]: what to store — [`StorageScheme`], per-structure
//!   bits-per-cell ([`StructureBpc`]) and ECC coverage ([`EccScope`]).
//! - [`structure`]: one packed bit-stream ([`StoredStructure`]) and the
//!   decode accounting ([`DecodeStats`]).
//! - [`codec`]: the [`StructureCodec`] trait — the single seam through
//!   which every decode path (clean, Monte-Carlo injection, isolated
//!   injection, programmed-chip readback) supplies read cell levels.
//! - [`layer`]: [`StoredLayer`] — encode/pack on the way in, one shared
//!   decode core on the way out.
//! - [`chip`]: [`ProgrammedLayer`] — a layer as one manufactured chip
//!   instance sees it (permanent programming faults).
//! - [`model`]: [`ModelStorage`] — whole-model aggregation.
//! - [`cache`]: [`EncodeCache`] — reuses raw encoded streams and clean
//!   decodes across candidate schemes that differ only in bits-per-cell
//!   or protection.
//! - [`diskcache`]: [`EncodeDiskCache`] — the cross-process layer under
//!   [`EncodeCache`]: content-addressed on-disk artifacts (tmp + fsync +
//!   rename) so N shard processes of one sweep pay each encode once.
//! - [`prepared`]: [`PreparedLayer`] — the O(expected faults) trial path:
//!   sparse fault sampling plus dirty-region incremental decode against a
//!   cached clean decode ([`CleanLayerDecode`]).

pub mod cache;
pub mod chip;
pub mod codec;
pub mod diskcache;
pub mod layer;
pub mod model;
pub mod prepared;
pub mod scheme;
pub mod structure;

pub use cache::EncodeCache;
pub use chip::ProgrammedLayer;
pub use codec::{CleanCodec, FaultInjectionCodec, FixedReadCodec, StructureCodec};
pub use diskcache::{ArtifactStore, EncodeCacheStats, EncodeDiskCache, FsArtifactStore};
pub use layer::{EncodedStreams, StoredLayer};
pub use model::ModelStorage;
pub use prepared::{CleanLayerDecode, PreparedLayer};
pub use scheme::{EccScope, StorageScheme, StructureBpc};
pub use structure::{DecodeStats, StoredStructure};

#[cfg(test)]
mod tests;
