//! Packing encoded structures into MLC cells and decoding them back
//! *through* faults — the storage half of the Ares-style framework (§4.1).
//!
//! Every structure of an encoded layer gets its own bits-per-cell setting
//! (the axis the paper's design-space exploration sweeps) and optional
//! SEC-DED protection; ECC-protected structures are Gray-coded so an
//! adjacent-level fault is exactly one correctable bit flip (§3.3).

use crate::bitmask::BitMaskLayer;
use crate::cluster::ClusteredLayer;
use crate::csr::CsrLayer;
use crate::dense::DenseLayer;
use crate::{EncodingKind, StructureKind};
use maxnvm_bits::{BitBuffer, BitReader};
use maxnvm_dnn::network::LayerMatrix;
use maxnvm_ecc::{BlockCodec, SecDed};
use maxnvm_envm::gray::{binary_to_level, level_to_binary};
use maxnvm_envm::{CellModel, FaultMap, MlcConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which structures receive SEC-DED protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccScope {
    /// No ECC anywhere.
    None,
    /// Protect the alignment-critical metadata structures (CSR column
    /// indexes and row counters, the bitmask, IdxSync counters) — the
    /// paper's configuration.
    Metadata,
    /// Protect everything including weight values.
    All,
}

impl EccScope {
    /// Whether `kind` is protected under this scope.
    pub fn covers(self, kind: StructureKind) -> bool {
        match self {
            EccScope::None => false,
            EccScope::All => kind != StructureKind::Centroids,
            EccScope::Metadata => matches!(
                kind,
                StructureKind::ColIndex
                    | StructureKind::RowCounter
                    | StructureKind::Mask
                    | StructureKind::SyncCounter
            ),
        }
    }
}

/// Bits-per-cell per structure — the paper sweeps these independently
/// ("we vary the number of bits per cell used to store each structure",
/// §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StructureBpc {
    /// Weight values (cluster indices).
    pub values: MlcConfig,
    /// CSR relative column indexes.
    pub col_index: MlcConfig,
    /// CSR row counters.
    pub row_counter: MlcConfig,
    /// BitMask indicator bits.
    pub mask: MlcConfig,
    /// IdxSync counters.
    pub sync_counter: MlcConfig,
}

impl StructureBpc {
    /// All structures at the same bits-per-cell.
    pub fn uniform(bpc: MlcConfig) -> Self {
        Self {
            values: bpc,
            col_index: bpc,
            row_counter: bpc,
            mask: bpc,
            sync_counter: bpc,
        }
    }

    /// The setting for a given structure (centroids are always SLC).
    pub fn for_kind(&self, kind: StructureKind) -> MlcConfig {
        match kind {
            StructureKind::Values => self.values,
            StructureKind::ColIndex => self.col_index,
            StructureKind::RowCounter => self.row_counter,
            StructureKind::Mask => self.mask,
            StructureKind::SyncCounter => self.sync_counter,
            StructureKind::Centroids => MlcConfig::SLC,
        }
    }
}

/// A complete storage configuration for one layer: encoding choice,
/// per-structure density, and protection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageScheme {
    /// Sparse-encoding strategy.
    pub encoding: EncodingKind,
    /// Whether BitMask storage includes IdxSync counters.
    pub idx_sync: bool,
    /// ECC coverage.
    pub ecc: EccScope,
    /// SEC-DED block configuration used where ECC applies.
    pub ecc_code: SecDed,
    /// Bits-per-cell per structure.
    pub bpc: StructureBpc,
    /// Mask bits per IdxSync block (`IDXSYNC_BLOCK_BITS` = the paper's
    /// 128-byte alignment; stand-in models may scale it down with their
    /// layer sizes).
    pub sync_block_bits: usize,
}

impl StorageScheme {
    /// A uniform scheme: every structure at `bpc`, no protection.
    pub fn uniform(encoding: EncodingKind, bpc: MlcConfig) -> Self {
        Self {
            encoding,
            idx_sync: false,
            ecc: EccScope::None,
            ecc_code: SecDed::default_512b(),
            bpc: StructureBpc::uniform(bpc),
            sync_block_bits: crate::IDXSYNC_BLOCK_BITS,
        }
    }

    /// Overrides the IdxSync block size.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn with_sync_block_bits(mut self, bits: usize) -> Self {
        assert!(bits > 0, "empty IdxSync block");
        self.sync_block_bits = bits;
        self
    }

    /// Enables IdxSync (meaningful for [`EncodingKind::BitMask`] only).
    pub fn with_idx_sync(mut self) -> Self {
        self.idx_sync = true;
        self
    }

    /// Enables metadata ECC.
    pub fn with_ecc(mut self) -> Self {
        self.ecc = EccScope::Metadata;
        self
    }

    /// Overrides the bits-per-cell map.
    pub fn with_bpc(mut self, bpc: StructureBpc) -> Self {
        self.bpc = bpc;
        self
    }

    /// The paper's label for this configuration, e.g. `"BitM+IdxSync"`.
    pub fn label(&self) -> String {
        let base = match self.encoding {
            EncodingKind::DenseClustered => "P+C",
            EncodingKind::Csr => "CSR",
            EncodingKind::BitMask => {
                if self.idx_sync {
                    "BitM+IdxSync"
                } else {
                    "BitMask"
                }
            }
        };
        if self.ecc != EccScope::None {
            format!("{base}+ECC")
        } else {
            base.to_string()
        }
    }

    /// The maximum bits-per-cell used by any structure (Table 4's "BPC").
    pub fn max_bpc(&self) -> MlcConfig {
        let mut kinds = vec![StructureKind::Values];
        match self.encoding {
            EncodingKind::Csr => {
                kinds.push(StructureKind::ColIndex);
                kinds.push(StructureKind::RowCounter);
            }
            EncodingKind::BitMask => {
                kinds.push(StructureKind::Mask);
                if self.idx_sync {
                    kinds.push(StructureKind::SyncCounter);
                }
            }
            EncodingKind::DenseClustered => {}
        }
        kinds
            .into_iter()
            .map(|k| self.bpc.for_kind(k))
            .max()
            .expect("non-empty")
    }
}

/// One structure's bits, packed into MLC cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredStructure {
    /// Which structure this is.
    pub kind: StructureKind,
    /// Bits per cell.
    pub bpc: MlcConfig,
    /// Whether levels are Gray-coded (always true when ECC-protected).
    pub gray: bool,
    /// SEC-DED code, if protected.
    pub ecc: Option<SecDed>,
    /// Original stream length in bits (pre-ECC).
    pub payload_bits: usize,
    /// Stored length in bits (post-ECC).
    pub stored_bits: usize,
    /// Programmed cell levels.
    pub cells: Vec<u8>,
}

impl StoredStructure {
    /// Packs a bit stream into cells.
    fn pack(kind: StructureKind, stream: &BitBuffer, bpc: MlcConfig, ecc: Option<SecDed>) -> Self {
        let payload_bits = stream.len();
        let encoded;
        let bits: &BitBuffer = match &ecc {
            Some(code) => {
                encoded = BlockCodec::new(*code).encode(stream);
                &encoded
            }
            None => stream,
        };
        let stored_bits = bits.len();
        let w = bpc.bits() as usize;
        let gray = ecc.is_some();
        let ncells = stored_bits.div_ceil(w).max(if stored_bits == 0 { 0 } else { 1 });
        let mut cells = Vec::with_capacity(ncells);
        let mut rd = BitReader::new(bits);
        loop {
            let remaining = rd.remaining();
            if remaining == 0 {
                break;
            }
            let take = remaining.min(w);
            let mut v = rd.read_bits(take).expect("in range") as u8;
            if take < w {
                // final partial cell: zero-pad high bits
                v &= (1u8 << w) - 1;
            }
            let level = if gray {
                binary_to_level(v as u64, bpc.bits())
            } else {
                v
            };
            cells.push(level);
        }
        Self {
            kind,
            bpc,
            gray,
            ecc,
            payload_bits,
            stored_bits,
            cells,
        }
    }

    /// Unpacks cells back into the payload stream, applying ECC decode.
    /// Returns the stream plus (corrected, uncorrectable) codeword counts.
    fn unpack_cells(&self, cells: &[u8]) -> (BitBuffer, usize, usize) {
        let w = self.bpc.bits() as usize;
        let mut bits = BitBuffer::with_capacity(self.stored_bits);
        for &level in cells {
            let v = if self.gray {
                level_to_binary(level, self.bpc.bits())
            } else {
                level as u64
            };
            let take = (self.stored_bits - bits.len()).min(w);
            bits.push_bits(v & ((1u64 << take) - 1), take);
            if bits.len() >= self.stored_bits {
                break;
            }
        }
        match &self.ecc {
            Some(code) => {
                let dec = BlockCodec::new(*code).decode(&bits, self.payload_bits);
                (dec.data, dec.corrected, dec.uncorrectable)
            }
            None => (bits, 0, 0),
        }
    }

    /// Number of memory cells used.
    pub fn num_cells(&self) -> u64 {
        self.cells.len() as u64
    }
}

/// Statistics from one decode pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeStats {
    /// Cells whose level flipped under fault injection.
    pub cell_faults: usize,
    /// ECC codewords with a corrected single error.
    pub ecc_corrected: usize,
    /// ECC codewords with a detected-uncorrectable error.
    pub ecc_uncorrectable: usize,
}

/// A layer fully committed to simulated eNVM cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredLayer {
    /// Layer name.
    pub name: String,
    /// The storage configuration used.
    pub scheme: StorageScheme,
    rows: usize,
    cols: usize,
    index_bits: u8,
    /// CSR: stored entry count; BitMask: stored value count.
    entries: usize,
    col_idx_bits: u8,
    counter_bits: u8,
    centroids: Vec<f32>,
    structures: Vec<StoredStructure>,
}

impl StoredLayer {
    /// Encodes and packs a clustered layer under `scheme`.
    pub fn store(layer: &ClusteredLayer, scheme: &StorageScheme) -> Self {
        let (streams, entries, col_idx_bits, counter_bits) = match scheme.encoding {
            EncodingKind::DenseClustered => {
                let enc = DenseLayer::encode(layer);
                (enc.to_streams(), layer.indices.len(), 0, 0)
            }
            EncodingKind::Csr => {
                let enc = CsrLayer::encode(layer);
                let e = enc.entries();
                let (ci, cb) = (enc.col_idx_bits, enc.counter_bits);
                (enc.to_streams(), e, ci, cb)
            }
            EncodingKind::BitMask => {
                let enc =
                    BitMaskLayer::encode_with_block(layer, scheme.idx_sync, scheme.sync_block_bits);
                let e = enc.nonzeros();
                (enc.to_streams(), e, 0, 0)
            }
        };
        let structures = streams
            .into_iter()
            .map(|(kind, stream)| {
                let ecc = scheme.ecc.covers(kind).then_some(scheme.ecc_code);
                StoredStructure::pack(kind, &stream, scheme.bpc.for_kind(kind), ecc)
            })
            .collect();
        Self {
            name: layer.name.clone(),
            scheme: scheme.clone(),
            rows: layer.rows,
            cols: layer.cols,
            index_bits: layer.index_bits,
            entries,
            col_idx_bits,
            counter_bits,
            centroids: layer.centroids.clone(),
            structures,
        }
    }

    /// The stored structures.
    pub fn structures(&self) -> &[StoredStructure] {
        &self.structures
    }

    /// Cells per structure, plus the SLC centroid table.
    pub fn cells_by_structure(&self) -> Vec<(StructureKind, u64)> {
        let mut out: Vec<(StructureKind, u64)> = self
            .structures
            .iter()
            .map(|s| (s.kind, s.num_cells()))
            .collect();
        out.push((StructureKind::Centroids, self.centroid_cells()));
        out
    }

    /// Cells for the per-layer centroid LUT (16-bit values in SLC).
    pub fn centroid_cells(&self) -> u64 {
        (self.centroids.len() * 16) as u64
    }

    /// Total memory cells for this layer.
    pub fn total_cells(&self) -> u64 {
        self.cells_by_structure().iter().map(|(_, c)| c).sum()
    }

    /// Decodes with no faults injected (sanity/control arm).
    pub fn decode_clean(&self) -> (LayerMatrix, DecodeStats) {
        self.decode_internal(|_, cells| (cells.to_vec(), 0))
    }

    /// Injects faults per structure (each structure's fault map comes from
    /// its bits-per-cell via `fault_for`) and decodes.
    pub fn decode_with_faults<R: Rng + ?Sized>(
        &self,
        fault_for: &dyn Fn(MlcConfig) -> FaultMap,
        rng: &mut R,
    ) -> (LayerMatrix, DecodeStats) {
        // Collect the injected copies first to appease the borrow checker.
        let injected: Vec<(Vec<u8>, usize)> = self
            .structures
            .iter()
            .map(|s| {
                let map = fault_for(s.bpc);
                let mut cells = s.cells.clone();
                let mut faults = 0;
                for c in cells.iter_mut() {
                    let read = map.sample(*c as usize, rng);
                    if read != *c as usize {
                        *c = read as u8;
                        faults += 1;
                    }
                }
                (cells, faults)
            })
            .collect();
        let mut it = injected.into_iter();
        self.decode_internal(move |_, _| it.next().expect("structure count"))
    }

    /// Injects faults only into structures of `target` kind, storing all
    /// others perfectly — the isolation methodology of Fig. 5.
    pub fn decode_with_isolated_faults<R: Rng + ?Sized>(
        &self,
        target: StructureKind,
        fault_for: &dyn Fn(MlcConfig) -> FaultMap,
        rng: &mut R,
    ) -> (LayerMatrix, DecodeStats) {
        let injected: Vec<(Vec<u8>, usize)> = self
            .structures
            .iter()
            .map(|s| {
                let mut cells = s.cells.clone();
                let mut faults = 0;
                if s.kind == target {
                    let map = fault_for(s.bpc);
                    for c in cells.iter_mut() {
                        let read = map.sample(*c as usize, rng);
                        if read != *c as usize {
                            *c = read as u8;
                            faults += 1;
                        }
                    }
                }
                (cells, faults)
            })
            .collect();
        let mut it = injected.into_iter();
        self.decode_internal(move |_, _| it.next().expect("structure count"))
    }

    /// Programs this layer onto a *chip instance*: every cell's analog
    /// read value is drawn once from its level distribution (§4.1's
    /// "unique generated fault maps"), so the returned
    /// [`ProgrammedLayer`] decodes **deterministically** — the faults are
    /// permanent programming outcomes, not per-read noise.
    pub fn program_chip<R: Rng + ?Sized>(
        &self,
        cell_for: &dyn Fn(MlcConfig) -> CellModel,
        rng: &mut R,
    ) -> ProgrammedLayer {
        let read_cells = self
            .structures
            .iter()
            .map(|s| {
                let cell = cell_for(s.bpc);
                s.cells
                    .iter()
                    .map(|&lvl| cell.sample_read(lvl as usize, rng) as u8)
                    .collect()
            })
            .collect();
        ProgrammedLayer {
            stored: self.clone(),
            read_cells,
        }
    }

    fn decode_internal(
        &self,
        mut cells_for: impl FnMut(StructureKind, &[u8]) -> (Vec<u8>, usize),
    ) -> (LayerMatrix, DecodeStats) {
        let mut stats = DecodeStats::default();
        let mut streams: Vec<(StructureKind, BitBuffer)> = Vec::new();
        for s in &self.structures {
            let (cells, faults) = cells_for(s.kind, &s.cells);
            stats.cell_faults += faults;
            let (bits, corrected, uncorrectable) = s.unpack_cells(&cells);
            stats.ecc_corrected += corrected;
            stats.ecc_uncorrectable += uncorrectable;
            streams.push((s.kind, bits));
        }
        let find = |k: StructureKind| -> &BitBuffer {
            &streams
                .iter()
                .find(|(kind, _)| *kind == k)
                .unwrap_or_else(|| panic!("missing structure {k}"))
                .1
        };
        let indices = match self.scheme.encoding {
            EncodingKind::DenseClustered => DenseLayer::from_streams(
                self.rows,
                self.cols,
                self.index_bits,
                find(StructureKind::Values),
            )
            .reconstruct_indices(),
            EncodingKind::Csr => CsrLayer::from_streams(
                self.rows,
                self.cols,
                self.index_bits,
                self.col_idx_bits,
                self.counter_bits,
                self.entries,
                find(StructureKind::Values),
                find(StructureKind::ColIndex),
                find(StructureKind::RowCounter),
            )
            .reconstruct_indices(),
            EncodingKind::BitMask => {
                let counters = streams
                    .iter()
                    .find(|(k, _)| *k == StructureKind::SyncCounter)
                    .map(|(_, b)| b);
                BitMaskLayer::from_streams(
                    self.rows,
                    self.cols,
                    self.index_bits,
                    self.entries,
                    self.scheme.sync_block_bits,
                    find(StructureKind::Mask),
                    find(StructureKind::Values),
                    counters,
                )
                .reconstruct_indices()
            }
        };
        // Map indices through the centroid LUT (clamping wild indices).
        let top = (self.centroids.len() - 1) as u16;
        let data: Vec<f32> = indices
            .iter()
            .map(|&i| self.centroids[i.min(top) as usize])
            .collect();
        (LayerMatrix::new(&self.name, self.rows, self.cols, data), stats)
    }
}

/// A whole model committed to simulated eNVM: one [`StoredLayer`] per
/// weight layer under a single scheme, with aggregate accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStorage {
    layers: Vec<StoredLayer>,
}

impl ModelStorage {
    /// Stores every clustered layer under `scheme`.
    pub fn store(layers: &[ClusteredLayer], scheme: &StorageScheme) -> Self {
        Self {
            layers: layers.iter().map(|l| StoredLayer::store(l, scheme)).collect(),
        }
    }

    /// The per-layer stores.
    pub fn layers(&self) -> &[StoredLayer] {
        &self.layers
    }

    /// Total memory cells across all layers.
    pub fn total_cells(&self) -> u64 {
        self.layers.iter().map(StoredLayer::total_cells).sum()
    }

    /// Decodes every layer with no faults.
    pub fn decode_clean(&self) -> (Vec<LayerMatrix>, DecodeStats) {
        let mut stats = DecodeStats::default();
        let mats = self
            .layers
            .iter()
            .map(|l| {
                let (m, s) = l.decode_clean();
                stats.cell_faults += s.cell_faults;
                stats.ecc_corrected += s.ecc_corrected;
                stats.ecc_uncorrectable += s.ecc_uncorrectable;
                m
            })
            .collect();
        (mats, stats)
    }

    /// Injects faults into every layer and decodes.
    pub fn decode_with_faults<R: Rng + ?Sized>(
        &self,
        fault_for: &dyn Fn(MlcConfig) -> FaultMap,
        rng: &mut R,
    ) -> (Vec<LayerMatrix>, DecodeStats) {
        let mut stats = DecodeStats::default();
        let mats = self
            .layers
            .iter()
            .map(|l| {
                let (m, s) = l.decode_with_faults(fault_for, rng);
                stats.cell_faults += s.cell_faults;
                stats.ecc_corrected += s.ecc_corrected;
                stats.ecc_uncorrectable += s.ecc_uncorrectable;
                m
            })
            .collect();
        (mats, stats)
    }
}

/// A [`StoredLayer`] as one manufactured-and-programmed chip sees it:
/// the analog outcome of programming is fixed, so decoding is
/// deterministic and repeated reads agree — the paper's per-trial fault
/// map semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgrammedLayer {
    stored: StoredLayer,
    read_cells: Vec<Vec<u8>>,
}

impl ProgrammedLayer {
    /// Number of cells whose programmed level reads back wrong on this
    /// chip instance.
    pub fn fault_count(&self) -> usize {
        self.stored
            .structures
            .iter()
            .zip(&self.read_cells)
            .map(|(s, reads)| {
                s.cells
                    .iter()
                    .zip(reads)
                    .filter(|(a, b)| a != b)
                    .count()
            })
            .sum()
    }

    /// Decodes the chip's (fixed) read values.
    pub fn decode(&self) -> (LayerMatrix, DecodeStats) {
        let mut idx = 0usize;
        let reads = &self.read_cells;
        let stats_faults = self.fault_count();
        let (m, mut stats) = self.stored.decode_internal(move |_, _| {
            let out = (reads[idx].clone(), 0);
            idx += 1;
            out
        });
        stats.cell_faults = stats_faults;
        (m, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_envm::CellTechnology;
    use rand::SeedableRng;

    fn clustered(rows: usize, cols: usize, sparsity: f64, seed: u64) -> ClusteredLayer {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen::<f64>() < sparsity {
                    0.0
                } else {
                    rng.gen::<f32>() + 0.1
                }
            })
            .collect();
        ClusteredLayer::from_matrix(
            &LayerMatrix::new("t", rows, cols, data),
            4,
            seed,
        )
    }

    #[test]
    fn clean_round_trip_all_encodings_all_bpc() {
        let c = clustered(12, 40, 0.6, 1);
        let want = c.reconstruct();
        for enc in EncodingKind::ALL {
            for bpc in MlcConfig::ALL {
                for idx_sync in [false, true] {
                    for ecc in [EccScope::None, EccScope::Metadata, EccScope::All] {
                        let mut scheme = StorageScheme::uniform(enc, bpc);
                        scheme.idx_sync = idx_sync;
                        scheme.ecc = ecc;
                        let stored = StoredLayer::store(&c, &scheme);
                        let (out, stats) = stored.decode_clean();
                        assert_eq!(out.data, want.data, "{enc} {bpc} sync={idx_sync}");
                        assert_eq!(stats.cell_faults, 0);
                        assert_eq!(stats.ecc_uncorrectable, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn cell_counts_shrink_with_more_bits_per_cell() {
        let c = clustered(20, 64, 0.7, 2);
        let slc = StoredLayer::store(&c, &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::SLC));
        let mlc3 =
            StoredLayer::store(&c, &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3));
        assert!(mlc3.total_cells() < slc.total_cells());
        // Roughly 3x fewer (modulo rounding and the SLC centroid table).
        let ratio = slc.total_cells() as f64 / mlc3.total_cells() as f64;
        assert!(ratio > 2.0 && ratio < 3.5, "ratio {ratio}");
    }

    #[test]
    fn ecc_adds_modest_cell_overhead() {
        let c = clustered(32, 128, 0.6, 3);
        let plain = StoredLayer::store(&c, &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC2));
        let ecc = StoredLayer::store(
            &c,
            &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC2).with_ecc(),
        );
        assert!(ecc.total_cells() > plain.total_cells());
        let overhead = ecc.total_cells() as f64 / plain.total_cells() as f64 - 1.0;
        assert!(overhead < 0.01, "ECC overhead {overhead} should be <1%");
    }

    #[test]
    fn ecc_corrects_injected_faults() {
        // Inject faults into the ECC-protected CSR row counters only, at a
        // rate that makes single-fault codewords common. Every trial whose
        // codewords all decoded (no DetectedDouble) must reconstruct the
        // exact original — single faults were corrected, not just detected.
        let c = clustered(16, 64, 0.5, 4);
        let scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3).with_ecc();
        let stored = StoredLayer::store(&c, &scheme);
        let want = c.reconstruct();
        let cell = CellTechnology::MlcCtt;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        // ~38 row-counter cells at a ~5e-6 mean rate; scale to λ≈0.28
        // faults/codeword so single-error corrections are common while
        // multi-fault codewords stay rare.
        let fault_for = |bpc: MlcConfig| cell.cell_model(bpc).fault_map().scaled(1400.0);
        let mut corrected_trials = 0;
        for _ in 0..60 {
            let (out, stats) = stored.decode_with_isolated_faults(
                StructureKind::RowCounter,
                &fault_for,
                &mut rng,
            );
            // A *single* injected fault is always corrected exactly; with
            // three or more faults in one codeword SEC-DED can miscorrect
            // while reporting success — faithful code behaviour, so only
            // the single-fault trials carry the exactness guarantee.
            if stats.cell_faults == 1 {
                assert_eq!(stats.ecc_corrected, 1, "single fault must be corrected");
                assert_eq!(out.data, want.data, "corrected trial must be exact");
                corrected_trials += 1;
            }
        }
        assert!(corrected_trials > 2, "ECC barely exercised: {corrected_trials}");
    }

    #[test]
    fn isolated_injection_touches_only_target() {
        let c = clustered(8, 1024, 0.5, 6);
        let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3);
        let stored = StoredLayer::store(&c, &scheme);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Saturating fault map on Values only: mask decodes cleanly, so
        // every non-zero position is still non-zero (values corrupted).
        let always = |bpc: MlcConfig| {
            let n = bpc.levels();
            let mut up = vec![1.0; n];
            let mut down = vec![0.0; n];
            up[n - 1] = 0.0;
            down[n - 1] = 1.0;
            FaultMap::new(up, down)
        };
        let (out, stats) =
            stored.decode_with_isolated_faults(StructureKind::Values, &always, &mut rng);
        assert!(stats.cell_faults > 0);
        let want = c.reconstruct();
        // Mask untouched: every true-zero position stays zero (a corrupted
        // value can *become* the zero cluster, but never the reverse).
        for (a, b) in out.data.iter().zip(&want.data) {
            if *b == 0.0 {
                assert_eq!(*a, 0.0, "zero position gained a value: mask corrupted?");
            }
        }
        // ...but values differ.
        assert_ne!(out.data, want.data);
    }

    #[test]
    fn model_storage_aggregates_layers() {
        let a = clustered(8, 32, 0.5, 30);
        let b = clustered(4, 64, 0.7, 31);
        let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC2);
        let stored = ModelStorage::store(&[a.clone(), b.clone()], &scheme);
        assert_eq!(stored.layers().len(), 2);
        assert_eq!(
            stored.total_cells(),
            stored.layers()[0].total_cells() + stored.layers()[1].total_cells()
        );
        let (mats, stats) = stored.decode_clean();
        assert_eq!(mats[0].data, a.reconstruct().data);
        assert_eq!(mats[1].data, b.reconstruct().data);
        assert_eq!(stats.cell_faults, 0);
    }

    #[test]
    fn programmed_chip_decodes_deterministically() {
        use rand::SeedableRng;
        let c = clustered(16, 256, 0.5, 21);
        let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3);
        let stored = StoredLayer::store(&c, &scheme);
        // A deliberately noisy cell so chips actually differ.
        let cell_for = |bpc: MlcConfig| {
            let levels = (0..bpc.levels())
                .map(|i| {
                    maxnvm_envm::LevelDistribution::new(
                        i as f64 / (bpc.levels() - 1).max(1) as f64,
                        0.06,
                    )
                })
                .collect();
            CellModel::new(levels)
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let chip_a = stored.program_chip(&cell_for, &mut rng);
        let chip_b = stored.program_chip(&cell_for, &mut rng);
        // Same chip: identical decodes (permanent faults).
        assert_eq!(chip_a.decode(), chip_a.decode());
        // Different chips: different fault maps (with these rates, surely).
        assert!(chip_a.fault_count() > 0);
        assert_ne!(chip_a.decode().0, chip_b.decode().0);
        // Reported fault counts match the cell-level disagreement.
        assert_eq!(chip_a.decode().1.cell_faults, chip_a.fault_count());
    }

    #[test]
    fn perfect_chip_round_trips() {
        use rand::SeedableRng;
        let c = clustered(8, 64, 0.5, 22);
        let scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC2);
        let stored = StoredLayer::store(&c, &scheme);
        // Ultra-tight levels: programming never misses.
        let cell_for = |bpc: MlcConfig| {
            let levels = (0..bpc.levels())
                .map(|i| {
                    maxnvm_envm::LevelDistribution::new(
                        i as f64 / (bpc.levels() - 1).max(1) as f64,
                        1e-6,
                    )
                })
                .collect();
            CellModel::new(levels)
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let chip = stored.program_chip(&cell_for, &mut rng);
        assert_eq!(chip.fault_count(), 0);
        assert_eq!(chip.decode().0.data, c.reconstruct().data);
    }

    #[test]
    fn scheme_labels_match_paper() {
        assert_eq!(
            StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3)
                .with_idx_sync()
                .label(),
            "BitM+IdxSync"
        );
        assert_eq!(
            StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3)
                .with_ecc()
                .label(),
            "CSR+ECC"
        );
        assert_eq!(
            StorageScheme::uniform(EncodingKind::DenseClustered, MlcConfig::MLC2).label(),
            "P+C"
        );
    }

    #[test]
    fn max_bpc_reports_densest_structure() {
        let mut scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC2);
        scheme.bpc.mask = MlcConfig::SLC;
        scheme.bpc.values = MlcConfig::MLC3;
        assert_eq!(scheme.max_bpc(), MlcConfig::MLC3);
    }

    #[test]
    fn per_structure_bpc_is_respected() {
        let c = clustered(8, 64, 0.5, 8);
        let mut scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::SLC);
        scheme.bpc.values = MlcConfig::MLC3;
        let stored = StoredLayer::store(&c, &scheme);
        for s in stored.structures() {
            match s.kind {
                StructureKind::Values => assert_eq!(s.bpc, MlcConfig::MLC3),
                _ => assert_eq!(s.bpc, MlcConfig::SLC),
            }
        }
        let (out, _) = stored.decode_clean();
        assert_eq!(out.data, c.reconstruct().data);
    }
}
