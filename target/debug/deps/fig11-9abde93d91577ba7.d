/root/repo/target/debug/deps/fig11-9abde93d91577ba7.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-9abde93d91577ba7: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
