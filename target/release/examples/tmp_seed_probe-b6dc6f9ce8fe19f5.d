/root/repo/target/release/examples/tmp_seed_probe-b6dc6f9ce8fe19f5.d: examples/tmp_seed_probe.rs

/root/repo/target/release/examples/tmp_seed_probe-b6dc6f9ce8fe19f5: examples/tmp_seed_probe.rs

examples/tmp_seed_probe.rs:
