/root/repo/target/release/deps/maxnvm_faultsim-c708db712df1b464.d: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

/root/repo/target/release/deps/libmaxnvm_faultsim-c708db712df1b464.rlib: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

/root/repo/target/release/deps/libmaxnvm_faultsim-c708db712df1b464.rmeta: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

crates/faultsim/src/lib.rs:
crates/faultsim/src/analytic.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/dse.rs:
crates/faultsim/src/engine/mod.rs:
crates/faultsim/src/engine/error.rs:
crates/faultsim/src/engine/pool.rs:
crates/faultsim/src/evaluate.rs:
crates/faultsim/src/vulnerability.rs:
