/root/repo/target/debug/deps/table5-2d3e292149c371c0.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-2d3e292149c371c0: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
