/root/repo/target/debug/deps/table1-d603a9c09d3d2134.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d603a9c09d3d2134: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
