//! Campaign checkpointing: periodic, atomic snapshots of completed
//! trials so a killed process resumes exactly where it stopped.
//!
//! A [`CampaignCheckpoint`] records the run's identity (a config
//! fingerprint, the scheme label, trial budget and base seed) plus one
//! entry per finished trial — the trial index, its classification error
//! (bit-exact, stored as the hex of [`f64::to_bits`]), and its decode
//! statistics, or the panic message for a trial that failed. Because a
//! trial is a pure function of `seed + trial`, merging checkpointed
//! outcomes with freshly run ones reproduces the uninterrupted result
//! byte for byte at any worker count.
//!
//! Files are written atomically: the snapshot goes to a sibling
//! `<path>.tmp`, is fsynced, and is renamed over the target, so a
//! SIGKILL at any instant leaves either the previous snapshot or the
//! new one — never a torn file. Loading verifies a fingerprint computed
//! over the campaign configuration, the technology, and the stored
//! layers; a mismatch surfaces as
//! [`EngineError::CheckpointMismatch`] instead of silently mixing
//! trials from different configurations. The trial-semantics version
//! ([`TRIAL_SEMANTICS_VERSION`]) is folded into the fingerprint, so
//! checkpoints from an engine whose trial loop changed are rejected
//! the same way.

//!
//! All checkpoint I/O goes through a [`CheckpointStore`]: the real
//! [`FsStore`] keeps the tmp + fsync + rename discipline, while the
//! deterministic [`FaultyStore`] injects seeded I/O errors, torn
//! writes, disk-full, and slow writes for testing the resilience layer
//! itself. Transient failures are absorbed by a bounded-retry
//! [`RetryPolicy`] with exponential backoff; disk-full surfaces as the
//! distinct [`EngineError::CheckpointDiskFull`] so a supervisor can
//! evict the stream instead of retrying hopelessly.

use crate::campaign::TrialOutcome;
use crate::engine::EngineError;
use maxnvm_encoding::storage::DecodeStats;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Once};
use std::time::Duration;

/// On-disk format tag; bumped only when the file layout itself changes.
///
/// v2 added the `shard <index> <count>` line recording which slice of a
/// sharded sweep a snapshot holds. The format tag is folded into every
/// fingerprint, so v1 snapshots are rejected as
/// [`EngineError::CheckpointMismatch`] rather than misparsed.
pub const CHECKPOINT_FORMAT: &str = "maxnvm-campaign-checkpoint v2";

/// Version of the trial semantics (seeding, fault sampling, decode and
/// summation order). Folded into every fingerprint: resuming a
/// checkpoint across an engine whose trials mean something different
/// must fail loudly.
///
/// Version 3: inference runs on the blocked GEMM kernel with its fixed
/// input-independent summation order (the old naive matmul skipped
/// zero-valued multiplicands, so logits — and hence trial error rates —
/// can differ in the last bit), and trials evaluate sparse weight
/// deltas against the cached clean decode instead of materializing
/// faulty matrices.
///
/// Version 4: every kernel accumulates with single-rounding fused
/// multiply-adds (`fma`) instead of separate multiply + add, so the
/// SIMD tiers, the scalar tier, and per-row recomputation all produce
/// identical bits on every architecture; logits differ in the last bit
/// from version 3's unfused chains.
pub const TRIAL_SEMANTICS_VERSION: u32 = 4;

/// The checkpoint storage backend: text-level read/write of snapshot
/// files. The engine talks only to this trait, so the real filesystem
/// implementation ([`FsStore`]) and the deterministic fault-injecting
/// one ([`FaultyStore`]) are interchangeable — campaigns, the
/// supervisor, and the retry layer behave identically against both.
///
/// `write_atomic` must be all-or-nothing with respect to process death
/// (the `FsStore` contract: tmp + fsync + rename), but is allowed to
/// *fail* having left either the previous content or — for an injected
/// torn write — a corrupted file; the parser's `end <count>` trailer
/// and the caller's typed-error handling cover that case.
pub trait CheckpointStore: std::fmt::Debug + Send + Sync {
    /// Writes `text` to `path` atomically (crash leaves old or new
    /// content, never a silent mix).
    fn write_atomic(&self, path: &Path, text: &str) -> Result<(), EngineError>;
    /// Reads the full text content of `path`.
    fn read(&self, path: &Path) -> Result<String, EngineError>;
    /// Whether a snapshot exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Removes the snapshot at `path` (missing file is not an error).
    fn remove(&self, path: &Path) -> Result<(), EngineError>;
}

/// Maps an I/O error to the typed engine error: out-of-space conditions
/// (`StorageFull`, `WriteZero`, raw `ENOSPC`) become the distinct
/// [`EngineError::CheckpointDiskFull`] so callers can evict instead of
/// retrying; everything else is the transient
/// [`EngineError::CheckpointIo`].
fn map_io_error(path: &Path, e: std::io::Error) -> EngineError {
    let disk_full = matches!(
        e.kind(),
        std::io::ErrorKind::StorageFull | std::io::ErrorKind::WriteZero
    ) || e.raw_os_error() == Some(28); // ENOSPC
    if disk_full {
        EngineError::CheckpointDiskFull {
            path: path.display().to_string(),
            detail: e.to_string(),
        }
    } else {
        EngineError::CheckpointIo {
            path: path.display().to_string(),
            detail: e.to_string(),
        }
    }
}

/// The real filesystem store: snapshots go to a sibling `<path>.tmp`,
/// are fsynced, and renamed over the target, so a SIGKILL at any
/// instant leaves either the previous snapshot or the new one.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStore;

impl CheckpointStore for FsStore {
    fn write_atomic(&self, path: &Path, text: &str) -> Result<(), EngineError> {
        let io = |e: std::io::Error| map_io_error(path, e);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp).map_err(io)?;
            file.write_all(text.as_bytes()).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        std::fs::rename(&tmp, path).map_err(io)
    }

    fn read(&self, path: &Path) -> Result<String, EngineError> {
        std::fs::read_to_string(path).map_err(|e| map_io_error(path, e))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> Result<(), EngineError> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(map_io_error(path, e)),
        }
    }
}

/// What a [`FaultyStore`] injects, as independent per-operation
/// probabilities. All draws come from one seeded RNG, so a given
/// (seed, operation sequence) reproduces the identical fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability a write/read fails with a *transient*
    /// [`EngineError::CheckpointIo`] (nothing written; a retry may
    /// succeed).
    pub io_error: f64,
    /// Probability a write is torn: a strict prefix of the text lands
    /// at the final path (bypassing the atomic rename, as a dying disk
    /// or lying filesystem would) and the write reports failure.
    pub torn_write: f64,
    /// Probability a write fails with
    /// [`EngineError::CheckpointDiskFull`] (not retried; previous
    /// snapshot intact).
    pub disk_full: f64,
    /// Added latency per write, modeling a slow device.
    pub slow_write: Option<Duration>,
}

impl FaultPlan {
    /// A moderately hostile default: 20% transient errors, 5% torn
    /// writes, no disk-full, no latency.
    pub fn flaky() -> Self {
        Self {
            io_error: 0.2,
            torn_write: 0.05,
            disk_full: 0.0,
            slow_write: None,
        }
    }

    /// No injected faults at all (useful as a neutral baseline).
    pub fn none() -> Self {
        Self {
            io_error: 0.0,
            torn_write: 0.0,
            disk_full: 0.0,
            slow_write: None,
        }
    }
}

/// A deterministic fault-injecting [`CheckpointStore`]: wraps an inner
/// store and, per operation, draws from a seeded RNG whether to fail
/// transiently, tear the write, report disk-full, or stall. Used by the
/// fault-injection test suite and the CI `fault-injection` job; the
/// injected schedule is a pure function of the seed and the operation
/// sequence.
pub struct FaultyStore<S: CheckpointStore = FsStore> {
    inner: S,
    plan: FaultPlan,
    rng: Mutex<StdRng>,
}

impl<S: CheckpointStore> std::fmt::Debug for FaultyStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The vendored parking_lot Mutex has no Debug impl; the RNG
        // state is not informative anyway.
        f.debug_struct("FaultyStore")
            .field("inner", &self.inner)
            .field("plan", &self.plan)
            .finish()
    }
}

impl FaultyStore<FsStore> {
    /// A faulty wrapper over the real filesystem store.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        Self::wrap(FsStore, seed, plan)
    }
}

impl<S: CheckpointStore> FaultyStore<S> {
    /// Wraps `inner` with the given fault plan and RNG seed.
    pub fn wrap(inner: S, seed: u64, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl<S: CheckpointStore> CheckpointStore for FaultyStore<S> {
    fn write_atomic(&self, path: &Path, text: &str) -> Result<(), EngineError> {
        // Draw the whole schedule for this operation up front so the
        // RNG stream advances identically whichever branch fires.
        let (io_err, torn, full, cut) = {
            let mut rng = self.rng.lock();
            (
                rng.gen_bool(self.plan.io_error),
                rng.gen_bool(self.plan.torn_write),
                rng.gen_bool(self.plan.disk_full),
                rng.gen_range(0..text.len().max(1)),
            )
        };
        if let Some(delay) = self.plan.slow_write {
            std::thread::sleep(delay);
        }
        if full {
            return Err(EngineError::CheckpointDiskFull {
                path: path.display().to_string(),
                detail: "injected: no space left on device".to_string(),
            });
        }
        if torn {
            // Tear the file in place: a strict prefix lands at the
            // *final* path, as if the device died mid-write without the
            // rename discipline. The parser's end-marker must catch it.
            let _ = std::fs::write(path, &text.as_bytes()[..cut]);
            return Err(EngineError::CheckpointIo {
                path: path.display().to_string(),
                detail: format!("injected: torn write after {cut} bytes"),
            });
        }
        if io_err {
            return Err(EngineError::CheckpointIo {
                path: path.display().to_string(),
                detail: "injected: transient I/O error".to_string(),
            });
        }
        self.inner.write_atomic(path, text)
    }

    fn read(&self, path: &Path) -> Result<String, EngineError> {
        let io_err = self.rng.lock().gen_bool(self.plan.io_error);
        if io_err {
            return Err(EngineError::CheckpointIo {
                path: path.display().to_string(),
                detail: "injected: transient read error".to_string(),
            });
        }
        self.inner.read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn remove(&self, path: &Path) -> Result<(), EngineError> {
        self.inner.remove(path)
    }
}

/// Environment variable overriding the checkpoint retry budget.
pub const CHECKPOINT_RETRIES_ENV: &str = "MAXNVM_CHECKPOINT_RETRIES";

/// Default retry budget when `MAXNVM_CHECKPOINT_RETRIES` is unset.
pub const DEFAULT_CHECKPOINT_RETRIES: u32 = 3;

/// Base backoff delay; attempt `k` sleeps `base << k` before retrying.
pub const RETRY_BASE_DELAY: Duration = Duration::from_millis(10);

/// Parses a `MAXNVM_CHECKPOINT_RETRIES` override: a non-negative
/// integer (0 disables retries). Anything else is a typed
/// [`EngineError::InvalidConfig`], never a silent default.
pub fn parse_checkpoint_retries(raw: &str) -> Result<u32, EngineError> {
    raw.trim()
        .parse::<u32>()
        .map_err(|_| EngineError::InvalidConfig {
            var: CHECKPOINT_RETRIES_ENV.to_string(),
            value: raw.to_string(),
        })
}

/// The validated retry-budget override from the environment: `Ok(None)`
/// when `MAXNVM_CHECKPOINT_RETRIES` is unset,
/// [`EngineError::InvalidConfig`] when set but malformed.
pub fn env_checkpoint_retries() -> Result<Option<u32>, EngineError> {
    match std::env::var(CHECKPOINT_RETRIES_ENV) {
        Ok(raw) => parse_checkpoint_retries(&raw).map(Some),
        Err(_) => Ok(None),
    }
}

/// Bounded retry with exponential backoff for checkpoint I/O.
///
/// Only the transient [`EngineError::CheckpointIo`] class is retried;
/// [`EngineError::CheckpointDiskFull`] (retrying cannot help),
/// [`EngineError::CheckpointParse`], and
/// [`EngineError::CheckpointMismatch`] (retrying would return the same
/// bytes) propagate immediately. After the budget is exhausted the last
/// `CheckpointIo` is returned as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = single attempt).
    pub retries: u32,
    /// Backoff before retry `k` is `base_delay << k`.
    pub base_delay: Duration,
}

impl RetryPolicy {
    /// A policy with the given retry budget and the default base delay.
    pub fn new(retries: u32) -> Self {
        Self {
            retries,
            base_delay: RETRY_BASE_DELAY,
        }
    }

    /// No retries at all: one attempt, errors propagate immediately.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// The budget from `MAXNVM_CHECKPOINT_RETRIES` when set to a valid
    /// value, otherwise [`DEFAULT_CHECKPOINT_RETRIES`]. A malformed
    /// override cannot be reported here, so it falls back with a
    /// one-time warning; [`crate::engine::EvalContext::new`] surfaces
    /// the typed [`EngineError::InvalidConfig`] at the API boundary.
    pub fn from_env() -> Self {
        match env_checkpoint_retries() {
            Ok(Some(n)) => Self::new(n),
            Ok(None) => Self::new(DEFAULT_CHECKPOINT_RETRIES),
            Err(e) => {
                static WARN_ONCE: Once = Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "maxnvm: warning: {e}; falling back to {DEFAULT_CHECKPOINT_RETRIES} retries"
                    );
                });
                Self::new(DEFAULT_CHECKPOINT_RETRIES)
            }
        }
    }

    /// Runs `op`, retrying transient [`EngineError::CheckpointIo`]
    /// failures up to the budget with exponential backoff. Any other
    /// error — and success — returns immediately.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T, EngineError>) -> Result<T, EngineError> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Err(EngineError::CheckpointIo { path, detail }) if attempt < self.retries => {
                    // Exponential backoff, capped shifts so a huge
                    // budget cannot overflow the Duration multiply.
                    let delay = self.base_delay * (1u32 << attempt.min(10));
                    std::thread::sleep(delay);
                    attempt += 1;
                    let _ = (path, detail);
                }
                other => return other,
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Where and how often to checkpoint a run, and through which store.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Snapshot file; a sibling `<path>.tmp` is used for atomic writes.
    pub path: PathBuf,
    /// Write a snapshot after every `every` newly completed trials.
    pub every: usize,
    /// Keep the file after a run completes (default: remove it, so a
    /// finished campaign cannot be accidentally "resumed").
    pub keep_on_success: bool,
    /// The storage backend all checkpoint I/O goes through (default:
    /// the real [`FsStore`]).
    pub store: Arc<dyn CheckpointStore>,
    /// Bounded retry with backoff applied to every load and save.
    pub retry: RetryPolicy,
}

// The trait object has no meaningful equality; two configs are equal
// when their observable policy (path, cadence, retention, retry) is.
impl PartialEq for CheckpointConfig {
    fn eq(&self, other: &Self) -> bool {
        self.path == other.path
            && self.every == other.every
            && self.keep_on_success == other.keep_on_success
            && self.retry == other.retry
    }
}

impl Eq for CheckpointConfig {}

impl CheckpointConfig {
    /// Checkpoints to `path` every 64 trials, removing on success,
    /// through the real filesystem store with the environment-derived
    /// retry budget.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every: 64,
            keep_on_success: false,
            store: Arc::new(FsStore),
            retry: RetryPolicy::from_env(),
        }
    }

    /// Sets the flush cadence (in completed trials; clamped to ≥ 1).
    pub fn every(mut self, trials: usize) -> Self {
        self.every = trials.max(1);
        self
    }

    /// Keeps the snapshot after a successful run.
    pub fn keep_on_success(mut self) -> Self {
        self.keep_on_success = true;
        self
    }

    /// Routes all checkpoint I/O through `store` (e.g. a
    /// [`FaultyStore`] in the fault-injection suite).
    pub fn with_store(mut self, store: Arc<dyn CheckpointStore>) -> Self {
        self.store = store;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Loads, parses, and — retrying transient I/O per the policy —
    /// returns the snapshot at this config's path.
    pub fn load_snapshot(&self) -> Result<CampaignCheckpoint, EngineError> {
        let text = self.retry.run(|| self.store.read(&self.path))?;
        CampaignCheckpoint::from_text(&text)
    }

    /// Saves `snapshot` through the store, retrying transient I/O per
    /// the policy.
    pub fn save_snapshot(&self, snapshot: &CampaignCheckpoint) -> Result<(), EngineError> {
        let text = snapshot.to_text();
        self.retry
            .run(|| self.store.write_atomic(&self.path, &text))
    }
}

/// FNV-1a accumulator for configuration fingerprints. Stable across
/// platforms and runs (unlike `DefaultHasher`, which is seeded).
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Starts a fingerprint already bound to the checkpoint format and
    /// trial-semantics versions.
    pub fn new() -> Self {
        let mut f = Fingerprint(0xcbf2_9ce4_8422_2325);
        f.push_str(CHECKPOINT_FORMAT);
        f.push_u64(TRIAL_SEMANTICS_VERSION as u64);
        f
    }

    /// Continues a fingerprint from a previously finished digest, so a
    /// shard layout (or any later refinement) can be folded on top of a
    /// base configuration fingerprint without re-walking the inputs.
    pub fn resume(state: u64) -> Self {
        Fingerprint(state)
    }

    /// Folds raw bytes in.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
        self
    }

    /// Folds an integer in (little-endian bytes).
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push_bytes(&v.to_le_bytes())
    }

    /// Folds a float in, bit-exact.
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.push_u64(v.to_bits())
    }

    /// Folds a string in (length-prefixed, so `"ab","c"` ≠ `"a","bc"`).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes())
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// A resumable snapshot of a (possibly multi-scheme) campaign: which
/// trials finished and what each produced.
///
/// Plain campaigns use a single group (index 0); DSE sweeps use one
/// group per candidate scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// Digest of the campaign configuration this snapshot belongs to.
    pub fingerprint: u64,
    /// Human-readable run label (scheme label or sweep name).
    pub label: String,
    /// Number of trial groups (1 for a campaign, schemes for a DSE).
    pub groups: usize,
    /// Requested trials per group.
    pub trials: usize,
    /// Base RNG seed; trial `t` uses `seed.wrapping_add(t)`.
    pub seed: u64,
    /// Which shard of the sweep this snapshot holds (0 when unsharded).
    pub shard_index: usize,
    /// Total shards in the layout this snapshot was produced under
    /// (1 when unsharded).
    pub shard_count: usize,
    /// Completed trials: `(group, trial, outcome)`.
    pub entries: Vec<(usize, usize, TrialOutcome)>,
}

impl CampaignCheckpoint {
    /// An empty snapshot for a fresh run.
    pub fn new(
        fingerprint: u64,
        label: impl Into<String>,
        groups: usize,
        trials: usize,
        seed: u64,
    ) -> Self {
        Self {
            fingerprint,
            label: label.into(),
            groups,
            trials,
            seed,
            shard_index: 0,
            shard_count: 1,
            entries: Vec::new(),
        }
    }

    /// Marks this snapshot as shard `index` of `count` (the fingerprint
    /// passed to [`Self::new`] should already have the shard layout
    /// folded in; these fields let a merge recover each source's layout
    /// without guessing).
    pub fn with_shard(mut self, index: usize, count: usize) -> Self {
        self.shard_index = index;
        self.shard_count = count;
        self
    }

    /// Records one finished trial.
    pub fn record(&mut self, group: usize, trial: usize, outcome: TrialOutcome) {
        self.entries.push((group, trial, outcome));
    }

    /// The set of already-completed `(group, trial)` pairs. Ordered
    /// (`BTreeSet`) so any traversal is deterministic (lint rule D1).
    pub fn completed(&self) -> BTreeSet<(usize, usize)> {
        self.entries.iter().map(|(g, t, _)| (*g, *t)).collect()
    }

    /// Errors with [`EngineError::CheckpointMismatch`] unless this
    /// snapshot's fingerprint matches `expected`.
    pub fn verify(&self, expected: u64) -> Result<(), EngineError> {
        if self.fingerprint == expected {
            Ok(())
        } else {
            Err(EngineError::CheckpointMismatch {
                expected,
                found: self.fingerprint,
            })
        }
    }

    /// Serializes the snapshot to its line-based text format.
    pub fn to_text(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|(g, t, _)| (*g, *t));
        let mut out = String::with_capacity(64 + entries.len() * 48);
        out.push_str(CHECKPOINT_FORMAT);
        out.push('\n');
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!("groups {}\n", self.groups));
        out.push_str(&format!("trials {}\n", self.trials));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!(
            "shard {} {}\n",
            self.shard_index, self.shard_count
        ));
        out.push_str(&format!("label {}\n", escape(&self.label)));
        for (group, trial, outcome) in &entries {
            match outcome {
                TrialOutcome::Ok { error, stats } => {
                    out.push_str(&format!(
                        "ok {group} {trial} {:016x} {} {} {}\n",
                        error.to_bits(),
                        stats.cell_faults,
                        stats.ecc_corrected,
                        stats.ecc_uncorrectable
                    ));
                }
                TrialOutcome::Failed { seed, message } => {
                    out.push_str(&format!(
                        "failed {group} {trial} {seed} {}\n",
                        escape(message)
                    ));
                }
            }
        }
        out.push_str(&format!("end {}\n", entries.len()));
        out
    }

    /// Parses the text format produced by [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<Self, EngineError> {
        let parse = |detail: String| EngineError::CheckpointParse { detail };
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| parse("empty file".into()))?;
        if header != CHECKPOINT_FORMAT {
            return Err(parse(format!("unknown format header {header:?}")));
        }
        let mut field = |name: &str| -> Result<String, EngineError> {
            let line = lines
                .next()
                .ok_or_else(|| parse(format!("missing {name} line")))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| parse(format!("expected {name} line, got {line:?}")))
        };
        let fingerprint = u64::from_str_radix(&field("fingerprint")?, 16)
            .map_err(|e| parse(format!("bad fingerprint: {e}")))?;
        let groups = field("groups")?
            .parse()
            .map_err(|e| parse(format!("bad groups: {e}")))?;
        let trials = field("trials")?
            .parse()
            .map_err(|e| parse(format!("bad trials: {e}")))?;
        let seed = field("seed")?
            .parse()
            .map_err(|e| parse(format!("bad seed: {e}")))?;
        let shard_line = field("shard")?;
        let (shard_index, shard_count) = shard_line
            .split_once(' ')
            .and_then(|(i, c)| Some((i.parse().ok()?, c.parse().ok()?)))
            .ok_or_else(|| parse(format!("bad shard line: {shard_line:?}")))?;
        let label = unescape(&field("label")?);
        let mut entries = Vec::new();
        let mut ended = false;
        for line in lines {
            let (kind, rest) = line
                .split_once(' ')
                .ok_or_else(|| parse(format!("malformed line {line:?}")))?;
            match kind {
                "ok" => {
                    let mut it = rest.splitn(6, ' ');
                    let mut next = |what: &str| -> Result<&str, EngineError> {
                        it.next()
                            .ok_or_else(|| parse(format!("ok line missing {what}: {line:?}")))
                    };
                    let group = next("group")?
                        .parse()
                        .map_err(|e| parse(format!("bad group: {e}")))?;
                    let trial = next("trial")?
                        .parse()
                        .map_err(|e| parse(format!("bad trial: {e}")))?;
                    let error = f64::from_bits(
                        u64::from_str_radix(next("error")?, 16)
                            .map_err(|e| parse(format!("bad error bits: {e}")))?,
                    );
                    let cell_faults = next("cell_faults")?
                        .parse()
                        .map_err(|e| parse(format!("bad cell_faults: {e}")))?;
                    let ecc_corrected = next("ecc_corrected")?
                        .parse()
                        .map_err(|e| parse(format!("bad ecc_corrected: {e}")))?;
                    let ecc_uncorrectable = next("ecc_uncorrectable")?
                        .parse()
                        .map_err(|e| parse(format!("bad ecc_uncorrectable: {e}")))?;
                    entries.push((
                        group,
                        trial,
                        TrialOutcome::Ok {
                            error,
                            stats: DecodeStats {
                                cell_faults,
                                ecc_corrected,
                                ecc_uncorrectable,
                            },
                        },
                    ));
                }
                "failed" => {
                    let mut it = rest.splitn(4, ' ');
                    let mut next = |what: &str| -> Result<&str, EngineError> {
                        it.next()
                            .ok_or_else(|| parse(format!("failed line missing {what}: {line:?}")))
                    };
                    let group = next("group")?
                        .parse()
                        .map_err(|e| parse(format!("bad group: {e}")))?;
                    let trial = next("trial")?
                        .parse()
                        .map_err(|e| parse(format!("bad trial: {e}")))?;
                    let seed = next("seed")?
                        .parse()
                        .map_err(|e| parse(format!("bad seed: {e}")))?;
                    let message = unescape(it.next().unwrap_or(""));
                    entries.push((group, trial, TrialOutcome::Failed { seed, message }));
                }
                "end" => {
                    let count: usize = rest
                        .parse()
                        .map_err(|e| parse(format!("bad end count: {e}")))?;
                    if count != entries.len() {
                        return Err(parse(format!(
                            "truncated snapshot: end says {count}, found {}",
                            entries.len()
                        )));
                    }
                    ended = true;
                }
                other => return Err(parse(format!("unknown record kind {other:?}"))),
            }
        }
        if !ended {
            return Err(parse("truncated snapshot: missing end marker".into()));
        }
        Ok(Self {
            fingerprint,
            label,
            groups,
            trials,
            seed,
            shard_index,
            shard_count,
            entries,
        })
    }

    /// Atomically writes the snapshot through the real [`FsStore`]:
    /// serialize to `<path>.tmp`, fsync, rename over `path`. A crash
    /// mid-write leaves the previous snapshot intact.
    pub fn save(&self, path: &Path) -> Result<(), EngineError> {
        FsStore.write_atomic(path, &self.to_text())
    }

    /// Loads and parses a snapshot through the real [`FsStore`].
    pub fn load(path: &Path) -> Result<Self, EngineError> {
        Self::from_text(&FsStore.read(path)?)
    }
}

/// Adapts any [`CheckpointStore`] onto the encoding crate's
/// `ArtifactStore`, so the on-disk encode cache
/// ([`maxnvm_encoding::storage::EncodeDiskCache`]) can reuse the same
/// backends as campaign checkpoints — including the fault-injecting
/// [`FaultyStore`] in the resilience suite. Typed engine errors are
/// flattened to `std::io::Error` text; the cache treats any failure as
/// a miss, so nothing downstream needs the structure back.
#[derive(Debug, Clone)]
pub struct CheckpointArtifactStore(pub Arc<dyn CheckpointStore>);

impl maxnvm_encoding::storage::ArtifactStore for CheckpointArtifactStore {
    fn write_atomic(&self, path: &Path, text: &str) -> std::io::Result<()> {
        self.0
            .write_atomic(path, text)
            .map_err(|e| std::io::Error::other(e.to_string()))
    }

    fn read(&self, path: &Path) -> std::io::Result<String> {
        self.0
            .read(path)
            .map_err(|e| std::io::Error::other(e.to_string()))
    }

    fn exists(&self, path: &Path) -> bool {
        self.0.exists(path)
    }

    fn remove(&self, path: &Path) -> std::io::Result<()> {
        self.0
            .remove(path)
            .map_err(|e| std::io::Error::other(e.to_string()))
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignCheckpoint {
        let mut cp = CampaignCheckpoint::new(0xdead_beef_1234_5678, "BitM+IdxSync", 2, 10, 42);
        cp.record(
            0,
            3,
            TrialOutcome::Ok {
                error: 0.12345678901234567,
                stats: DecodeStats {
                    cell_faults: 7,
                    ecc_corrected: 2,
                    ecc_uncorrectable: 0,
                },
            },
        );
        cp.record(
            1,
            0,
            TrialOutcome::Failed {
                seed: 42,
                message: "index out of bounds:\n the len is 3".into(),
            },
        );
        cp.record(
            0,
            0,
            TrialOutcome::Ok {
                error: f64::MIN_POSITIVE,
                stats: DecodeStats::default(),
            },
        );
        cp
    }

    #[test]
    fn text_round_trip_is_exact() {
        let cp = sample();
        let parsed = CampaignCheckpoint::from_text(&cp.to_text()).expect("parse");
        // Serialization sorts entries by (group, trial).
        let mut want = cp.clone();
        want.entries.sort_by_key(|(g, t, _)| (*g, *t));
        assert_eq!(parsed, want);
    }

    #[test]
    fn file_round_trip_is_exact() {
        let dir = std::env::temp_dir().join(format!("maxnvm-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        let cp = sample();
        cp.save(&path).expect("save");
        let loaded = CampaignCheckpoint::load(&path).expect("load");
        assert_eq!(loaded.fingerprint, cp.fingerprint);
        assert_eq!(loaded.entries.len(), cp.entries.len());
        // Error bits survive bit-exactly.
        let tiny = loaded
            .entries
            .iter()
            .find(|(g, t, _)| (*g, *t) == (0, 0))
            .unwrap();
        match &tiny.2 {
            TrialOutcome::Ok { error, .. } => {
                assert_eq!(error.to_bits(), f64::MIN_POSITIVE.to_bits())
            }
            other => panic!("wrong outcome {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let cp = sample();
        let text = cp.to_text();
        // Drop the end marker (simulated torn write without the rename
        // discipline).
        let torn: String = text.lines().take(7).map(|l| format!("{l}\n")).collect();
        let err = CampaignCheckpoint::from_text(&torn).expect_err("must reject");
        assert!(
            matches!(err, EngineError::CheckpointParse { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn shard_layout_round_trips_and_defaults_to_unsharded() {
        let cp = sample();
        assert_eq!((cp.shard_index, cp.shard_count), (0, 1));
        let sharded = sample().with_shard(2, 5);
        let parsed = CampaignCheckpoint::from_text(&sharded.to_text()).expect("parse");
        assert_eq!((parsed.shard_index, parsed.shard_count), (2, 5));
        // A snapshot with a mangled shard line is rejected, not guessed.
        let bad = sharded.to_text().replace("shard 2 5", "shard 2");
        assert!(matches!(
            CampaignCheckpoint::from_text(&bad),
            Err(EngineError::CheckpointParse { .. })
        ));
    }

    #[test]
    fn fingerprint_mismatch_is_typed() {
        let cp = sample();
        cp.verify(cp.fingerprint).expect("same fingerprint passes");
        let err = cp.verify(1).expect_err("mismatch must fail");
        assert_eq!(
            err,
            EngineError::CheckpointMismatch {
                expected: 1,
                found: cp.fingerprint
            }
        );
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let digest = |f: &mut Fingerprint| f.finish();
        let mut a = Fingerprint::new();
        a.push_str("scheme").push_u64(20).push_f64(1.0);
        let mut b = Fingerprint::new();
        b.push_str("scheme").push_u64(20).push_f64(1.0);
        assert_eq!(digest(&mut a), digest(&mut b), "deterministic");
        let mut c = Fingerprint::new();
        c.push_str("scheme").push_u64(21).push_f64(1.0);
        assert_ne!(digest(&mut a), digest(&mut c), "sensitive to params");
        // Length prefixing: ("ab","c") vs ("a","bc") must differ.
        let mut d = Fingerprint::new();
        d.push_str("ab").push_str("c");
        let mut e = Fingerprint::new();
        e.push_str("a").push_str("bc");
        assert_ne!(digest(&mut d), digest(&mut e));
    }

    #[test]
    fn escape_round_trips_control_characters() {
        for s in ["plain", "with\nnewline", "back\\slash", "\r\n\\n mix \\"] {
            assert_eq!(unescape(&escape(s)), s, "{s:?}");
        }
    }

    #[test]
    fn disk_full_io_errors_map_to_the_distinct_variant() {
        let path = Path::new("/spool/s.ckpt");
        for kind in [
            std::io::ErrorKind::StorageFull,
            std::io::ErrorKind::WriteZero,
        ] {
            let err = map_io_error(path, std::io::Error::new(kind, "full"));
            assert!(
                matches!(err, EngineError::CheckpointDiskFull { ref path, .. } if path.contains("s.ckpt")),
                "{kind:?} -> {err:?}"
            );
        }
        let enospc = map_io_error(path, std::io::Error::from_raw_os_error(28));
        assert!(
            matches!(enospc, EngineError::CheckpointDiskFull { .. }),
            "{enospc:?}"
        );
        let other = map_io_error(
            path,
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert!(
            matches!(other, EngineError::CheckpointIo { .. }),
            "{other:?}"
        );
    }

    #[test]
    fn retry_policy_retries_only_transient_io() {
        let policy = RetryPolicy {
            retries: 3,
            base_delay: Duration::ZERO,
        };
        // Transient errors are retried until the budget runs out...
        let mut calls = 0;
        let err = policy
            .run(|| -> Result<(), EngineError> {
                calls += 1;
                Err(EngineError::CheckpointIo {
                    path: "p".into(),
                    detail: "flaky".into(),
                })
            })
            .expect_err("exhausted budget must surface the error");
        assert_eq!(calls, 4, "1 attempt + 3 retries");
        assert!(matches!(err, EngineError::CheckpointIo { .. }));
        // ...and success within the budget wins.
        let mut calls = 0;
        policy
            .run(|| {
                calls += 1;
                if calls < 3 {
                    Err(EngineError::CheckpointIo {
                        path: "p".into(),
                        detail: "flaky".into(),
                    })
                } else {
                    Ok(())
                }
            })
            .expect("third attempt succeeds");
        assert_eq!(calls, 3);
        // Disk-full and parse errors are never retried.
        for err in [
            EngineError::CheckpointDiskFull {
                path: "p".into(),
                detail: "full".into(),
            },
            EngineError::CheckpointParse {
                detail: "torn".into(),
            },
        ] {
            let mut calls = 0;
            let got = policy
                .run(|| -> Result<(), EngineError> {
                    calls += 1;
                    Err(err.clone())
                })
                .expect_err("must propagate");
            assert_eq!(calls, 1, "{err:?} must not be retried");
            assert_eq!(got, err);
        }
    }

    #[test]
    fn checkpoint_retry_overrides_parse_strictly() {
        assert_eq!(parse_checkpoint_retries("0").ok(), Some(0));
        assert_eq!(parse_checkpoint_retries(" 7 ").ok(), Some(7));
        for bad in ["-1", "", "  ", "three", "2.5", "4x"] {
            let err = parse_checkpoint_retries(bad).expect_err(bad);
            assert_eq!(
                err,
                EngineError::InvalidConfig {
                    var: CHECKPOINT_RETRIES_ENV.to_string(),
                    value: bad.to_string(),
                },
                "{bad:?}"
            );
        }
    }

    #[test]
    fn faulty_store_is_deterministic_per_seed_and_tears_real_prefixes() {
        let dir = std::env::temp_dir().join(format!("maxnvm-faulty-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.ckpt");
        let text = sample().to_text();
        let schedule = |seed: u64| -> Vec<bool> {
            let _ = std::fs::remove_file(&path);
            let store = FaultyStore::new(
                seed,
                FaultPlan {
                    io_error: 0.4,
                    torn_write: 0.3,
                    disk_full: 0.1,
                    slow_write: None,
                },
            );
            (0..32)
                .map(|_| store.write_atomic(&path, &text).is_ok())
                .collect()
        };
        assert_eq!(schedule(9), schedule(9), "same seed, same fault schedule");
        assert_ne!(schedule(9), schedule(10), "different seeds must differ");
        // A torn write leaves a strict prefix at the final path that the
        // parser rejects with a typed error.
        let _ = std::fs::remove_file(&path);
        let torn_only = FaultyStore::new(
            0,
            FaultPlan {
                io_error: 0.0,
                torn_write: 1.0,
                disk_full: 0.0,
                slow_write: None,
            },
        );
        let err = torn_only.write_atomic(&path, &text).expect_err("torn");
        assert!(matches!(err, EngineError::CheckpointIo { .. }));
        if path.exists() {
            let left = std::fs::read_to_string(&path).unwrap();
            assert!(text.starts_with(&left), "must be a prefix");
            assert!(left.len() < text.len(), "must be strict");
            assert!(CampaignCheckpoint::from_text(&left).is_err());
        }
        // Disk-full injection surfaces the distinct variant.
        let full_only = FaultyStore::new(
            0,
            FaultPlan {
                io_error: 0.0,
                torn_write: 0.0,
                disk_full: 1.0,
                slow_write: None,
            },
        );
        let err = full_only.write_atomic(&path, &text).expect_err("full");
        assert!(matches!(err, EngineError::CheckpointDiskFull { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_config_equality_ignores_the_store() {
        let a = CheckpointConfig::new("/tmp/a.ckpt").every(8);
        let b = CheckpointConfig::new("/tmp/a.ckpt")
            .every(8)
            .with_store(Arc::new(FaultyStore::new(1, FaultPlan::flaky())));
        assert_eq!(a, b, "store backend is not part of the config identity");
        let c = CheckpointConfig::new("/tmp/a.ckpt")
            .every(8)
            .with_retry(RetryPolicy::none());
        if a.retry != RetryPolicy::none() {
            assert_ne!(a, c, "retry policy is part of the config identity");
        }
    }
}
