/root/repo/target/release/deps/table4-3ad47bb655e92a0a.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-3ad47bb655e92a0a: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
