//! Compressed sparse row encoding (§3.2.1).
//!
//! Three structures encode the cluster-index matrix: the non-zero **values**
//! in order, **relative column indexes** (gap to the previous non-zero
//! within the row, as the paper describes), and a per-row **counter** of
//! non-zero entries. Gaps wider than the fixed index width insert padding
//! entries (zero value, maximum gap), the standard fixed-width-CSR trick.
//!
//! The decoder deliberately reproduces the paper's §4.2 failure modes: a
//! misread row counter offsets *every subsequent row's* values; a misread
//! column gap shifts the remainder of its row.

use crate::cluster::ClusteredLayer;
use crate::StructureKind;
use maxnvm_bits::{BitBuffer, BitReader};
use serde::{Deserialize, Serialize};

/// Default width of the relative column-index field when the density is
/// unknown.
pub const DEFAULT_COL_IDX_BITS: u8 = 8;

/// Width of the relative column-index field chosen for a layer of the
/// given shape and non-zero density: wide enough that padding entries
/// (gaps overflowing the field) stay rare (a few percent), narrow enough
/// not to waste bits — the per-layer tuning §3.2.1 alludes to.
pub fn col_idx_bits_for(cols: u64, density: f64) -> u8 {
    assert!(cols > 0, "empty row");
    let density = density.clamp(1e-6, 1.0);
    // Cover roughly twice the mean gap; clamp to [4, 8] and never wider
    // than an absolute index would need.
    let target = (2.0 * (1.0 - density) / density).ceil().max(1.0) as u64;
    bit_width(target).clamp(4, 8).min(bit_width(cols))
}

/// How CSR column positions are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColIndexMode {
    /// Gap to the previous non-zero within the row (the paper's choice):
    /// compact, but a misread offsets the remainder of the row.
    Relative,
    /// Absolute column number: a misread corrupts exactly one weight's
    /// position, but "requires strictly higher overhead than integrating
    /// lightweight ECC" (§4.2).
    Absolute,
}

/// A CSR-encoded layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrLayer {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Bits per cluster-index value.
    pub index_bits: u8,
    /// Bits per column-index field.
    pub col_idx_bits: u8,
    /// Relative (gap) or absolute column positions.
    pub col_mode: ColIndexMode,
    /// Bits per row counter (`ceil(log2(cols + 1))`, counters count
    /// entries including padding so they can reach `cols`).
    pub counter_bits: u8,
    /// Entry values (cluster indices; padding entries hold 0).
    pub values: Vec<u16>,
    /// Entry gaps (zeros skipped before this entry within the row).
    pub gaps: Vec<u16>,
    /// Entries per row (including padding entries).
    pub row_counts: Vec<u32>,
}

impl CsrLayer {
    /// Encodes a clustered layer, choosing the relative-index width from
    /// the layer's density (see [`col_idx_bits_for`]).
    pub fn encode(layer: &ClusteredLayer) -> Self {
        let density = layer.nonzeros() as f64 / layer.indices.len().max(1) as f64;
        Self::encode_with_width(layer, col_idx_bits_for(layer.cols as u64, density))
    }

    /// Encodes with absolute column indexes (§4.2's alternative
    /// mitigation): no padding entries, single-weight fault blast radius,
    /// `ceil(log2(cols))` bits per entry.
    // maxnvm-lint: allow(R1/index-arith): ClusteredLayer guarantees indices.len() == rows*cols, so the r*cols..(r+1)*cols row slice is in range for every r < rows.
    pub fn encode_absolute(layer: &ClusteredLayer) -> Self {
        let col_idx_bits = bit_width(layer.cols.saturating_sub(1) as u64);
        let counter_bits = bit_width(layer.cols as u64);
        let mut values = Vec::new();
        let mut gaps = Vec::new();
        let mut row_counts = Vec::with_capacity(layer.rows);
        for r in 0..layer.rows {
            let row = &layer.indices[r * layer.cols..(r + 1) * layer.cols];
            let mut count = 0u32;
            for (c, &v) in row.iter().enumerate() {
                if v == 0 {
                    continue;
                }
                values.push(v);
                gaps.push(c as u16);
                count += 1;
            }
            row_counts.push(count);
        }
        Self {
            rows: layer.rows,
            cols: layer.cols,
            index_bits: layer.index_bits,
            col_idx_bits,
            col_mode: ColIndexMode::Absolute,
            counter_bits,
            values,
            gaps,
            row_counts,
        }
    }

    /// Encodes with an explicit relative-index width.
    ///
    /// # Panics
    ///
    /// Panics if `col_idx_bits` is 0 or > 16.
    // maxnvm-lint: allow(R1/index-arith): ClusteredLayer guarantees indices.len() == rows*cols, so the r*cols..(r+1)*cols row slice is in range for every r < rows.
    pub fn encode_with_width(layer: &ClusteredLayer, col_idx_bits: u8) -> Self {
        assert!((1..=16).contains(&col_idx_bits), "col index width");
        let max_gap = (1u32 << col_idx_bits) - 1;
        let counter_bits = bit_width(layer.cols as u64);
        let mut values = Vec::new();
        let mut gaps = Vec::new();
        let mut row_counts = Vec::with_capacity(layer.rows);
        for r in 0..layer.rows {
            let row = &layer.indices[r * layer.cols..(r + 1) * layer.cols];
            let mut pos = 0u32;
            let mut count = 0u32;
            for (c, &v) in row.iter().enumerate() {
                if v == 0 {
                    continue;
                }
                let mut gap = c as u32 - pos;
                while gap > max_gap {
                    // Padding entry: skip max_gap zeros, store a zero.
                    values.push(0);
                    gaps.push(max_gap as u16);
                    count += 1;
                    pos += max_gap + 1;
                    gap = c as u32 - pos;
                }
                values.push(v);
                gaps.push(gap as u16);
                count += 1;
                pos = c as u32 + 1;
            }
            row_counts.push(count);
        }
        Self {
            rows: layer.rows,
            cols: layer.cols,
            index_bits: layer.index_bits,
            col_idx_bits,
            col_mode: ColIndexMode::Relative,
            counter_bits,
            values,
            gaps,
            row_counts,
        }
    }

    /// Number of stored entries (non-zeros plus padding).
    pub fn entries(&self) -> usize {
        self.values.len()
    }

    /// Serializes the three structures into independent bit streams, the
    /// unit at which bits-per-cell and protection are chosen.
    pub fn to_streams(&self) -> Vec<(StructureKind, BitBuffer)> {
        let mut vals = BitBuffer::with_capacity(self.values.len() * self.index_bits as usize);
        for &v in &self.values {
            vals.push_bits(v as u64, self.index_bits as usize);
        }
        let mut cols = BitBuffer::with_capacity(self.gaps.len() * self.col_idx_bits as usize);
        for &g in &self.gaps {
            cols.push_bits(g as u64, self.col_idx_bits as usize);
        }
        let mut counters =
            BitBuffer::with_capacity(self.row_counts.len() * self.counter_bits as usize);
        for &c in &self.row_counts {
            counters.push_bits(c as u64, self.counter_bits as usize);
        }
        vec![
            (StructureKind::Values, vals),
            (StructureKind::ColIndex, cols),
            (StructureKind::RowCounter, counters),
        ]
    }

    /// Rebuilds the encoded form from (possibly fault-corrupted) streams.
    ///
    /// `entries` is the true entry count (a property of the array sizing,
    /// not of the stored bits, so faults cannot change it).
    #[allow(clippy::too_many_arguments)]
    pub fn from_streams(
        rows: usize,
        cols: usize,
        index_bits: u8,
        col_idx_bits: u8,
        counter_bits: u8,
        entries: usize,
        values: &BitBuffer,
        gaps: &BitBuffer,
        counters: &BitBuffer,
    ) -> Self {
        let mut vr = BitReader::new(values);
        let mut gr = BitReader::new(gaps);
        let mut cr = BitReader::new(counters);
        let values: Vec<u16> = (0..entries)
            .map(|_| vr.read_bits(index_bits as usize).unwrap_or(0) as u16)
            .collect();
        let gaps: Vec<u16> = (0..entries)
            .map(|_| gr.read_bits(col_idx_bits as usize).unwrap_or(0) as u16)
            .collect();
        let row_counts: Vec<u32> = (0..rows)
            .map(|_| cr.read_bits(counter_bits as usize).unwrap_or(0) as u32)
            .collect();
        Self {
            rows,
            cols,
            index_bits,
            col_idx_bits,
            col_mode: ColIndexMode::Relative,
            counter_bits,
            values,
            gaps,
            row_counts,
        }
    }

    /// Total stored bits across the three structures.
    pub fn total_bits(&self) -> u64 {
        self.values.len() as u64 * self.index_bits as u64
            + self.gaps.len() as u64 * self.col_idx_bits as u64
            + self.row_counts.len() as u64 * self.counter_bits as u64
    }

    /// Reconstructs the dense cluster-index matrix.
    ///
    /// Faithful to hardware decoding: the value-array read pointer is the
    /// running sum of row counters, so a corrupted counter misaligns every
    /// later row; positions pushed past the row end by corrupted gaps are
    /// dropped.
    // maxnvm-lint: allow(R1/index-arith): out is allocated rows*cols and both arms check pos/field < cols before writing r*cols+pos, so corrupted streams clip instead of wrapping.
    pub fn reconstruct_indices(&self) -> Vec<u16> {
        let mut out = vec![0u16; self.rows * self.cols];
        let mut ptr = 0usize; // running index into values/gaps
        for r in 0..self.rows {
            let count = self.row_counts.get(r).copied().unwrap_or(0) as usize;
            let mut pos = 0usize;
            for _ in 0..count {
                if ptr >= self.values.len() {
                    break; // counter faults ran the pointer off the array
                }
                let field = self.gaps[ptr] as usize;
                let v = self.values[ptr];
                ptr += 1;
                match self.col_mode {
                    ColIndexMode::Relative => {
                        pos += field;
                        if pos < self.cols && v != 0 {
                            out[r * self.cols + pos] = v;
                        }
                        pos += 1;
                    }
                    ColIndexMode::Absolute => {
                        // A corrupted absolute index moves exactly one
                        // weight; nothing downstream shifts.
                        if field < self.cols && v != 0 {
                            out[r * self.cols + field] = v;
                        }
                    }
                }
            }
        }
        out
    }

    /// Walks the stored (value, column) runs per row in storage order,
    /// calling `f(row, col, value)` for every entry that lands a non-zero
    /// cluster index inside the matrix — without materializing the dense
    /// index matrix. Gap-encoded zero runs are never visited and padding
    /// entries (zero value) are filtered, so the walk is O(entries) and
    /// emits exactly the non-zeros [`Self::reconstruct_indices`] would
    /// place, in ascending (row, col) order under clean metadata.
    pub fn for_each_nonzero(&self, mut f: impl FnMut(usize, usize, u16)) {
        let mut ptr = 0usize;
        for r in 0..self.rows {
            let count = self.row_counts.get(r).copied().unwrap_or(0) as usize;
            let mut pos = 0usize;
            for _ in 0..count {
                if ptr >= self.values.len() {
                    break;
                }
                let field = self.gaps[ptr] as usize;
                let v = self.values[ptr];
                ptr += 1;
                match self.col_mode {
                    ColIndexMode::Relative => {
                        pos += field;
                        if pos < self.cols && v != 0 {
                            f(r, pos, v);
                        }
                        pos += 1;
                    }
                    ColIndexMode::Absolute => {
                        if field < self.cols && v != 0 {
                            f(r, field, v);
                        }
                    }
                }
            }
        }
    }

    /// The output-matrix slot each stored entry writes during
    /// [`Self::reconstruct_indices`] (`u32::MAX` when an entry's position
    /// falls outside the matrix or the counters never reach it). Under
    /// clean metadata every entry is visited once and slots are unique:
    /// positions strictly increase within a row.
    pub fn entry_slots(&self) -> Vec<u32> {
        let mut out = vec![u32::MAX; self.values.len()];
        let mut ptr = 0usize;
        for r in 0..self.rows {
            let count = self.row_counts.get(r).copied().unwrap_or(0) as usize;
            let mut pos = 0usize;
            for _ in 0..count {
                if ptr >= self.values.len() {
                    break;
                }
                let field = self.gaps[ptr] as usize;
                match self.col_mode {
                    ColIndexMode::Relative => {
                        pos += field;
                        if pos < self.cols {
                            out[ptr] = (r * self.cols + pos) as u32;
                        }
                        pos += 1;
                    }
                    ColIndexMode::Absolute => {
                        if field < self.cols {
                            out[ptr] = (r * self.cols + field) as u32;
                        }
                    }
                }
                ptr += 1;
            }
        }
        out
    }
}

/// Minimum bits to represent values `0..=max`.
pub fn bit_width(max: u64) -> u8 {
    (64 - max.leading_zeros()).max(1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_dnn::network::LayerMatrix;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn clustered(rows: usize, cols: usize, sparsity: f64, seed: u64) -> ClusteredLayer {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen::<f64>() < sparsity {
                    0.0
                } else {
                    rng.gen::<f32>() + 0.1
                }
            })
            .collect();
        ClusteredLayer::from_matrix(&LayerMatrix::new("t", rows, cols, data), 4, seed)
    }

    fn round_trip(c: &ClusteredLayer, width: u8) -> Vec<u16> {
        let enc = CsrLayer::encode_with_width(c, width);
        let streams = enc.to_streams();
        let dec = CsrLayer::from_streams(
            c.rows,
            c.cols,
            c.index_bits,
            width,
            enc.counter_bits,
            enc.entries(),
            &streams[0].1,
            &streams[1].1,
            &streams[2].1,
        );
        dec.reconstruct_indices()
    }

    #[test]
    fn adaptive_width_tracks_density() {
        // Dense layers get the minimum width; sparse layers wider fields.
        assert_eq!(col_idx_bits_for(1024, 0.6), 4);
        assert_eq!(col_idx_bits_for(1024, 0.19), 4);
        assert_eq!(col_idx_bits_for(1024, 0.10), 5);
        assert_eq!(col_idx_bits_for(1024, 0.02), 7);
        assert_eq!(col_idx_bits_for(1024, 0.001), 8);
        // Never wider than an absolute index.
        assert_eq!(col_idx_bits_for(8, 0.001), 4);
    }

    #[test]
    fn adaptive_encode_round_trips() {
        for sparsity in [0.3, 0.8, 0.95] {
            let c = clustered(8, 64, sparsity, 11);
            let enc = CsrLayer::encode(&c);
            let streams = enc.to_streams();
            let dec = CsrLayer::from_streams(
                c.rows,
                c.cols,
                c.index_bits,
                enc.col_idx_bits,
                enc.counter_bits,
                enc.entries(),
                &streams[0].1,
                &streams[1].1,
                &streams[2].1,
            );
            assert_eq!(dec.reconstruct_indices(), c.indices, "sparsity {sparsity}");
        }
    }

    #[test]
    fn bit_width_basics() {
        assert_eq!(bit_width(0), 1);
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(2), 2);
        assert_eq!(bit_width(255), 8);
        assert_eq!(bit_width(256), 9);
    }

    #[test]
    fn clean_round_trip_matches_original() {
        let c = clustered(10, 20, 0.7, 1);
        assert_eq!(round_trip(&c, 8), c.indices);
    }

    #[test]
    fn round_trip_with_narrow_width_uses_padding() {
        // Width 2 (max gap 3) on a sparse matrix forces padding entries.
        let c = clustered(6, 40, 0.9, 2);
        let enc = CsrLayer::encode_with_width(&c, 2);
        assert!(
            enc.entries() > c.nonzeros(),
            "expected padding entries: {} vs {}",
            enc.entries(),
            c.nonzeros()
        );
        assert_eq!(round_trip(&c, 2), c.indices);
    }

    #[test]
    fn empty_rows_round_trip() {
        let m = LayerMatrix::new(
            "t",
            3,
            4,
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        );
        let c = ClusteredLayer::from_matrix(&m, 4, 3);
        assert_eq!(round_trip(&c, 8), c.indices);
    }

    #[test]
    fn dense_matrix_round_trip() {
        let c = clustered(5, 5, 0.0, 4);
        let enc = CsrLayer::encode(&c);
        assert_eq!(enc.entries(), 25);
        assert!(enc.gaps.iter().all(|&g| g == 0));
        assert_eq!(round_trip(&c, 8), c.indices);
    }

    #[test]
    fn row_counter_fault_misaligns_subsequent_rows() {
        // §4.2: a single misread row counter offsets reads of the non-zero
        // data array so all remaining values are mis-assigned.
        let c = clustered(8, 16, 0.5, 5);
        let mut enc = CsrLayer::encode(&c);
        let clean = enc.reconstruct_indices();
        // Corrupt the *first* row's counter by +1.
        enc.row_counts[0] += 1;
        let bad = enc.reconstruct_indices();
        // Row 0 unchanged placements may differ in the tail, but critically
        // rows after 0 must be corrupted.
        let later_wrong = (1..8).any(|r| bad[r * 16..(r + 1) * 16] != clean[r * 16..(r + 1) * 16]);
        assert!(later_wrong, "counter fault should propagate to later rows");
    }

    #[test]
    fn col_gap_fault_is_confined_to_its_row() {
        // §4.2: a misread relative column index offsets the remaining
        // values *within that row only*.
        let c = clustered(6, 16, 0.5, 6);
        let mut enc = CsrLayer::encode(&c);
        let clean = enc.reconstruct_indices();
        // Find the first entry of row 2 and corrupt its gap.
        let row2_start: usize = enc.row_counts[..2].iter().map(|&x| x as usize).sum();
        assert!(enc.row_counts[2] > 0, "row 2 should have entries");
        enc.gaps[row2_start] = enc.gaps[row2_start].wrapping_add(1);
        let bad = enc.reconstruct_indices();
        for r in 0..6 {
            let same = bad[r * 16..(r + 1) * 16] == clean[r * 16..(r + 1) * 16];
            if r == 2 {
                assert!(!same, "row 2 should be corrupted");
            } else {
                assert!(same, "row {r} should be untouched");
            }
        }
    }

    #[test]
    fn absolute_round_trip() {
        for sparsity in [0.2, 0.7, 0.95] {
            let c = clustered(7, 300, sparsity, 13);
            let enc = CsrLayer::encode_absolute(&c);
            assert_eq!(enc.col_mode, ColIndexMode::Absolute);
            assert_eq!(enc.entries(), c.nonzeros(), "no padding entries");
            assert_eq!(enc.reconstruct_indices(), c.indices);
        }
    }

    #[test]
    fn absolute_index_fault_corrupts_one_weight() {
        // §4.2: absolute indexes confine a misread to a single weight.
        let c = clustered(6, 64, 0.5, 14);
        let mut enc = CsrLayer::encode_absolute(&c);
        let clean = enc.reconstruct_indices();
        enc.gaps[3] = enc.gaps[3].wrapping_add(1) % 64;
        let bad = enc.reconstruct_indices();
        let diffs = clean.iter().zip(&bad).filter(|(a, b)| a != b).count();
        assert!(
            diffs <= 2,
            "at most the old and new position change: {diffs}"
        );
    }

    #[test]
    fn absolute_costs_strictly_more_bits_than_relative() {
        // §4.2: "this requires strictly higher overhead than integrating
        // lightweight ECC" — and higher than the relative format itself.
        let c = clustered(16, 1024, 0.8, 15);
        let rel = CsrLayer::encode(&c).total_bits();
        let abs = CsrLayer::encode_absolute(&c).total_bits();
        assert!(abs > rel, "absolute {abs} vs relative {rel}");
        // ECC on the relative format is still cheaper than going absolute.
        let ecc_overhead = (rel as f64 * 0.0035) as u64; // SEC-DED 512B blocks
        assert!(abs > rel + ecc_overhead);
    }

    #[test]
    fn decoder_survives_wildly_corrupt_counters() {
        let c = clustered(4, 8, 0.5, 7);
        let mut enc = CsrLayer::encode(&c);
        for rc in &mut enc.row_counts {
            *rc = 255; // far beyond the entry array
        }
        let out = enc.reconstruct_indices();
        assert_eq!(out.len(), 32); // no panic, well-formed output
    }

    fn walk_entries(enc: &CsrLayer) -> Vec<(usize, usize, u16)> {
        let mut out = Vec::new();
        enc.for_each_nonzero(|r, c, v| out.push((r, c, v)));
        out
    }

    fn reconstruct_entries(indices: &[u16], cols: usize) -> Vec<(usize, usize, u16)> {
        indices
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (i / cols, i % cols, v))
            .collect()
    }

    #[test]
    fn walk_matches_reconstruction_and_skips_padding() {
        // Narrow width forces padding entries; the walk must filter them.
        let c = clustered(6, 40, 0.9, 2);
        let enc = CsrLayer::encode_with_width(&c, 2);
        assert!(enc.entries() > c.nonzeros());
        assert_eq!(
            walk_entries(&enc),
            reconstruct_entries(&enc.reconstruct_indices(), enc.cols)
        );
        // Absolute mode walks the same set.
        let abs = CsrLayer::encode_absolute(&c);
        assert_eq!(
            walk_entries(&abs),
            reconstruct_entries(&abs.reconstruct_indices(), abs.cols)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_walk_matches_reconstruction(
            rows in 1usize..10,
            cols in 1usize..30,
            sparsity in 0.0f64..0.98,
            seed in any::<u64>(),
            width in 2u8..9,
        ) {
            let c = clustered(rows, cols, sparsity, seed);
            let enc = CsrLayer::encode_with_width(&c, width);
            prop_assert_eq!(
                walk_entries(&enc),
                reconstruct_entries(&enc.reconstruct_indices(), cols)
            );
        }

        #[test]
        fn prop_round_trip(
            rows in 1usize..10,
            cols in 1usize..30,
            sparsity in 0.0f64..0.98,
            seed in any::<u64>(),
            width in 2u8..9,
        ) {
            let c = clustered(rows, cols, sparsity, seed);
            prop_assert_eq!(round_trip(&c, width), c.indices);
        }
    }
}
