//! Determinism guarantees: every stochastic stage is seeded, so the whole
//! pipeline — training, clustering, storage, injection, DSE, system
//! evaluation — must be bit-reproducible run to run. This is what makes
//! the regression locks and `EXPERIMENTS.md` meaningful.

use maxnvm::{optimal_design, CellTechnology};
use maxnvm_dnn::data::SyntheticDigits;
use maxnvm_dnn::train::{sgd_train, TrainConfig};
use maxnvm_dnn::zoo::{self, lenet_mini};
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{MlcConfig, SenseAmp};
use maxnvm_faultsim::campaign::Campaign;
use maxnvm_faultsim::evaluate::ProxyEval;

#[test]
fn training_is_deterministic() {
    let data = SyntheticDigits::generate(300, 42);
    let run = || {
        let mut net = lenet_mini(7);
        sgd_train(
            &mut net,
            &data.train,
            &TrainConfig {
                epochs: 2,
                lr: 0.005,
                momentum: 0.9,
                seed: 1,
            },
        )
        .unwrap();
        net
    };
    assert_eq!(run(), run());
}

#[test]
fn clustering_and_storage_are_deterministic() {
    let spec = zoo::vgg12();
    let m = spec.layers[3].sample_matrix(spec.paper.sparsity, 9, 64, 256);
    let run = || {
        let c = ClusteredLayer::from_matrix(&m, 4, 5);
        StoredLayer::store(
            &c,
            &StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn campaigns_are_deterministic_across_thread_schedules() {
    // Trials are seeded per trial id, so the parallel campaign's result
    // must not depend on thread interleaving.
    let spec = zoo::vgg12();
    let m = spec.layers[5].sample_matrix(spec.paper.sparsity, 11, 64, 256);
    let c = ClusteredLayer::from_matrix(&m, 4, 5);
    let stored = StoredLayer::store(
        &c,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3),
    );
    let eval = ProxyEval::new(vec![c.reconstruct()], 0.1, 0.9);
    let campaign = Campaign {
        trials: 16,
        seed: 3,
        rate_scale: 100.0,
    };
    let run = || {
        campaign.run(
            std::slice::from_ref(&stored),
            CellTechnology::MlcCtt,
            &SenseAmp::paper_default(),
            &eval,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.errors, b.errors);
    assert_eq!(a.mean_cell_faults, b.mean_cell_faults);
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = optimal_design(&zoo::resnet50(), CellTechnology::MlcCtt);
    let b = optimal_design(&zoo::resnet50(), CellTechnology::MlcCtt);
    assert_eq!(a, b);
}
