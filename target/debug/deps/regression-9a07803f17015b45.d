/root/repo/target/debug/deps/regression-9a07803f17015b45.d: tests/regression.rs

/root/repo/target/debug/deps/regression-9a07803f17015b45: tests/regression.rs

tests/regression.rs:
