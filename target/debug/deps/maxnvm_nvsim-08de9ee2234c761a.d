/root/repo/target/debug/deps/maxnvm_nvsim-08de9ee2234c761a.d: crates/nvsim/src/lib.rs crates/nvsim/src/extrapolate.rs crates/nvsim/src/sram.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_nvsim-08de9ee2234c761a.rmeta: crates/nvsim/src/lib.rs crates/nvsim/src/extrapolate.rs crates/nvsim/src/sram.rs Cargo.toml

crates/nvsim/src/lib.rs:
crates/nvsim/src/extrapolate.rs:
crates/nvsim/src/sram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
