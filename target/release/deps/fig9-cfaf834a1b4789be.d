/root/repo/target/release/deps/fig9-cfaf834a1b4789be.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-cfaf834a1b4789be: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
