//! Structured errors for the evaluation engine.
//!
//! Public entry points of the campaign/DSE pipeline report invalid
//! configurations as typed [`EngineError`]s instead of panicking, so
//! callers (CLI binaries, benchmark harnesses) can surface the problem
//! without unwinding through worker threads.

use std::fmt;

/// Everything that can go wrong when configuring or running an
/// evaluation: invalid rate scaling, chip campaigns asked to scale
/// physical rates, mismatched context/campaign settings, a design
/// sweep where no candidate preserves accuracy, a malformed worker
/// override, or a checkpoint that does not belong to the run resuming
/// from it.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// `rate_scale` must be a positive, finite multiplier.
    InvalidRateScale(f64),
    /// Chip-instance campaigns draw analog programming outcomes, which
    /// cannot be rate-scaled; only `rate_scale == 1.0` is meaningful.
    ChipRateScale(f64),
    /// A campaign configuration's `rate_scale` disagrees with the
    /// evaluation context whose fault maps it would run against.
    RateScaleMismatch {
        /// The campaign's requested multiplier.
        campaign: f64,
        /// The multiplier the context precomputed its fault maps with.
        context: f64,
    },
    /// An evaluation context was requested with zero workers.
    NoWorkers,
    /// A design sweep found no scheme within the iso-training-noise
    /// bound (cannot happen for supported technologies: SLC always
    /// passes).
    NoPassingScheme,
    /// The `MAXNVM_THREADS` environment variable is set but is not a
    /// positive integer.
    InvalidWorkerConfig {
        /// The rejected value, verbatim.
        value: String,
    },
    /// The `MAXNVM_FORCE_SCALAR` environment variable is set but is not
    /// a recognized boolean (`1`/`true`/`0`/`false`).
    InvalidSimdConfig {
        /// The rejected value, verbatim.
        value: String,
    },
    /// A shard layout that cannot partition anything: a sweep must be
    /// split into `count >= 1` shards and this process's `index` must
    /// name one of them (`index < count`).
    InvalidShardConfig {
        /// The rejected shard index.
        index: usize,
        /// The rejected shard count.
        count: usize,
    },
    /// A checkpoint's configuration fingerprint does not match the run
    /// trying to resume from it — resuming would silently mix trials
    /// from different configurations.
    CheckpointMismatch {
        /// Fingerprint of the resuming run's configuration.
        expected: u64,
        /// Fingerprint recorded in the checkpoint file.
        found: u64,
    },
    /// Reading or writing a checkpoint file failed (transient class:
    /// bounded retry with backoff is appropriate).
    CheckpointIo {
        /// The file involved.
        path: String,
        /// The underlying I/O error, as text.
        detail: String,
    },
    /// Writing a checkpoint failed because the device is out of space
    /// (`ErrorKind::StorageFull`/`WriteZero`). Distinct from
    /// [`EngineError::CheckpointIo`] so a supervisor can *evict* the
    /// stream (its previous snapshot is still resumable) instead of
    /// retrying hopelessly against a full disk.
    CheckpointDiskFull {
        /// The file that could not be written.
        path: String,
        /// The underlying I/O error, as text.
        detail: String,
    },
    /// A checkpoint file exists but cannot be parsed (truncated,
    /// corrupted, or from an unknown format version).
    CheckpointParse {
        /// What was wrong, with the offending line where possible.
        detail: String,
    },
    /// An environment override (`MAXNVM_CHECKPOINT_RETRIES`,
    /// `MAXNVM_WATCHDOG_SECS`, …) is set but malformed. Surfaced at
    /// context/supervisor construction, mirroring how `MAXNVM_THREADS`
    /// and `MAXNVM_FORCE_SCALAR` are handled; bare-library paths fall
    /// back to the default with a one-time warning instead.
    InvalidConfig {
        /// The environment variable involved.
        var: String,
        /// The rejected value, verbatim.
        value: String,
    },
    /// An internal invariant failed. Surfaced as a typed error instead
    /// of a panic so callers never unwind through worker threads; seeing
    /// this is always a bug in the engine.
    Internal {
        /// Which invariant broke.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRateScale(s) => {
                write!(f, "rate_scale must be positive and finite, got {s}")
            }
            Self::ChipRateScale(s) => write!(
                f,
                "chip-instance campaigns use physical rates; rate_scale must be 1.0, got {s}"
            ),
            Self::RateScaleMismatch { campaign, context } => write!(
                f,
                "campaign rate_scale {campaign} does not match the evaluation \
                 context's precomputed {context}"
            ),
            Self::NoWorkers => {
                write!(f, "an evaluation context requires at least one worker")
            }
            Self::NoPassingScheme => write!(
                f,
                "no storage configuration stays within the iso-training-noise bound"
            ),
            Self::InvalidWorkerConfig { value } => write!(
                f,
                "MAXNVM_THREADS must be a positive integer, got {value:?}"
            ),
            Self::InvalidSimdConfig { value } => write!(
                f,
                "MAXNVM_FORCE_SCALAR must be 1/true or 0/false, got {value:?}"
            ),
            Self::InvalidShardConfig { index, count } => write!(
                f,
                "invalid shard layout: index {index} of count {count} \
                 (need count >= 1 and index < count)"
            ),
            Self::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:016x} does not match this run's \
                 configuration ({expected:016x}); refusing to mix trials from \
                 different configurations"
            ),
            Self::CheckpointIo { path, detail } => {
                write!(f, "checkpoint I/O failed for {path}: {detail}")
            }
            Self::CheckpointDiskFull { path, detail } => {
                write!(
                    f,
                    "checkpoint write to {path} failed: device out of space ({detail}); \
                     evict the stream instead of retrying"
                )
            }
            Self::InvalidConfig { var, value } => {
                write!(f, "invalid environment override {var}={value:?}")
            }
            Self::CheckpointParse { detail } => {
                write!(f, "checkpoint file is corrupt or unreadable: {detail}")
            }
            Self::Internal { detail } => {
                write!(
                    f,
                    "internal engine invariant violated (this is a bug): {detail}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::ChipRateScale(2.0);
        assert!(e.to_string().contains("rate_scale must be 1.0"));
        assert!(e.to_string().contains('2'));
        let m = EngineError::RateScaleMismatch {
            campaign: 2.0,
            context: 1.0,
        };
        assert!(m.to_string().contains("does not match"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(EngineError::NoPassingScheme);
        assert!(e.to_string().contains("iso-training-noise"));
    }

    #[test]
    fn resilience_errors_are_informative() {
        let w = EngineError::InvalidWorkerConfig { value: "-3".into() };
        assert!(w.to_string().contains("MAXNVM_THREADS"));
        assert!(w.to_string().contains("-3"));
        let s = EngineError::InvalidSimdConfig {
            value: "yes".into(),
        };
        assert!(s.to_string().contains("MAXNVM_FORCE_SCALAR"));
        assert!(s.to_string().contains("yes"));
        let c = EngineError::CheckpointMismatch {
            expected: 0xabc,
            found: 0xdef,
        };
        assert!(c.to_string().contains("0000000000000def"));
        assert!(c.to_string().contains("0000000000000abc"));
        let io = EngineError::CheckpointIo {
            path: "/tmp/x.ckpt".into(),
            detail: "permission denied".into(),
        };
        assert!(io.to_string().contains("/tmp/x.ckpt"));
        let sh = EngineError::InvalidShardConfig { index: 3, count: 3 };
        assert!(sh.to_string().contains("index 3"));
        assert!(sh.to_string().contains("count 3"));
        assert!(sh.to_string().contains("index < count"));
    }

    #[test]
    fn storage_errors_are_distinguishable_and_informative() {
        let full = EngineError::CheckpointDiskFull {
            path: "/spool/s1.ckpt".into(),
            detail: "No space left on device".into(),
        };
        assert!(full.to_string().contains("/spool/s1.ckpt"));
        assert!(full.to_string().contains("out of space"));
        assert_ne!(
            full,
            EngineError::CheckpointIo {
                path: "/spool/s1.ckpt".into(),
                detail: "No space left on device".into(),
            }
        );
        let cfg = EngineError::InvalidConfig {
            var: "MAXNVM_CHECKPOINT_RETRIES".into(),
            value: "-1".into(),
        };
        assert!(cfg.to_string().contains("MAXNVM_CHECKPOINT_RETRIES"));
        assert!(cfg.to_string().contains("-1"));
    }
}
