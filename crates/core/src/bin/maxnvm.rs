//! `maxnvm` — command-line front end to the co-design pipeline.
//!
//! ```text
//! maxnvm design  <model> <tech>   full pipeline for one model/technology
//! maxnvm compare <model>          all four technologies + DRAM baseline
//! maxnvm dse     <model> <tech>   densest design-space points (pass/fail)
//! maxnvm hybrid  <model> <tech>   the §6 fixed-area SRAM/eNVM split sweep
//! maxnvm models                   list the model zoo
//! ```
//!
//! Models: `lenet5 | vgg12 | vgg16 | resnet50`.
//! Technologies: `ctt | rram | opt-rram | slc-rram`.

use maxnvm::{baseline_design, optimal_design, CellTechnology, NvdlaConfig};
use maxnvm_dnn::zoo::{self, ModelSpec};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{SenseAmp, WriteModel};
use maxnvm_faultsim::dse::explore_spec;
use maxnvm_nvdla::hybrid::sweep_hybrid;
use maxnvm_nvdla::perf::encoded_weight_bytes;
use std::process::ExitCode;

fn parse_model(name: &str) -> Option<ModelSpec> {
    match name.to_ascii_lowercase().as_str() {
        "lenet5" => Some(zoo::lenet5()),
        "vgg12" => Some(zoo::vgg12()),
        "vgg16" => Some(zoo::vgg16()),
        "resnet50" => Some(zoo::resnet50()),
        _ => None,
    }
}

fn parse_tech(name: &str) -> Option<CellTechnology> {
    match name.to_ascii_lowercase().as_str() {
        "ctt" | "mlc-ctt" => Some(CellTechnology::MlcCtt),
        "rram" | "mlc-rram" => Some(CellTechnology::MlcRram),
        "opt-rram" | "opt" => Some(CellTechnology::OptMlcRram),
        "slc-rram" | "slc" => Some(CellTechnology::SlcRram),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  maxnvm design  <model> <tech>\n  maxnvm compare <model>\n  \
         maxnvm dse     <model> <tech>\n  maxnvm hybrid  <model> <tech>\n  maxnvm models\n\n\
         models: lenet5 | vgg12 | vgg16 | resnet50\n\
         techs:  ctt | rram | opt-rram | slc-rram"
    );
    ExitCode::FAILURE
}

fn cmd_design(spec: &ModelSpec, tech: CellTechnology) {
    let d = optimal_design(spec, tech).expect("design");
    println!("{} on {}", spec.name, tech.name());
    println!("  encoding           {}", d.scheme_label);
    println!("  max bits per cell  {}", d.max_bits_per_cell);
    println!("  cells              {:.2}M", d.cells as f64 / 1e6);
    println!("  capacity           {:.1} MB", d.capacity_mb);
    println!("  est. error         {:.2}%", d.mean_error * 100.0);
    println!("  macro area         {:.2} mm2", d.array.area_mm2);
    println!("  read latency       {:.2} ns", d.array.read_latency_ns);
    println!(
        "  read energy        {:.2} pJ/access",
        d.array.read_energy_pj
    );
    println!(
        "  read bandwidth     {:.1} GB/s",
        d.array.read_bandwidth_gbps
    );
    println!(
        "  write time         {}",
        WriteModel::format_duration(d.write_time_s)
    );
    println!(
        "  NVDLA-64           {:.2} mJ/inf, {:.0} mW, {:.1} FPS",
        d.system_64.energy_per_inference_mj, d.system_64.avg_power_mw, d.system_64.fps
    );
    println!(
        "  NVDLA-1024         {:.2} mJ/inf, {:.0} mW, {:.1} FPS",
        d.system_1024.energy_per_inference_mj, d.system_1024.avg_power_mw, d.system_1024.fps
    );
}

fn cmd_compare(spec: &ModelSpec) {
    println!(
        "{} on NVDLA-64: DRAM baseline vs on-chip eNVM proposals\n",
        spec.name
    );
    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "weight store", "area(mm2)", "E(mJ/inf)", "P(mW)", "FPS", "write"
    );
    let base = baseline_design(spec, &NvdlaConfig::nvdla_64());
    println!(
        "{:<16} {:>10} {:>12.2} {:>10.0} {:>10.1} {:>12}",
        "LPDDR4 DRAM", "-", base.energy_per_inference_mj, base.avg_power_mw, base.fps, "-"
    );
    for tech in CellTechnology::ALL {
        let d = optimal_design(spec, tech).expect("design");
        println!(
            "{:<16} {:>10.2} {:>12.2} {:>10.0} {:>10.1} {:>12}",
            tech.name(),
            d.array.area_mm2,
            d.system_64.energy_per_inference_mj,
            d.system_64.avg_power_mw,
            d.system_64.fps,
            WriteModel::format_duration(d.write_time_s)
        );
    }
}

fn cmd_dse(spec: &ModelSpec, tech: CellTechnology) {
    let points = explore_spec(spec, tech, &SenseAmp::paper_default(), spec.paper.itn_bound);
    let mut sorted = points;
    sorted.sort_by_key(|p| p.cells);
    println!(
        "{} on {}: densest 15 of {} design points (ITN bound {:.2}%)\n",
        spec.name,
        tech.name(),
        sorted.len(),
        spec.paper.itn_bound * 100.0
    );
    println!(
        "{:<20} {:>12} {:>10} {:>6}",
        "scheme", "cells(M)", "error", "pass"
    );
    for p in sorted.iter().take(15) {
        println!(
            "{:<20} {:>12.2} {:>9.2}% {:>6}",
            p.scheme.label(),
            p.cells as f64 / 1e6,
            p.mean_error * 100.0,
            if p.passes { "yes" } else { "NO" }
        );
    }
}

fn cmd_hybrid(spec: &ModelSpec, tech: CellTechnology) {
    let bytes = encoded_weight_bytes(spec, EncodingKind::Csr, false);
    let fractions: Vec<f64> = (0..=9).map(|i| i as f64 * 0.1).collect();
    let points = sweep_hybrid(
        spec,
        &NvdlaConfig::nvdla_1024(),
        tech,
        tech.max_bits_per_cell(),
        1.0,
        &bytes,
        &fractions,
    )
    .expect("feasible hybrid sweep");
    println!(
        "{} with 1mm2 on-chip memory split SRAM/eNVM ({}):
",
        spec.name,
        tech.name()
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "eNVM%", "cap(MB)", "rel perf", "rel E"
    );
    for p in &points {
        println!(
            "{:>5.0}% {:>10.1} {:>10.3} {:>10.3}",
            p.envm_fraction * 100.0,
            p.envm_capacity_bits as f64 / 8.0 / 1024.0 / 1024.0,
            p.relative_performance,
            p.relative_energy
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("models") => {
            for spec in ModelSpec::paper_models() {
                println!(
                    "{:<10} {:<10} {:>3} layers {:>12} params  sparsity {:.1}%  {}b indices",
                    spec.name.to_ascii_lowercase(),
                    spec.dataset,
                    spec.layers.len(),
                    spec.params(),
                    spec.paper.sparsity * 100.0,
                    spec.paper.cluster_index_bits
                );
            }
            ExitCode::SUCCESS
        }
        Some("design") if args.len() == 3 => match (parse_model(&args[1]), parse_tech(&args[2])) {
            (Some(m), Some(t)) => {
                cmd_design(&m, t);
                ExitCode::SUCCESS
            }
            _ => usage(),
        },
        Some("compare") if args.len() == 2 => match parse_model(&args[1]) {
            Some(m) => {
                cmd_compare(&m);
                ExitCode::SUCCESS
            }
            None => usage(),
        },
        Some("dse") if args.len() == 3 => match (parse_model(&args[1]), parse_tech(&args[2])) {
            (Some(m), Some(t)) => {
                cmd_dse(&m, t);
                ExitCode::SUCCESS
            }
            _ => usage(),
        },
        Some("hybrid") if args.len() == 3 => match (parse_model(&args[1]), parse_tech(&args[2])) {
            (Some(m), Some(t)) => {
                cmd_hybrid(&m, t);
                ExitCode::SUCCESS
            }
            _ => usage(),
        },
        _ => usage(),
    }
}
