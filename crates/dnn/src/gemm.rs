//! Cache-blocked f32 GEMM with a fixed, input-independent summation order.
//!
//! The naive i-k-j matmul this replaces re-reads the whole right-hand
//! matrix from memory for every output row; at LeNet5 batch sizes the
//! trial loop spends most of its time there. This kernel uses the
//! classic three-level blocking (GotoBLAS / BLIS structure): the right
//! operand is packed into `NR`-wide column panels, the left operand
//! into `MR`-tall row panels, and an `MR`×`NR` register-tile
//! micro-kernel runs over `KC`-deep slices. The micro-kernel is written
//! as fixed-size accumulator arrays so the compiler autovectorizes it —
//! no `std::simd`, no intrinsics, no extra dependencies.
//!
//! # Summation order (determinism contract D1)
//!
//! Every output element `c[i, j]` is accumulated in **pure ascending-k
//! order**: `(((0 + a[i,0]·b[0,j]) + a[i,1]·b[1,j]) + …)`. The
//! micro-kernel loads the current `c` tile into its accumulators, adds
//! the panel's `kc` products in k order, and stores the tile back, so
//! splitting `k` into `KC`-deep panels does not reorder any element's
//! additions — the sequence is identical to one long sequential dot
//! product. Rust never contracts `a*b + c` into a fused multiply-add,
//! so the result is a pure function of that operation sequence: the
//! kernel is bit-identical run to run, at any blocking interaction,
//! and [`gemm_row_into`] (a plain sequential dot used to re-derive
//! single output rows) reproduces any row of [`gemm_into`] bit for
//! bit. That property is what lets the fault-delta forward pass
//! recompute only the rows a fault touched (see `network`/`prefix`).
//!
//! The dense kernel does not branch on zero-valued `a` entries —
//! data-dependent branches defeat vectorization — but skipping a term
//! whose `a` entry is exactly `±0.0` *is* a bitwise no-op: every
//! accumulator starts at `+0.0`, and under round-to-nearest a running
//! sum that starts at `+0.0` can never become `-0.0` (`+0.0 + ±0.0 =
//! +0.0`, and exact cancellation of nonzero terms also yields `+0.0`),
//! so adding `0.0·b` leaves both value and sign bits unchanged for any
//! finite `b`. That invariant is what makes the sparse path
//! ([`sparse_gemm_into`], [`sparse_row_into`]) bit-identical to the
//! dense one: it performs the same ascending-k additions minus the
//! skippable zero terms. The one caveat is non-finite activations — the
//! dense path would compute `0.0 · inf = NaN` where the sparse path
//! skips — which cannot arise from the finite inputs this crate feeds
//! the kernels (see `DESIGN.md` §13).

/// Micro-kernel tile rows (register-blocked output rows per strip).
pub const MR: usize = 4;
/// Micro-kernel tile columns; `MR`×`NR` accumulators live in registers.
pub const NR: usize = 8;
/// Depth of one packed panel (L1-resident slice of the k dimension).
pub const KC: usize = 256;
/// Row-block height (L2-resident slab of the packed left operand).
pub const MC: usize = 64;
/// Column-block width (L3-resident slab of the packed right operand).
pub const NC: usize = 1024;

/// Reusable packing buffers for [`gemm_into`]. Holding one per worker
/// (inside the evaluation scratch) keeps the trial loop allocation-free:
/// the buffers grow to `MC`×`KC` and `KC`×`NC` floats once and are
/// reused by every subsequent multiply.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    packed_a: Vec<f32>,
    packed_b: Vec<f32>,
    /// Per-`KC`-block nonzero counts of the sparse left operand, used by
    /// [`sparse_gemm_into`] to elide packing for all-zero k panels.
    kblock_nnz: Vec<u32>,
    /// Per-row walk positions into the sparse left operand's entries.
    cursors: Vec<usize>,
}

/// `c = a · b` for row-major `a` (`m`×`k`), `b` (`k`×`n`), `c` (`m`×`n`).
///
/// `c` is overwritten (zeroed first). See the module docs for the
/// summation-order guarantee.
///
/// # Panics
///
/// Asserts that the slice lengths match the given dimensions.
pub fn gemm_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
) {
    assert_eq!(a.len(), m * k, "lhs length vs {m}x{k}");
    assert_eq!(b.len(), k * n, "rhs length vs {k}x{n}");
    assert_eq!(c.len(), m * n, "out length vs {m}x{n}");
    c.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(&mut scratch.packed_b, b, n, pc, kc, jc, nc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(&mut scratch.packed_a, a, k, ic, mc, pc, kc);
                macro_kernel(
                    c,
                    &scratch.packed_a,
                    &scratch.packed_b,
                    n,
                    ic,
                    mc,
                    kc,
                    jc,
                    nc,
                );
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// One output row by a plain sequential dot: `out[j] = Σ_k row[k]·b[k,j]`
/// accumulated in ascending-k order — bit-identical to the same row of
/// [`gemm_into`] (see the module docs). Used by the clean-prefix fault
/// path to recompute only the weight rows a fault touched.
///
/// # Panics
///
/// Asserts that the slice lengths match the given dimensions.
pub fn gemm_row_into(out: &mut [f32], row: &[f32], b: &[f32], k: usize, n: usize) {
    assert_eq!(row.len(), k, "row length vs k={k}");
    assert_eq!(b.len(), k * n, "rhs length vs {k}x{n}");
    assert_eq!(out.len(), n, "out length vs n={n}");
    out.fill(0.0);
    for (kk, &av) in row.iter().enumerate() {
        let brow = &b[kk * n..(kk + 1) * n];
        for (o, &bv) in out.iter_mut().zip(brow) {
            *o += av * bv;
        }
    }
}

/// `c = a · b` for a sparse-encoded left operand: row-major `b`
/// (`a.cols()`×`n`), `c` (`a.rows()`×`n`), with no dense materialization
/// of `a`. O(nnz · n) plus packing.
///
/// Blocking mirrors [`gemm_into`]: the right operand is packed into the
/// same `NR`-wide `KC`-deep panels, but k panels with no nonzero `a`
/// entry are elided entirely (never packed, never touched), and within a
/// live panel each row walks only its stored entries via per-row
/// cursors. Per output element the additions are the dense kernel's
/// ascending-k sequence minus the exact-zero terms, which the module
/// docs show is bitwise identical for finite `b` — so this routine's
/// output equals [`gemm_into`] of the materialized matrix bit for bit.
///
/// # Panics
///
/// Asserts that the slice lengths match `a`'s shape and `n`.
pub fn sparse_gemm_into(
    c: &mut [f32],
    a: &crate::sparse::SparseMatrix,
    b: &[f32],
    n: usize,
    scratch: &mut GemmScratch,
) {
    let (m, k) = (a.rows(), a.cols());
    assert_eq!(b.len(), k * n, "rhs length vs {k}x{n}");
    assert_eq!(c.len(), m * n, "out length vs {m}x{n}");
    c.fill(0.0);
    if m == 0 || k == 0 || n == 0 || a.nnz() == 0 {
        return;
    }
    let GemmScratch {
        packed_b,
        kblock_nnz,
        cursors,
        ..
    } = scratch;
    a.kblock_nnz(KC, kblock_nnz);
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let strips = nc.div_ceil(NR);
        cursors.clear();
        cursors.resize(m, 0);
        let mut pc = 0;
        let mut block = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            if kblock_nnz[block] == 0 {
                // Zero panel elided: no row has an entry here, so the
                // cursors are already past it.
                pc += KC;
                block += 1;
                continue;
            }
            pack_b(packed_b, b, n, pc, kc, jc, nc);
            for i in 0..m {
                let (cols, vals) = a.row(i);
                let mut cur = cursors[i];
                let crow = &mut c[i * n + jc..i * n + jc + nc];
                while cur < cols.len() && (cols[cur] as usize) < pc + kc {
                    let kk = cols[cur] as usize - pc;
                    let av = vals[cur];
                    for s in 0..strips {
                        let width = NR.min(nc - s * NR);
                        let pb = &packed_b[(s * kc + kk) * NR..(s * kc + kk) * NR + width];
                        let dst = &mut crow[s * NR..s * NR + width];
                        for (o, &bv) in dst.iter_mut().zip(pb) {
                            *o += av * bv;
                        }
                    }
                    cur += 1;
                }
                cursors[i] = cur;
            }
            pc += KC;
            block += 1;
        }
        jc += NC;
    }
}

/// One output row from a sparse weight row: `out[j] = Σ a[c]·b[c,j]`
/// over the stored `(cols, vals)` entries in ascending-column order —
/// bit-identical to [`gemm_row_into`] of the materialized row (and
/// hence to the same row of [`gemm_into`] / [`sparse_gemm_into`]) for
/// finite `b`, by the zero-skip argument in the module docs. Used by
/// the clean-prefix fault path.
///
/// # Panics
///
/// Asserts that the slice lengths match the given dimensions.
pub fn sparse_row_into(
    out: &mut [f32],
    cols: &[u32],
    vals: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
) {
    assert_eq!(cols.len(), vals.len(), "sparse row entry mismatch");
    assert_eq!(b.len(), k * n, "rhs length vs {k}x{n}");
    assert_eq!(out.len(), n, "out length vs n={n}");
    out.fill(0.0);
    for (&col, &av) in cols.iter().zip(vals) {
        let kk = col as usize;
        let brow = &b[kk * n..kk * n + n];
        for (o, &bv) in out.iter_mut().zip(brow) {
            *o += av * bv;
        }
    }
}

/// Packs `a[ic.., pc..]` (`mc`×`kc`) into `MR`-tall strips:
/// `packed[(strip·kc + kk)·MR + i] = a[ic + strip·MR + i, pc + kk]`,
/// zero-padded past `mc` so the micro-kernel never branches on edges.
fn pack_a(packed: &mut Vec<f32>, a: &[f32], k: usize, ic: usize, mc: usize, pc: usize, kc: usize) {
    let strips = mc.div_ceil(MR);
    packed.clear();
    packed.resize(strips * kc * MR, 0.0);
    for s in 0..strips {
        let base = s * kc * MR;
        for i in 0..MR {
            let row = s * MR + i;
            if row >= mc {
                continue; // padding stays zero
            }
            let src = &a[(ic + row) * k + pc..(ic + row) * k + pc + kc];
            for (kk, &v) in src.iter().enumerate() {
                packed[base + kk * MR + i] = v;
            }
        }
    }
}

/// Packs `b[pc.., jc..]` (`kc`×`nc`) into `NR`-wide strips:
/// `packed[(strip·kc + kk)·NR + j] = b[pc + kk, jc + strip·NR + j]`,
/// zero-padded past `nc`.
fn pack_b(packed: &mut Vec<f32>, b: &[f32], n: usize, pc: usize, kc: usize, jc: usize, nc: usize) {
    let strips = nc.div_ceil(NR);
    packed.clear();
    packed.resize(strips * kc * NR, 0.0);
    for s in 0..strips {
        let base = s * kc * NR;
        let col = jc + s * NR;
        let width = NR.min(nc - s * NR);
        for kk in 0..kc {
            let src = &b[(pc + kk) * n + col..(pc + kk) * n + col + width];
            let dst = &mut packed[base + kk * NR..base + kk * NR + width];
            dst.copy_from_slice(src);
        }
    }
}

/// Runs the `MR`×`NR` micro-kernel over every strip pair of one
/// (`mc`×`kc`)·(`kc`×`nc`) block, accumulating into `c`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    c: &mut [f32],
    packed_a: &[f32],
    packed_b: &[f32],
    n: usize,
    ic: usize,
    mc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let a_strips = mc.div_ceil(MR);
    let b_strips = nc.div_ceil(NR);
    for bs in 0..b_strips {
        let pb = &packed_b[bs * kc * NR..(bs + 1) * kc * NR];
        let cols = NR.min(nc - bs * NR);
        for asx in 0..a_strips {
            let pa = &packed_a[asx * kc * MR..(asx + 1) * kc * MR];
            let rows = MR.min(mc - asx * MR);
            micro_kernel(
                c,
                pa,
                pb,
                kc,
                (ic + asx * MR) * n + jc + bs * NR,
                n,
                rows,
                cols,
            );
        }
    }
}

/// The register-tile kernel: loads the live `rows`×`cols` corner of the
/// `c` tile, adds `kc` rank-1 updates in ascending-k order, stores it
/// back. `MR`/`NR` are compile-time constants so the two inner loops
/// unroll and autovectorize; padded lanes compute on zeros and are
/// simply not stored.
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    c: &mut [f32],
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    c_off: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, acc_row) in acc.iter_mut().enumerate().take(rows) {
        let crow = &c[c_off + i * n..c_off + i * n + cols];
        acc_row[..cols].copy_from_slice(crow);
    }
    for kk in 0..kc {
        let av = &pa[kk * MR..kk * MR + MR];
        let bv = &pb[kk * NR..kk * NR + NR];
        for (i, acc_row) in acc.iter_mut().enumerate() {
            let ai = av[i];
            for (j, av_acc) in acc_row.iter_mut().enumerate() {
                *av_acc += ai * bv[j];
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate().take(rows) {
        let crow = &mut c[c_off + i * n..c_off + i * n + cols];
        crow.copy_from_slice(&acc_row[..cols]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    /// The reference: textbook triple loop, no blocking, ascending-k
    /// accumulation per element (the order the kernel promises).
    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn random(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect()
    }

    fn run_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        gemm_into(&mut c, a, b, m, k, n, &mut GemmScratch::default());
        c
    }

    #[test]
    fn known_2x3_3x2() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        assert_eq!(run_gemm(&a, &b, 2, 3, 2), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matches_naive_bitwise_on_small_shapes() {
        // The kernel's per-element summation order equals the naive
        // ascending-k order, so results are bit-identical, not just
        // close — the property the fault-delta forward relies on.
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 9, 17), (16, 16, 16)] {
            let a = random(m * k, 1 + (m * 100 + k * 10 + n) as u64);
            let b = random(k * n, 2 + (m * 100 + k * 10 + n) as u64);
            assert_eq!(
                run_gemm(&a, &b, m, k, n),
                naive(&a, &b, m, k, n),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matches_naive_across_tile_and_panel_boundaries() {
        // Shapes straddling every blocking constant: MR/NR edges, the
        // KC panel split (where the C-tile reload must not reorder
        // additions), and MC/NC block edges.
        let dims = [
            (MR - 1, KC - 1, NR - 1),
            (MR + 1, KC, NR + 1),
            (MC + 3, KC + 1, NR * 2 + 5),
            (2, 2 * KC + 3, NC.min(64) + 7),
        ];
        for (m, k, n) in dims {
            let a = random(m * k, 77);
            let b = random(k * n, 78);
            assert_eq!(
                run_gemm(&a, &b, m, k, n),
                naive(&a, &b, m, k, n),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn run_to_run_determinism() {
        let (m, k, n) = (37, 300, 53);
        let a = random(m * k, 5);
        let b = random(k * n, 6);
        let first = run_gemm(&a, &b, m, k, n);
        for _ in 0..3 {
            assert_eq!(run_gemm(&a, &b, m, k, n), first);
        }
        // A reused scratch (stale packing contents) must not leak.
        let mut scratch = GemmScratch::default();
        let mut junk = vec![0.0f32; 13 * 11];
        gemm_into(
            &mut junk,
            &random(13 * 7, 91),
            &random(7 * 11, 92),
            13,
            7,
            11,
            &mut scratch,
        );
        let mut c = vec![0.0f32; m * n];
        gemm_into(&mut c, &a, &b, m, k, n, &mut scratch);
        assert_eq!(c, first);
    }

    #[test]
    fn row_recompute_is_bit_identical_to_full_gemm() {
        let (m, k, n) = (9, KC + 5, 21);
        let a = random(m * k, 9);
        let b = random(k * n, 10);
        let full = run_gemm(&a, &b, m, k, n);
        let mut row = vec![0.0f32; n];
        for i in 0..m {
            gemm_row_into(&mut row, &a[i * k..(i + 1) * k], &b, k, n);
            assert_eq!(row, full[i * n..(i + 1) * n], "row {i}");
        }
    }

    #[test]
    fn zero_dimensions_yield_zero_output() {
        // k = 0: the product is all zeros (and must not read the inputs).
        let mut c = vec![1.0f32; 6];
        gemm_into(&mut c, &[], &[], 2, 0, 3, &mut GemmScratch::default());
        assert_eq!(c, vec![0.0; 6]);
    }

    /// Random matrix with an exact fraction of slots forced to zero.
    fn random_sparse(len: usize, seed: u64, sparsity: f64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut data = random(len, seed);
        let zeros = (len as f64 * sparsity).round() as usize;
        let mut slots: Vec<usize> = (0..len).collect();
        for i in (1..slots.len()).rev() {
            let j = rng.gen_range(0..=i);
            slots.swap(i, j);
        }
        for &s in slots.iter().take(zeros.min(len)) {
            data[s] = 0.0;
        }
        data
    }

    fn run_sparse(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let sp = crate::sparse::SparseMatrix::from_dense(m, k, a);
        let mut c = vec![0.0f32; m * n];
        sparse_gemm_into(&mut c, &sp, b, n, &mut GemmScratch::default());
        c
    }

    fn assert_bitwise_eq(got: &[f32], want: &[f32], ctx: &str) {
        assert_eq!(got.len(), want.len(), "{ctx}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i} {g} vs {w}");
        }
    }

    #[test]
    fn sparse_matches_dense_bitwise_across_sparsities() {
        // 0% (fully dense), the Table-2 extremes (VGG12 0.409, LeNet5
        // 0.899), and 100% pruned, on shapes straddling the blocking
        // constants (incl. a k spanning multiple KC panels).
        let shapes = [(3, 5, 7), (MR + 1, KC + 3, NR * 2 + 5), (9, 2 * KC + 1, 33)];
        for sparsity in [0.0, 0.409, 0.899, 1.0] {
            for (m, k, n) in shapes {
                let a = random_sparse(m * k, 21 + (sparsity * 100.0) as u64, sparsity);
                let b = random(k * n, 22);
                assert_bitwise_eq(
                    &run_sparse(&a, &b, m, k, n),
                    &run_gemm(&a, &b, m, k, n),
                    &format!("{m}x{k}x{n} @ {sparsity}"),
                );
            }
        }
    }

    #[test]
    fn sparse_elides_zero_k_panels() {
        // Middle KC panel entirely zero: the sparse path skips packing
        // it; the result must still match the dense kernel bitwise.
        let (m, k, n) = (5, 3 * KC, 11);
        let mut a = random(m * k, 31);
        for row in 0..m {
            for kk in KC..2 * KC {
                a[row * k + kk] = 0.0;
            }
        }
        let b = random(k * n, 32);
        assert_bitwise_eq(
            &run_sparse(&a, &b, m, k, n),
            &run_gemm(&a, &b, m, k, n),
            "zero middle panel",
        );
    }

    #[test]
    fn all_zero_rows_and_columns_round_trip_both_paths() {
        // 100%-pruned regression: an all-zero layer, plus a mixed layer
        // with one all-zero row and one all-zero column, must produce
        // finite (all-zero / matching) outputs on both paths — no NaN,
        // no sign-of-zero divergence.
        let (m, k, n) = (6, 10, 9);
        let zeros = vec![0.0f32; m * k];
        let b = random(k * n, 41);
        let dense = run_gemm(&zeros, &b, m, k, n);
        assert!(dense.iter().all(|v| v.to_bits() == 0.0f32.to_bits()));
        assert_bitwise_eq(&run_sparse(&zeros, &b, m, k, n), &dense, "all-zero layer");

        let mut mixed = random(m * k, 42);
        for kk in 0..k {
            mixed[2 * k + kk] = 0.0; // all-zero output row
        }
        for row in 0..m {
            mixed[row * k + 4] = 0.0; // all-zero input column
        }
        let d = run_gemm(&mixed, &b, m, k, n);
        assert!(d.iter().all(|v| v.is_finite()));
        assert!(d[2 * n..3 * n].iter().all(|v| v.to_bits() == 0.0f32.to_bits()));
        assert_bitwise_eq(&run_sparse(&mixed, &b, m, k, n), &d, "zero row+col");
    }

    #[test]
    fn sparse_row_matches_dense_row_bitwise() {
        let (m, k, n) = (7, KC + 9, 13);
        let a = random_sparse(m * k, 51, 0.7);
        let b = random(k * n, 52);
        let sp = crate::sparse::SparseMatrix::from_dense(m, k, &a);
        let mut dense_row = vec![0.0f32; n];
        let mut sparse_row = vec![0.0f32; n];
        for i in 0..m {
            gemm_row_into(&mut dense_row, &a[i * k..(i + 1) * k], &b, k, n);
            let (cols, vals) = sp.row(i);
            sparse_row_into(&mut sparse_row, cols, vals, &b, k, n);
            assert_bitwise_eq(&sparse_row, &dense_row, &format!("row {i}"));
        }
    }

    #[test]
    fn sparse_zero_dimensions_yield_zero_output() {
        let sp = crate::sparse::SparseMatrix::from_dense(2, 0, &[]);
        let mut c = vec![1.0f32; 6];
        sparse_gemm_into(&mut c, &sp, &[], 3, &mut GemmScratch::default());
        assert_eq!(c, vec![0.0; 6]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// GEMM equals the naive reference on odd shapes around the
        /// tile sizes (1..17 covers MR±1 and NR±1; the explicit tests
        /// above cover KC±1).
        #[test]
        fn prop_matches_naive(
            m in 1usize..17, k in 1usize..17, n in 1usize..17, seed in any::<u64>()
        ) {
            let a = random(m * k, seed);
            let b = random(k * n, seed.wrapping_add(1));
            let got = run_gemm(&a, &b, m, k, n);
            let want = naive(&a, &b, m, k, n);
            prop_assert_eq!(got, want);
        }

        /// The sparse kernel equals the dense kernel bit for bit at any
        /// sparsity, including shapes with whole zero rows/columns.
        #[test]
        fn prop_sparse_matches_dense_bitwise(
            m in 1usize..10, k in 1usize..33, n in 1usize..17,
            sparsity in 0.0f64..1.0, seed in any::<u64>()
        ) {
            let a = random_sparse(m * k, seed, sparsity);
            let b = random(k * n, seed.wrapping_add(3));
            let got = run_sparse(&a, &b, m, k, n);
            let want = run_gemm(&a, &b, m, k, n);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }

        /// Every row of the blocked product is reproduced bit-exactly
        /// by the sequential row kernel.
        #[test]
        fn prop_row_kernel_matches(
            m in 1usize..9, k in 1usize..33, n in 1usize..17, seed in any::<u64>()
        ) {
            let a = random(m * k, seed);
            let b = random(k * n, seed.wrapping_add(2));
            let full = run_gemm(&a, &b, m, k, n);
            let mut row = vec![0.0f32; n];
            for i in 0..m {
                gemm_row_into(&mut row, &a[i * k..(i + 1) * k], &b, k, n);
                prop_assert_eq!(&row, &full[i * n..(i + 1) * n]);
            }
        }
    }
}
