//! Kill-and-resume at service scale: a child process running a
//! supervisor with 24 active streams is SIGKILLed mid-flight; a fresh
//! supervisor over the same spool directory resumes every stream by
//! resubmission, and each result is byte-identical to an uninterrupted
//! run (determinism contract D1 under process death).

mod common;

use common::{direct, job, slow_job, temp_spool};
use maxnvm_server::{spooled_streams, StreamState, Supervisor, SupervisorConfig};
use std::time::{Duration, Instant};

const SPOOL_ENV: &str = "MAXNVM_SERVER_CHILD_SPOOL";
const STREAMS: u64 = 24;
const SEED_BASE: u64 = 900;

fn stream_name(seed: u64) -> String {
    format!("kr-{seed}")
}

/// Child half: a supervisor over the spool directory from the
/// environment, all streams submitted with a slowed evaluator and
/// per-trial checkpointing, then blocked in `wait` — the parent kills
/// the process without warning. Ignored unless re-executed by
/// `sigkilled_supervisor_resumes_every_stream_byte_identical`.
#[test]
#[ignore = "child process entry point for the kill-and-resume test"]
fn child_supervisor_runner() {
    let Ok(spool) = std::env::var(SPOOL_ENV) else {
        return;
    };
    let config = SupervisorConfig::new(&spool)
        .max_running(4)
        .max_inflight(STREAMS as usize)
        .checkpoint_every(1)
        .watchdog(Duration::from_secs(120));
    let sup = Supervisor::start(config).expect("child supervisor");
    let ids: Vec<_> = (0..STREAMS)
        .map(|i| {
            let seed = SEED_BASE + i;
            sup.submit(stream_name(seed), slow_job(seed, Duration::from_millis(15)))
                .expect("child submit")
        })
        .collect();
    for id in &ids {
        sup.wait(id);
    }
}

#[test]
fn sigkilled_supervisor_resumes_every_stream_byte_identical() {
    let spool = temp_spool("sigkill");
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args([
            "child_supervisor_runner",
            "--exact",
            "--ignored",
            "--nocapture",
        ])
        .env(SPOOL_ENV, &spool)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");
    // Wait until several streams have durably checkpointed — the
    // supervisor is mid-flight with all 24 streams active (4 running,
    // the rest queued) — then kill it without warning (SIGKILL on unix).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let spooled = spooled_streams(&spool).unwrap_or_default();
        if spooled.len() >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "child never spooled enough checkpoints ({spooled:?})"
        );
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("child exited before the kill: {status}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("kill child");
    let _ = child.wait();
    // "Restart" the service: a fresh supervisor over the same spool
    // directory. Every surviving spool file names a resumable stream;
    // resubmitting each job resumes its checkpoint (streams the child
    // never started simply run from scratch). Either way, the result
    // must be byte-identical to an uninterrupted run.
    let spooled = spooled_streams(&spool).expect("spool listing");
    assert!(!spooled.is_empty(), "the kill must leave spooled streams");
    for stem in &spooled {
        assert!(stem.starts_with("kr-"), "foreign spool file {stem}");
    }
    let sup = Supervisor::start(
        SupervisorConfig::new(&spool)
            .max_running(4)
            .max_inflight(STREAMS as usize),
    )
    .expect("restart supervisor");
    let ids: Vec<_> = (0..STREAMS)
        .map(|i| {
            let seed = SEED_BASE + i;
            sup.submit(stream_name(seed), job(seed)).expect("resubmit")
        })
        .collect();
    for (id, i) in ids.iter().zip(0..STREAMS) {
        let seed = SEED_BASE + i;
        let status = sup.wait(id).expect("known stream");
        assert_eq!(status.state, StreamState::Done, "{id}: {:?}", status.error);
        assert_eq!(status.result.expect("result"), direct(seed), "{id}");
    }
    // Every resumed stream completed, so no spool files remain.
    assert!(spooled_streams(&spool).expect("spool listing").is_empty());
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}
