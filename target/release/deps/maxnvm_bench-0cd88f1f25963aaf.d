/root/repo/target/release/deps/maxnvm_bench-0cd88f1f25963aaf.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmaxnvm_bench-0cd88f1f25963aaf.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmaxnvm_bench-0cd88f1f25963aaf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
