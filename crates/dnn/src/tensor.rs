//! A minimal row-major `f32` tensor with the handful of operations the
//! substrate needs: matmul, transpose, im2col/col2im for convolutions.
//!
//! Matrix products are delegated to the blocked kernel in [`crate::gemm`],
//! which fixes the per-element summation order (determinism contract D1).

use crate::gemm::{gemm_into, GemmScratch};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape errors from checked tensor operations (determinism contract D2:
/// library code reports malformed shapes instead of panicking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// An operand of a matrix operation was not 2-D.
    NotAMatrix {
        /// Which operand (`"lhs"` or `"rhs"`).
        role: &'static str,
        /// The operand's actual rank.
        dims: usize,
    },
    /// The inner dimensions of a matrix product disagree.
    InnerDimMismatch {
        /// Columns of the left operand.
        lhs: usize,
        /// Rows of the right operand.
        rhs: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotAMatrix { role, dims } => {
                write!(f, "{role} is not a matrix (rank {dims})")
            }
            Self::InnerDimMismatch { lhs, rhs } => {
                write!(f, "inner dimension mismatch: {lhs} vs {rhs}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense row-major tensor of `f32` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, len={})", self.shape, self.data.len())
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "empty shape");
        assert!(shape.iter().all(|&d| d > 0), "zero dimension in {shape:?}");
        let n: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "data length vs shape {shape:?}");
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape to {shape:?}");
        self.shape = shape.to_vec();
        self
    }

    /// 2-D element access for matrices.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or indices are out of bounds.
    // maxnvm-lint: allow(R1/index-arith): shape is asserted 2-D and data.len() == rows*cols, so r*shape[1]+c cannot wrap before the documented out-of-range panic fires.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 on non-matrix");
        self.data[r * self.shape[1] + c]
    }

    /// Checked matrix multiply: `self (m×k) · rhs (k×n) = (m×n)`, computed
    /// by the blocked kernel in [`crate::gemm`] (fixed ascending-k
    /// summation order per element).
    ///
    /// Allocates a fresh packing scratch per call; hot paths that reuse
    /// buffers call [`gemm_into`] directly instead.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] if either operand is not 2-D or the inner
    /// dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape.len() != 2 {
            return Err(TensorError::NotAMatrix {
                role: "lhs",
                dims: self.shape.len(),
            });
        }
        if rhs.shape.len() != 2 {
            return Err(TensorError::NotAMatrix {
                role: "rhs",
                dims: rhs.shape.len(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        if k != k2 {
            return Err(TensorError::InnerDimMismatch { lhs: k, rhs: k2 });
        }
        let mut out = vec![0.0f32; m * n];
        gemm_into(
            &mut out,
            &self.data,
            &rhs.data,
            m,
            k,
            n,
            &mut GemmScratch::default(),
        );
        Ok(Tensor::from_vec(&[m, n], out))
    }

    /// Matrix transpose.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    // maxnvm-lint: allow(R1/index-arith): r < rows and c < cols from the iteration, and c*rows+r indexes the freshly allocated rows*cols buffer.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose on non-matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out)
    }
}

/// Output spatial dimensions of a convolution over an `h`×`w` image with
/// a `kh`×`kw` kernel, the given stride, and symmetric zero padding.
pub fn conv_out_dims(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    (
        (h + 2 * pad - kh) / stride + 1,
        (w + 2 * pad - kw) / stride + 1,
    )
}

/// Visits every in-bounds (patch-matrix position, image position) index
/// pair of the im2col unfolding: `f(row, col, img_idx)` where `row` spans
/// `c*kh*kw`, `col` spans `out_h*out_w`, and `img_idx` indexes the `[c,h,w]`
/// image. Padded taps (image coordinates outside the input) are skipped.
/// im2col scatters image→patch along these pairs; col2im (its adjoint)
/// accumulates patch→image along the same pairs.
#[allow(clippy::too_many_arguments)]
fn for_each_patch_index(
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    mut f: impl FnMut(usize, usize, usize),
) {
    let (out_h, out_w) = conv_out_dims(h, w, kh, kw, stride, pad);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                for oy in 0..out_h {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..out_w {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        f(
                            row,
                            oy * out_w + ox,
                            (ci * h + iy as usize) * w + ix as usize,
                        );
                    }
                }
            }
        }
    }
}

/// Unfolds one `[c, h, w]` image (given as a flat slice) into a caller-owned
/// im2col destination. The patch matrix has `c*kh*kw` rows; row `r` of the
/// patch is written to `dst[r * dst_cols + col_offset ..]`, so a batch of
/// images can be unfolded side by side into one wide matrix (`dst_cols` =
/// patch columns × batch). Only in-bounds taps are written — the caller
/// must pre-zero `dst` so padded taps read as zero.
///
/// # Panics
///
/// Panics if `data` does not match `[c, h, w]` or the destination region
/// `col_offset .. col_offset + out_h*out_w` overflows `dst_cols`.
#[allow(clippy::too_many_arguments)]
// maxnvm-lint: allow(R1/index-arith): tap coordinates are bounded by the entry shape asserts and the padding guards that skip out-of-image taps before indexing.
pub fn im2col_into(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    dst: &mut [f32],
    dst_cols: usize,
    col_offset: usize,
) {
    assert_eq!(data.len(), c * h * w, "image length vs [{c},{h},{w}]");
    let (out_h, out_w) = conv_out_dims(h, w, kh, kw, stride, pad);
    assert!(out_h > 0 && out_w > 0, "empty convolution output");
    assert!(
        col_offset + out_h * out_w <= dst_cols,
        "im2col destination columns overflow"
    );
    assert_eq!(dst.len(), c * kh * kw * dst_cols, "im2col destination size");
    for_each_patch_index(c, h, w, kh, kw, stride, pad, |row, col, img| {
        dst[row * dst_cols + col_offset + col] = data[img];
    });
}

/// Unfolds an input image `[c, h, w]` into the im2col matrix
/// `[c*kh*kw, out_h*out_w]` for a convolution with the given kernel,
/// stride and zero padding.
///
/// # Panics
///
/// Panics if the input is not 3-D or the output would be empty.
pub fn im2col(
    input: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> (Tensor, usize, usize) {
    assert_eq!(input.shape().len(), 3, "im2col expects [c,h,w]");
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (out_h, out_w) = conv_out_dims(h, w, kh, kw, stride, pad);
    assert!(out_h > 0 && out_w > 0, "empty convolution output");
    let rows = c * kh * kw;
    let cols = out_h * out_w;
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(
        input.data(),
        c,
        h,
        w,
        kh,
        kw,
        stride,
        pad,
        &mut out,
        cols,
        0,
    );
    (Tensor::from_vec(&[rows, cols], out), out_h, out_w)
}

/// Folds an im2col-shaped gradient back onto the input image — the adjoint
/// of [`im2col`], used by convolution backprop.
///
/// # Panics
///
/// Panics if `cols`' shape is inconsistent with the geometry.
#[allow(clippy::too_many_arguments)]
// maxnvm-lint: allow(R1/index-arith): loop indices are bounded by the out_h/out_w/fan_in extents that sized the output buffer at the top of the fn.
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (out_h, out_w) = conv_out_dims(h, w, kh, kw, stride, pad);
    assert_eq!(cols.shape(), &[c * kh * kw, out_h * out_w], "col2im shape");
    let mut out = vec![0.0f32; c * h * w];
    let data = cols.data();
    let ncols = out_h * out_w;
    for_each_patch_index(c, h, w, kh, kw, stride, pad, |row, col, img| {
        out[img] += data[row * ncols + col];
    });
    Tensor::from_vec(&[c, h, w], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).expect("valid shapes");
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i).expect("valid shapes"), a);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert_eq!(
            a.matmul(&b),
            Err(TensorError::InnerDimMismatch { lhs: 3, rhs: 2 })
        );
        let v = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(
            v.matmul(&a),
            Err(TensorError::NotAMatrix {
                role: "lhs",
                dims: 3
            })
        );
        assert_eq!(
            a.matmul(&v),
            Err(TensorError::NotAMatrix {
                role: "rhs",
                dims: 3
            })
        );
        assert_eq!(
            a.matmul(&b).unwrap_err().to_string(),
            "inner dimension mismatch: 3 vs 2"
        );
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at2(2, 1), 6.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0; 6]);
        let b = a.clone().reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: im2col is just a reshape.
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let (cols, oh, ow) = im2col(&input, 1, 1, 1, 0);
        assert_eq!((oh, ow), (2, 2));
        assert_eq!(cols.shape(), &[1, 4]);
        assert_eq!(cols.data(), input.data());
    }

    #[test]
    fn im2col_3x3_geometry() {
        let input = Tensor::zeros(&[3, 8, 8]);
        let (cols, oh, ow) = im2col(&input, 3, 3, 1, 1);
        assert_eq!((oh, ow), (8, 8));
        assert_eq!(cols.shape(), &[3 * 9, 64]);
    }

    #[test]
    fn im2col_convolution_matches_direct() {
        // Convolve a 1x3x3 input with a single 2x2 kernel by both im2col
        // matmul and direct summation.
        let input = Tensor::from_vec(
            &[1, 3, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        );
        let kernel = Tensor::from_vec(&[1, 4], vec![1.0, 0.5, -1.0, 2.0]);
        let (cols, oh, ow) = im2col(&input, 2, 2, 1, 0);
        let out = kernel.matmul(&cols).expect("valid shapes");
        assert_eq!((oh, ow), (2, 2));
        // Direct: out[0,0] = 1*1 + 2*0.5 + 4*(-1) + 5*2 = 8
        assert!((out.data()[0] - 8.0).abs() < 1e-6);
        // out[1,1] (oy=1,ox=1) = 5*1 + 6*0.5 + 8*(-1) + 9*2 = 18
        assert!((out.data()[3] - 18.0).abs() < 1e-6);
    }

    #[test]
    fn im2col_into_batch_offset_matches_single() {
        // Two images unfolded side by side into one wide matrix must
        // reproduce each image's standalone im2col in its column band.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let (c, h, w, kh, kw, stride, pad) = (2, 5, 4, 3, 2, 1, 1);
        let imgs: Vec<Tensor> = (0..2)
            .map(|_| {
                Tensor::from_vec(
                    &[c, h, w],
                    (0..c * h * w).map(|_| rng.gen::<f32>() - 0.5).collect(),
                )
            })
            .collect();
        let (out_h, out_w) = conv_out_dims(h, w, kh, kw, stride, pad);
        let p = out_h * out_w;
        let rows = c * kh * kw;
        let mut wide = vec![0.0f32; rows * 2 * p];
        for (s, img) in imgs.iter().enumerate() {
            im2col_into(
                img.data(),
                c,
                h,
                w,
                kh,
                kw,
                stride,
                pad,
                &mut wide,
                2 * p,
                s * p,
            );
        }
        for (s, img) in imgs.iter().enumerate() {
            let (cols, ..) = im2col(img, kh, kw, stride, pad);
            for r in 0..rows {
                assert_eq!(
                    &wide[r * 2 * p + s * p..r * 2 * p + (s + 1) * p],
                    &cols.data()[r * p..(r + 1) * p],
                    "sample {s} row {r}"
                );
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop needs.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (c, h, w, kh, kw, stride, pad) = (2, 5, 5, 3, 3, 2, 1);
        let x = Tensor::from_vec(
            &[c, h, w],
            (0..c * h * w).map(|_| rng.gen::<f32>() - 0.5).collect(),
        );
        let (cols, oh, ow) = im2col(&x, kh, kw, stride, pad);
        let y = Tensor::from_vec(
            cols.shape(),
            (0..cols.len()).map(|_| rng.gen::<f32>() - 0.5).collect(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let xt = col2im(&y, c, h, w, kh, kw, stride, pad);
        let rhs: f32 = x.data().iter().zip(xt.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
        let _ = (oh, ow);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_matmul_distributes_over_addition(
            m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in any::<u64>()
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut gen = |r: usize, c: usize| {
                Tensor::from_vec(&[r, c], (0..r * c).map(|_| rng.gen::<f32>() - 0.5).collect())
            };
            let a = gen(m, k);
            let b1 = gen(k, n);
            let b2 = gen(k, n);
            let sum = Tensor::from_vec(
                &[k, n],
                b1.data().iter().zip(b2.data()).map(|(x, y)| x + y).collect(),
            );
            let lhs = a.matmul(&sum).expect("valid shapes");
            let r1 = a.matmul(&b1).expect("valid shapes");
            let r2 = a.matmul(&b2).expect("valid shapes");
            for i in 0..lhs.len() {
                prop_assert!((lhs.data()[i] - (r1.data()[i] + r2.data()[i])).abs() < 1e-4);
            }
        }
    }
}
