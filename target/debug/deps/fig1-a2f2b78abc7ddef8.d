/root/repo/target/debug/deps/fig1-a2f2b78abc7ddef8.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-a2f2b78abc7ddef8.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
