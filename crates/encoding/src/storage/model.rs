//! Whole-model storage aggregation.

use super::layer::StoredLayer;
use super::scheme::StorageScheme;
use super::structure::DecodeStats;
use crate::cluster::ClusteredLayer;
use maxnvm_dnn::network::LayerMatrix;
use maxnvm_envm::{FaultMap, MlcConfig};
use rand::Rng;
use std::sync::Arc;

/// A whole model committed to simulated eNVM: one [`StoredLayer`] per
/// weight layer under a single scheme, with aggregate accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStorage {
    layers: Vec<StoredLayer>,
}

impl ModelStorage {
    /// Stores every clustered layer under `scheme`.
    pub fn store(layers: &[ClusteredLayer], scheme: &StorageScheme) -> Self {
        Self {
            layers: layers
                .iter()
                .map(|l| StoredLayer::store(l, scheme))
                .collect(),
        }
    }

    /// The per-layer stores.
    pub fn layers(&self) -> &[StoredLayer] {
        &self.layers
    }

    /// Total memory cells across all layers.
    pub fn total_cells(&self) -> u64 {
        self.layers.iter().map(StoredLayer::total_cells).sum()
    }

    /// Decodes every layer with no faults.
    pub fn decode_clean(&self) -> (Vec<LayerMatrix>, DecodeStats) {
        let mut stats = DecodeStats::default();
        let mats = self
            .layers
            .iter()
            .map(|l| {
                let (m, s) = l.decode_clean();
                stats.absorb(s);
                m
            })
            .collect();
        (mats, stats)
    }

    /// Injects faults into every layer and decodes.
    pub fn decode_with_faults<R: Rng + ?Sized>(
        &self,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
        rng: &mut R,
    ) -> (Vec<LayerMatrix>, DecodeStats) {
        let mut stats = DecodeStats::default();
        let mats = self
            .layers
            .iter()
            .map(|l| {
                let (m, s) = l.decode_with_faults(fault_for, rng);
                stats.absorb(s);
                m
            })
            .collect();
        (mats, stats)
    }
}
