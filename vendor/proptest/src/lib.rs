//! Offline polyfill of the `proptest` surface this workspace uses.
//!
//! A [`strategy::Strategy`] here is just a deterministic value generator
//! driven by the vendored `rand::rngs::StdRng`; `proptest!` expands each
//! property into a `#[test]` that loops `ProptestConfig::cases` times
//! with a fixed per-case seed. There is no shrinking and no failure
//! persistence — on the first failing case the test panics with the
//! generated inputs' case number so the seed can be replayed. This keeps
//! the workspace's property tests runnable without crates.io access.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A deterministic value generator (polyfill of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value from the given RNG.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Box a strategy behind `dyn Strategy` (used by `prop_oneof!`).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    /// Uniform choice among boxed strategies (polyfill of proptest's
    /// weighted `Union`; this workspace only uses unweighted
    /// `prop_oneof!`, so every arm is equally likely).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union over the given alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let pick = rng.gen_range(0..self.options.len());
            self.options[pick].generate(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_incl: exact,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max_incl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Polyfill of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length-agnostic index into a collection (polyfill of
    /// `proptest::sample::Index`): generated once, projected onto any
    /// non-empty length via modulo.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Project onto a collection of length `len` (must be > 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.gen())
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Polyfill of `proptest::arbitrary::any`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Runner configuration (polyfill of `proptest::test_runner::ProptestConfig`;
    /// only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Drives the case loop for one property (polyfill of
    /// `proptest::test_runner::TestRunner`). Case seeds are fixed so
    /// failures reproduce exactly across runs and machines.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Create a runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Run `cases` iterations of `property`, panicking on the first
        /// failure with its case number (replayable: the seed is a pure
        /// function of the case number).
        pub fn run_cases<F>(&mut self, mut property: F)
        where
            F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let mut rng = StdRng::seed_from_u64(
                    0x5eed_0000_0000_0000u64 ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                if let Err(err) = property(&mut rng) {
                    panic!("proptest case {case} failed: {err}");
                }
            }
        }
    }
}

/// Expand properties into `#[test]` functions that loop generated cases.
///
/// Supports the subset of `proptest!` syntax this workspace uses: an
/// optional `#![proptest_config(...)]` header and `fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_cases(|proptest_case_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), proptest_case_rng);)*
                    #[allow(unused_mut)]
                    let mut proptest_case_body =
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    proptest_case_body()
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice among strategies (unweighted subset of proptest's
/// `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(1usize..=64), &mut rng);
            assert!((1..=64).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_hits_len_bounds() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        let strat = prop::collection::vec(0u8..10, 0..5);
        let mut seen_empty = false;
        let mut seen_max = false;
        for _ in 0..500 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v.len() < 5);
            seen_empty |= v.is_empty();
            seen_max |= v.len() == 4;
        }
        assert!(seen_empty && seen_max);
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(13);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn index_projects_in_bounds() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
        for _ in 0..100 {
            let idx = Strategy::generate(&any::<prop::sample::Index>(), &mut rng);
            assert!(idx.index(7) < 7);
            assert!(idx.index(1) == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn macro_generates_and_checks(x in 0u32..100, (lo, hi) in (0usize..10, 10usize..20)) {
            prop_assert!(x < 100);
            prop_assert!(lo < hi, "lo {} not below hi {}", lo, hi);
            prop_assert_eq!(lo + hi - hi, lo);
            prop_assert_ne!(hi, lo);
        }
    }

    proptest! {
        fn macro_default_config(bits in prop::collection::vec(any::<bool>(), 0..50)) {
            prop_assert!(bits.len() < 50);
        }
    }
}
