/root/repo/target/release/deps/fig1-13df1b0eb5a6269d.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-13df1b0eb5a6269d: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
