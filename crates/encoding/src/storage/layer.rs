//! A layer committed to simulated eNVM cells: raw sparse-encoding on
//! the way in, one codec-driven decode core on the way out.

use super::chip::ProgrammedLayer;
use super::codec::{CleanCodec, FaultInjectionCodec, StructureCodec};
use super::scheme::StorageScheme;
use super::structure::{DecodeStats, StoredStructure};
use crate::bitmask::BitMaskLayer;
use crate::cluster::ClusteredLayer;
use crate::csr::CsrLayer;
use crate::dense::DenseLayer;
use crate::{EncodingKind, StructureKind};
use maxnvm_bits::BitBuffer;
use maxnvm_dnn::network::LayerMatrix;
use maxnvm_envm::{CellModel, FaultMap, MlcConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The raw sparse-encoded bit-streams of one layer, before any cells
/// are committed.
///
/// These depend only on the encoding choice (and, for BitMask, the
/// IdxSync setting and block size) — **not** on bits-per-cell or ECC,
/// which apply at pack time. That independence is what
/// [`super::EncodeCache`] exploits to share one encode across every
/// candidate scheme that differs only in density or protection.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedStreams {
    pub(crate) streams: Vec<(StructureKind, BitBuffer)>,
    pub(crate) entries: usize,
    pub(crate) col_idx_bits: u8,
    pub(crate) counter_bits: u8,
}

impl EncodedStreams {
    /// Runs the sparse encoder selected by `scheme` over `layer`.
    pub fn encode(layer: &ClusteredLayer, scheme: &StorageScheme) -> Self {
        let (streams, entries, col_idx_bits, counter_bits) = match scheme.encoding {
            EncodingKind::DenseClustered => {
                let enc = DenseLayer::encode(layer);
                (enc.to_streams(), layer.indices.len(), 0, 0)
            }
            EncodingKind::Csr => {
                let enc = CsrLayer::encode(layer);
                let e = enc.entries();
                let (ci, cb) = (enc.col_idx_bits, enc.counter_bits);
                (enc.to_streams(), e, ci, cb)
            }
            EncodingKind::BitMask => {
                let enc =
                    BitMaskLayer::encode_with_block(layer, scheme.idx_sync, scheme.sync_block_bits);
                let e = enc.nonzeros();
                (enc.to_streams(), e, 0, 0)
            }
        };
        Self {
            streams,
            entries,
            col_idx_bits,
            counter_bits,
        }
    }
}

/// A layer fully committed to simulated eNVM cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredLayer {
    /// Layer name.
    pub name: String,
    /// The storage configuration used.
    pub scheme: StorageScheme,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) index_bits: u8,
    /// CSR: stored entry count; BitMask: stored value count.
    pub(crate) entries: usize,
    pub(crate) col_idx_bits: u8,
    pub(crate) counter_bits: u8,
    pub(crate) centroids: Vec<f32>,
    pub(crate) structures: Vec<StoredStructure>,
}

impl StoredLayer {
    /// Encodes and packs a clustered layer under `scheme`.
    pub fn store(layer: &ClusteredLayer, scheme: &StorageScheme) -> Self {
        Self::store_encoded(layer, scheme, &EncodedStreams::encode(layer, scheme))
    }

    /// Packs pre-encoded streams under `scheme` — the cache-hit path.
    ///
    /// `encoded` must come from [`EncodedStreams::encode`] (directly or
    /// via [`super::EncodeCache`]) with the same `layer` and a scheme
    /// agreeing on encoding, IdxSync, and block size.
    pub fn store_encoded(
        layer: &ClusteredLayer,
        scheme: &StorageScheme,
        encoded: &EncodedStreams,
    ) -> Self {
        let structures = encoded
            .streams
            .iter()
            .map(|(kind, stream)| {
                let ecc = scheme.ecc.covers(*kind).then_some(scheme.ecc_code);
                StoredStructure::pack(*kind, stream, scheme.bpc.for_kind(*kind), ecc)
            })
            .collect();
        Self {
            name: layer.name.clone(),
            scheme: scheme.clone(),
            rows: layer.rows,
            cols: layer.cols,
            index_bits: layer.index_bits,
            entries: encoded.entries,
            col_idx_bits: encoded.col_idx_bits,
            counter_bits: encoded.counter_bits,
            centroids: layer.centroids.clone(),
            structures,
        }
    }

    /// The stored structures.
    pub fn structures(&self) -> &[StoredStructure] {
        &self.structures
    }

    /// Cells per structure, plus the SLC centroid table.
    pub fn cells_by_structure(&self) -> Vec<(StructureKind, u64)> {
        let mut out: Vec<(StructureKind, u64)> = self
            .structures
            .iter()
            .map(|s| (s.kind, s.num_cells()))
            .collect();
        out.push((StructureKind::Centroids, self.centroid_cells()));
        out
    }

    /// Cells for the per-layer centroid LUT (16-bit values in SLC).
    pub fn centroid_cells(&self) -> u64 {
        (self.centroids.len() * 16) as u64
    }

    /// Total memory cells for this layer.
    pub fn total_cells(&self) -> u64 {
        self.cells_by_structure().iter().map(|(_, c)| c).sum()
    }

    /// Decodes with no faults injected (sanity/control arm).
    pub fn decode_clean(&self) -> (LayerMatrix, DecodeStats) {
        self.decode_with_codec(&mut CleanCodec)
    }

    /// Injects faults per structure (each structure's fault map comes from
    /// its bits-per-cell via `fault_for`) and decodes.
    pub fn decode_with_faults<R: Rng + ?Sized>(
        &self,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
        rng: &mut R,
    ) -> (LayerMatrix, DecodeStats) {
        self.decode_with_codec(&mut FaultInjectionCodec::all(fault_for, rng))
    }

    /// Injects faults only into structures of `target` kind, storing all
    /// others perfectly — the isolation methodology of Fig. 5.
    pub fn decode_with_isolated_faults<R: Rng + ?Sized>(
        &self,
        target: StructureKind,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
        rng: &mut R,
    ) -> (LayerMatrix, DecodeStats) {
        self.decode_with_codec(&mut FaultInjectionCodec::isolated(target, fault_for, rng))
    }

    /// Programs this layer onto a *chip instance*: every cell's analog
    /// read value is drawn once from its level distribution (§4.1's
    /// "unique generated fault maps"), so the returned
    /// [`ProgrammedLayer`] decodes **deterministically** — the faults are
    /// permanent programming outcomes, not per-read noise.
    pub fn program_chip<R: Rng + ?Sized>(
        &self,
        cell_for: &dyn Fn(MlcConfig) -> CellModel,
        rng: &mut R,
    ) -> ProgrammedLayer {
        let read_cells = self
            .structures
            .iter()
            .map(|s| {
                let cell = cell_for(s.bpc);
                s.cells
                    .iter()
                    .map(|&lvl| cell.sample_read(lvl as usize, rng) as u8)
                    .collect()
            })
            .collect();
        ProgrammedLayer::new(self.clone(), read_cells)
    }

    /// Samples one chip instance as a sparse flip list instead of a full
    /// [`ProgrammedLayer`]: per structure (in storage order), every
    /// cell's analog read is drawn exactly as [`Self::program_chip`]
    /// draws it — the RNG stream is identical — but only the cells whose
    /// read level differs from the programmed level are recorded, as
    /// `(cell index, read level)` pairs per structure. Feeding these to
    /// `PreparedLayer::deltas_flips` decodes the same faulty matrix as
    /// programming and fully decoding the chip, in O(faults) instead of
    /// O(cells).
    pub fn sample_chip_flips<R: Rng + ?Sized>(
        &self,
        cell_for: &dyn Fn(MlcConfig) -> CellModel,
        rng: &mut R,
    ) -> Vec<Vec<(u32, u8)>> {
        self.structures
            .iter()
            .map(|s| {
                let cell = cell_for(s.bpc);
                s.cells
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &lvl)| {
                        let read = cell.sample_read(lvl as usize, rng) as u8;
                        (read != lvl).then_some((i as u32, read))
                    })
                    .collect()
            })
            .collect()
    }

    /// The shared decode core: pulls each structure's read levels from
    /// `codec` (in storage order), unpacks them through Gray/ECC, and
    /// reassembles the weight matrix via the encoding's alignment
    /// recovery. Every public decode path funnels through here.
    pub fn decode_with_codec(&self, codec: &mut dyn StructureCodec) -> (LayerMatrix, DecodeStats) {
        let mut stats = DecodeStats::default();
        let mut streams: Vec<(StructureKind, BitBuffer)> = Vec::new();
        for (i, s) in self.structures.iter().enumerate() {
            let (cells, faults) = codec.read(i, s);
            stats.cell_faults += faults;
            let (bits, corrected, uncorrectable) = s.unpack_cells(&cells);
            stats.ecc_corrected += corrected;
            stats.ecc_uncorrectable += uncorrectable;
            streams.push((s.kind, bits));
        }
        let indices = self.parse_streams(&streams).reconstruct_indices();
        (self.matrix_from_indices(&indices), stats)
    }

    /// Reassembles the encoding object from unpacked payload streams.
    pub(crate) fn parse_streams(&self, streams: &[(StructureKind, BitBuffer)]) -> DecodedEncoding {
        // `streams` is built from `self.structures`, so every kind the
        // scheme needs is present; an absent stream decodes as empty
        // rather than unwinding through a worker thread.
        let empty = BitBuffer::with_capacity(0);
        let find = |k: StructureKind| -> &BitBuffer {
            streams
                .iter()
                .find(|(kind, _)| *kind == k)
                .map_or(&empty, |(_, b)| b)
        };
        match self.scheme.encoding {
            EncodingKind::DenseClustered => DecodedEncoding::Dense(DenseLayer::from_streams(
                self.rows,
                self.cols,
                self.index_bits,
                find(StructureKind::Values),
            )),
            EncodingKind::Csr => DecodedEncoding::Csr(CsrLayer::from_streams(
                self.rows,
                self.cols,
                self.index_bits,
                self.col_idx_bits,
                self.counter_bits,
                self.entries,
                find(StructureKind::Values),
                find(StructureKind::ColIndex),
                find(StructureKind::RowCounter),
            )),
            EncodingKind::BitMask => {
                let counters = streams
                    .iter()
                    .find(|(k, _)| *k == StructureKind::SyncCounter)
                    .map(|(_, b)| b);
                DecodedEncoding::BitMask(BitMaskLayer::from_streams(
                    self.rows,
                    self.cols,
                    self.index_bits,
                    self.entries,
                    self.scheme.sync_block_bits,
                    find(StructureKind::Mask),
                    find(StructureKind::Values),
                    counters,
                ))
            }
        }
    }

    /// Maps cluster indices through the centroid LUT (clamping wild
    /// indices) into the weight matrix.
    pub(crate) fn matrix_from_indices(&self, indices: &[u16]) -> LayerMatrix {
        let top = (self.centroids.len() - 1) as u16;
        let data: Vec<f32> = indices
            .iter()
            .map(|&i| self.centroids[i.min(top) as usize])
            .collect();
        LayerMatrix::new(&self.name, self.rows, self.cols, data)
    }

    /// Exact expected faulted cells per trial over this layer's
    /// structures (all of them, or only `target`), from each structure's
    /// actual programmed-level histogram.
    pub fn expected_faults_in(
        &self,
        target: Option<StructureKind>,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
    ) -> f64 {
        self.structures
            .iter()
            .filter(|s| target.is_none_or(|t| t == s.kind))
            .map(|s| {
                let map = fault_for(s.bpc);
                s.cells
                    .iter()
                    .map(|&c| map.p_total(c as usize))
                    .sum::<f64>()
            })
            .sum()
    }
}

/// The encoding object reassembled from payload streams — the shape the
/// alignment-recovery walk runs over.
pub(crate) enum DecodedEncoding {
    Dense(DenseLayer),
    Csr(CsrLayer),
    BitMask(BitMaskLayer),
}

impl DecodedEncoding {
    /// Recovers the row-major cluster-index matrix.
    pub(crate) fn reconstruct_indices(&self) -> Vec<u16> {
        match self {
            DecodedEncoding::Dense(d) => d.reconstruct_indices(),
            DecodedEncoding::Csr(c) => c.reconstruct_indices(),
            DecodedEncoding::BitMask(b) => b.reconstruct_indices(),
        }
    }

    /// The output-matrix slot each stored value entry writes during
    /// [`Self::reconstruct_indices`] (`u32::MAX` when an entry lands
    /// outside the matrix). Only meaningful when the metadata structures
    /// are clean, where each entry is visited exactly once and slots are
    /// unique.
    pub(crate) fn entry_slots(&self) -> Vec<u32> {
        match self {
            DecodedEncoding::Dense(d) => d.entry_slots(),
            DecodedEncoding::Csr(c) => c.entry_slots(),
            DecodedEncoding::BitMask(b) => b.entry_slots(),
        }
    }

    /// Walks the non-zero cluster indices in row-major order via each
    /// encoding's run walk (`f(row, col, index)`) without materializing
    /// the dense index matrix — the storage-side feed of the sparse
    /// compute path.
    pub(crate) fn for_each_nonzero(&self, f: impl FnMut(usize, usize, u16)) {
        match self {
            DecodedEncoding::Dense(d) => d.for_each_nonzero(f),
            DecodedEncoding::Csr(c) => c.for_each_nonzero(f),
            DecodedEncoding::BitMask(b) => b.for_each_nonzero(f),
        }
    }
}
