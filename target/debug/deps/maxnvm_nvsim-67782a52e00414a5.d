/root/repo/target/debug/deps/maxnvm_nvsim-67782a52e00414a5.d: crates/nvsim/src/lib.rs crates/nvsim/src/extrapolate.rs crates/nvsim/src/sram.rs

/root/repo/target/debug/deps/libmaxnvm_nvsim-67782a52e00414a5.rlib: crates/nvsim/src/lib.rs crates/nvsim/src/extrapolate.rs crates/nvsim/src/sram.rs

/root/repo/target/debug/deps/libmaxnvm_nvsim-67782a52e00414a5.rmeta: crates/nvsim/src/lib.rs crates/nvsim/src/extrapolate.rs crates/nvsim/src/sram.rs

crates/nvsim/src/lib.rs:
crates/nvsim/src/extrapolate.rs:
crates/nvsim/src/sram.rs:
