/root/repo/target/release/deps/fig2-b1562d13c30fe149.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-b1562d13c30fe149: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
