/root/repo/target/debug/deps/ablation_invariants-569d579138a48d5d.d: tests/ablation_invariants.rs

/root/repo/target/debug/deps/ablation_invariants-569d579138a48d5d: tests/ablation_invariants.rs

tests/ablation_invariants.rs:
