//! Always-on keyword spotting — the recurrent, low-reuse workload the
//! paper singles out as benefiting most from on-chip weights (§5.2):
//! "energy reduction due to memory fetches would be increasingly
//! beneficial in other resource-constrained contexts that exhibit less
//! re-use of fetched parameters (e.g., recurrent neural networks)".
//!
//! Trains a real Elman RNN on a synthetic frequency-classification task,
//! stores its weights in simulated MLC-CTT, then evaluates the
//! system-level energy picture for the LSTM-scale spec.
//!
//! ```sh
//! cargo run --release --example keyword_spotting
//! ```

use maxnvm::{baseline_design, optimal_design, CellTechnology, NvdlaConfig};
use maxnvm_dnn::rnn::{synthetic_sequences, ElmanRnn};
use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{MlcConfig, SenseAmp};
use maxnvm_faultsim::campaign::fault_maps;
use rand::SeedableRng;

fn main() {
    // 1. A real recurrent model, trained end to end.
    println!("Training an Elman RNN keyword-spotter (synthetic frequencies)...");
    let train = synthetic_sequences(400, 12, 4, 3, 1);
    let test = synthetic_sequences(120, 12, 4, 3, 2);
    let mut rnn = ElmanRnn::new(4, 24, 3, 7);
    rnn.train(&train, 15, 0.01, 3);
    println!("  test error: {:.1}%", rnn.error_rate(&test) * 100.0);

    // 2. Its weights through the eNVM pipeline, with injected faults.
    let clustered: Vec<ClusteredLayer> = rnn
        .weight_matrices()
        .iter()
        .map(|m| ClusteredLayer::from_matrix(m, 6, 5))
        .collect();
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3)
        .with_idx_sync()
        .with_sync_block_bits(64)
        .with_ecc();
    let stored: Vec<StoredLayer> = clustered
        .iter()
        .map(|c| StoredLayer::store(c, &scheme))
        .collect();
    let cells: u64 = stored.iter().map(StoredLayer::total_cells).sum();
    let sa = SenseAmp::paper_default();
    let maps = fault_maps(CellTechnology::MlcCtt, &sa);
    let fault_for = move |cfg: MlcConfig| std::sync::Arc::new(maps(cfg).scaled(150.0));
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut errors = Vec::new();
    for _ in 0..15 {
        let mats: Vec<_> = stored
            .iter()
            .map(|s| s.decode_with_faults(&fault_for, &mut rng).0)
            .collect();
        let mut faulted = rnn.clone();
        faulted.set_weight_matrices(&mats);
        errors.push(faulted.error_rate(&test));
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    println!(
        "  stored in {} cells of MLC3 CTT (BitM+IdxSync+ECC): error under faults {:.1}%\n",
        cells,
        mean * 100.0
    );

    // 3. System-level energetics for the LSTM-scale spec: the weights are
    //    re-streamed every timestep, so the DRAM baseline bleeds energy.
    let spec = zoo::keyword_lstm();
    let cfg = NvdlaConfig::nvdla_64();
    let base = baseline_design(&spec, &cfg);
    let design = optimal_design(&spec, CellTechnology::MlcCtt).expect("design");
    println!(
        "{} on NVDLA-64 ({} timesteps per inference):",
        spec.name, 16
    );
    println!(
        "  DRAM baseline: {:.3} mJ/inf ({:.0}% of it weight fetches), {:.0} mW",
        base.energy_per_inference_mj,
        base.weight_energy_mj / base.energy_per_inference_mj * 100.0,
        base.avg_power_mw
    );
    println!(
        "  MLC-CTT:       {:.3} mJ/inf ({:.2} mm2 of eNVM), {:.0} mW",
        design.system_64.energy_per_inference_mj,
        design.array.area_mm2,
        design.system_64.avg_power_mw
    );
    println!(
        "  -> {:.1}x lower energy per inference (ResNet50 managed {:.1}x on the same config)",
        base.energy_per_inference_mj / design.system_64.energy_per_inference_mj,
        {
            let r = zoo::resnet50();
            let rb = baseline_design(&r, &cfg);
            let rd = optimal_design(&r, CellTechnology::MlcCtt).expect("design");
            rb.energy_per_inference_mj / rd.system_64.energy_per_inference_mj
        }
    );
}
