//! x86-64 SIMD micro-kernels (AVX2+FMA and AVX-512F tiers).
//!
//! Every function here computes the exact per-element operation chain
//! documented in the `gemm` module: one single-rounding fused
//! multiply-add per `(k, element)` term, ascending k. `_mm*_fmadd_ps`
//! lanes and `f32::mul_add` are both IEEE-754 correctly-rounded fused
//! operations, so the vector bodies, their scalar tails, and the
//! portable fallbacks all produce identical bits — these kernels are
//! pure speedups, never a semantics change.
//!
//! All functions are `#[target_feature]`-gated and therefore `unsafe`
//! to call: the dispatch layer (`gemm::dispatch`) only routes here
//! after `is_x86_feature_detected!` has confirmed the feature set, and
//! callers are responsible for the pointer contracts spelled out on
//! each function.

use core::arch::x86_64::*;

/// AVX2+FMA micro-kernel: one full 6×16 tile, two 256-bit accumulator
/// lanes per row.
///
/// # Safety
///
/// Requires AVX2 and FMA (guaranteed by dispatch). `cp` must point at
/// the tile's top-left element of a row-major buffer with row stride
/// `stride` such that all `6*stride`-spaced rows of 16 elements are in
/// bounds and unaliased by other concurrent writers; `pa`/`pb` must
/// hold at least `kc*6` / `kc*16` packed floats.
// SAFETY: `unsafe fn` — caller contract in the doc `# Safety` section
// above; dispatch verifies the target features before routing here.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn micro_6x16_avx2(
    cp: *mut f32,
    stride: usize,
    pa: *const f32,
    pb: *const f32,
    kc: usize,
) {
    let mut acc = [[_mm256_setzero_ps(); 2]; 6];
    for (i, row) in acc.iter_mut().enumerate() {
        row[0] = _mm256_loadu_ps(cp.add(i * stride));
        row[1] = _mm256_loadu_ps(cp.add(i * stride + 8));
    }
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(pb.add(kk * 16));
        let b1 = _mm256_loadu_ps(pb.add(kk * 16 + 8));
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = _mm256_set1_ps(*pa.add(kk * 6 + i));
            row[0] = _mm256_fmadd_ps(ai, b0, row[0]);
            row[1] = _mm256_fmadd_ps(ai, b1, row[1]);
        }
    }
    for (i, row) in acc.iter().enumerate() {
        _mm256_storeu_ps(cp.add(i * stride), row[0]);
        _mm256_storeu_ps(cp.add(i * stride + 8), row[1]);
    }
}

/// AVX-512F micro-kernel: one full 8×32 tile, two 512-bit accumulator
/// lanes per row.
///
/// # Safety
///
/// Requires AVX-512F (guaranteed by dispatch). Same pointer contract as
/// [`micro_6x16_avx2`] with an 8×32 tile: rows of 32 elements at
/// `stride` spacing in bounds and unaliased; `pa`/`pb` hold `kc*8` /
/// `kc*32` floats.
// SAFETY: `unsafe fn` — caller contract in the doc `# Safety` section
// above; dispatch verifies the target features before routing here.
#[target_feature(enable = "avx512f")]
pub(super) unsafe fn micro_8x32_avx512(
    cp: *mut f32,
    stride: usize,
    pa: *const f32,
    pb: *const f32,
    kc: usize,
) {
    let mut acc = [[_mm512_setzero_ps(); 2]; 8];
    for (i, row) in acc.iter_mut().enumerate() {
        row[0] = _mm512_loadu_ps(cp.add(i * stride));
        row[1] = _mm512_loadu_ps(cp.add(i * stride + 16));
    }
    for kk in 0..kc {
        let b0 = _mm512_loadu_ps(pb.add(kk * 32));
        let b1 = _mm512_loadu_ps(pb.add(kk * 32 + 16));
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = _mm512_set1_ps(*pa.add(kk * 8 + i));
            row[0] = _mm512_fmadd_ps(ai, b0, row[0]);
            row[1] = _mm512_fmadd_ps(ai, b1, row[1]);
        }
    }
    for (i, row) in acc.iter().enumerate() {
        _mm512_storeu_ps(cp.add(i * stride), row[0]);
        _mm512_storeu_ps(cp.add(i * stride + 16), row[1]);
    }
}

/// The scalar tier's 4×8 tile compiled with FMA enabled: identical
/// source (and hence identical per-lane fused semantics) to
/// `micro_tile_mul_add::<4, 8>`, but `f32::mul_add` lowers to a
/// hardware `vfmadd` instead of a libm call, and the independent lanes
/// vectorize.
///
/// # Safety
///
/// Requires FMA (guaranteed by dispatch). Same pointer contract as
/// `micro_tile_mul_add::<4, 8>`.
// SAFETY: `unsafe fn` — caller contract in the doc `# Safety` section
// above; dispatch verifies the target features before routing here.
#[target_feature(enable = "fma")]
pub(super) unsafe fn micro_4x8_fma(
    cp: *mut f32,
    stride: usize,
    pa: *const f32,
    pb: *const f32,
    kc: usize,
) {
    // SAFETY: forwarded caller contract; #[inline(always)] body compiles
    // with this function's FMA target feature.
    unsafe { super::micro_tile_mul_add::<4, 8>(cp, stride, pa, pb, kc) }
}

/// AVX2+FMA `dst[j] = fma(a, src[j], dst[j])`: 8-lane vector body,
/// `f32::mul_add` tail — one fused rounding per element either way.
///
/// # Safety
///
/// Requires AVX2 and FMA (guaranteed by dispatch). `dst` and `src` must
/// be the same length.
// SAFETY: `unsafe fn` — caller contract in the doc `# Safety` section
// above; dispatch verifies the target features before routing here.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn axpy_avx2(dst: &mut [f32], src: &[f32], a: f32) {
    let n = dst.len().min(src.len());
    let av = _mm256_set1_ps(a);
    let mut j = 0;
    while j + 8 <= n {
        let d = _mm256_loadu_ps(dst.as_ptr().add(j));
        let s = _mm256_loadu_ps(src.as_ptr().add(j));
        _mm256_storeu_ps(dst.as_mut_ptr().add(j), _mm256_fmadd_ps(av, s, d));
        j += 8;
    }
    while j < n {
        dst[j] = a.mul_add(src[j], dst[j]);
        j += 1;
    }
}

/// AVX-512F `dst[j] = fma(a, src[j], dst[j])`: 16-lane vector body,
/// `f32::mul_add` tail.
///
/// # Safety
///
/// Requires AVX-512F (guaranteed by dispatch). `dst` and `src` must be
/// the same length.
// SAFETY: `unsafe fn` — caller contract in the doc `# Safety` section
// above; dispatch verifies the target features before routing here.
#[target_feature(enable = "avx512f")]
pub(super) unsafe fn axpy_avx512(dst: &mut [f32], src: &[f32], a: f32) {
    let n = dst.len().min(src.len());
    let av = _mm512_set1_ps(a);
    let mut j = 0;
    while j + 16 <= n {
        let d = _mm512_loadu_ps(dst.as_ptr().add(j));
        let s = _mm512_loadu_ps(src.as_ptr().add(j));
        _mm512_storeu_ps(dst.as_mut_ptr().add(j), _mm512_fmadd_ps(av, s, d));
        j += 16;
    }
    while j < n {
        dst[j] = a.mul_add(src[j], dst[j]);
        j += 1;
    }
}

/// The scalar tier's axpy compiled with FMA enabled (same fused
/// per-element chain as the portable loop, hardware instruction).
///
/// # Safety
///
/// Requires FMA (guaranteed by dispatch). `dst` and `src` must be the
/// same length.
// SAFETY: `unsafe fn` — caller contract in the doc `# Safety` section
// above; dispatch verifies the target features before routing here.
#[target_feature(enable = "fma")]
pub(super) unsafe fn axpy_fma(dst: &mut [f32], src: &[f32], a: f32) {
    super::axpy_portable(dst, src, a);
}
