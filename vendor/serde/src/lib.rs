//! Offline polyfill of the `serde` facade. The workspace only *derives*
//! `Serialize`/`Deserialize` so its public result types are
//! serialization-ready for downstream users; nothing in the repository
//! actually serializes. The traits are therefore empty markers (with
//! blanket impls so `T: Serialize` bounds would still hold) and the
//! derives are no-ops re-exported from the companion `serde_derive`
//! polyfill.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
