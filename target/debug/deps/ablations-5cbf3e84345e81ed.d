/root/repo/target/debug/deps/ablations-5cbf3e84345e81ed.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-5cbf3e84345e81ed: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
