/root/repo/target/debug/deps/properties-047f1e6f82537cb0.d: crates/nvsim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-047f1e6f82537cb0.rmeta: crates/nvsim/tests/properties.rs Cargo.toml

crates/nvsim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
