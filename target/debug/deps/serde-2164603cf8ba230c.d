/root/repo/target/debug/deps/serde-2164603cf8ba230c.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-2164603cf8ba230c.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
