/root/repo/target/debug/deps/parking_lot-cd4017c3599f8fb1.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-cd4017c3599f8fb1.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-cd4017c3599f8fb1.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
