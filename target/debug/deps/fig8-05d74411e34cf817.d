/root/repo/target/debug/deps/fig8-05d74411e34cf817.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-05d74411e34cf817.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
