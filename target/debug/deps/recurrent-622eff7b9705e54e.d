/root/repo/target/debug/deps/recurrent-622eff7b9705e54e.d: tests/recurrent.rs

/root/repo/target/debug/deps/recurrent-622eff7b9705e54e: tests/recurrent.rs

tests/recurrent.rs:
