/root/repo/target/debug/deps/determinism-725fc7831598a80c.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-725fc7831598a80c: tests/determinism.rs

tests/determinism.rs:
