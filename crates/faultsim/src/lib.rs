//! Ares-style fault-injection campaigns and design-space exploration
//! (paper §4).
//!
//! The paper's methodology, reimplemented:
//!
//! 1. Convert weights to their MLC representation, sample each cell's read
//!    distribution, flag threshold crossings as adjacent-level faults, and
//!    run inference on the corrupted model ([`campaign`]). Experiments are
//!    repeated over many randomly seeded trials.
//! 2. Quantify the resulting classification error either **end-to-end** on
//!    a trainable network ([`evaluate::NetworkEval`]) or through a
//!    calibrated weight-corruption sensitivity model for ImageNet-scale
//!    specs that cannot be trained in this substrate
//!    ([`evaluate::ProxyEval`], see `DESIGN.md`).
//! 3. Exhaustively sweep encodings × per-structure bits-per-cell ×
//!    protection schemes and keep the **minimal-cell** configuration whose
//!    error stays within the iso-training-noise bound ([`dse`], Fig. 6).
//!
//! [`analytic`] computes expected corruption closed-form from the fault
//! maps and structure geometry — used for the big four models, validated
//! against the Monte-Carlo path on small layers.

pub mod analytic;
pub mod campaign;
pub mod cancel;
pub mod checkpoint;
pub mod dse;
pub mod engine;
pub mod evaluate;
pub mod vulnerability;

pub use campaign::{wilson_interval, Campaign, CampaignResult, FailedTrial, TrialOutcome};
pub use cancel::CancelToken;
pub use checkpoint::{
    CampaignCheckpoint, CheckpointArtifactStore, CheckpointConfig, CheckpointStore, FaultPlan,
    FaultyStore, Fingerprint, FsStore, RetryPolicy,
};
pub use dse::{minimal_cells, DseConfig, DsePoint};
pub use engine::{EarlyStop, EngineError, EvalContext, RunControl, ShardSpec};
pub use evaluate::{AccuracyEval, NetworkEval, ProxyEval};
pub use vulnerability::{VulnerabilityRow, VulnerabilityStudy};
