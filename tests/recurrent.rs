//! End-to-end recurrent-workload integration: a trained Elman RNN's
//! weights through the full eNVM storage pipeline, plus the §5.2
//! system-level claim that low-reuse (recurrent) workloads benefit most
//! from on-chip weights.

use maxnvm::{baseline_design, optimal_design, CellTechnology, NvdlaConfig};
use maxnvm_dnn::rnn::{synthetic_sequences, ElmanRnn};
use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology as Tech, MlcConfig, SenseAmp};
use maxnvm_faultsim::campaign::fault_maps;
use rand::SeedableRng;

#[test]
fn trained_rnn_survives_envm_storage_end_to_end() {
    // Train.
    let train = synthetic_sequences(300, 12, 4, 3, 1);
    let test = synthetic_sequences(90, 12, 4, 3, 2);
    let mut rnn = ElmanRnn::new(4, 24, 3, 7);
    rnn.train(&train, 12, 0.01, 3);
    let baseline = rnn.error_rate(&test);
    assert!(baseline < 0.15, "RNN failed to train: {baseline}");

    // Cluster + store in MLC3 CTT with full protection.
    let mats = rnn.weight_matrices();
    let clustered: Vec<ClusteredLayer> = mats
        .iter()
        .map(|m| ClusteredLayer::from_matrix(m, 6, 5))
        .collect();
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3)
        .with_idx_sync()
        .with_sync_block_bits(64)
        .with_ecc();
    let stored: Vec<StoredLayer> = clustered
        .iter()
        .map(|c| StoredLayer::store(c, &scheme))
        .collect();

    // Clean decode: the 6-bit clustering must not break the classifier.
    let decoded: Vec<_> = stored.iter().map(|s| s.decode_clean().0).collect();
    let mut stored_rnn = rnn.clone();
    stored_rnn.set_weight_matrices(&decoded);
    let clean_err = stored_rnn.error_rate(&test);
    assert!(
        clean_err <= baseline + 0.05,
        "clustered {clean_err} vs trained {baseline}"
    );

    // Faulted decode at realistic rates: protected MLC3 must stay close.
    let sa = SenseAmp::paper_default();
    let base_maps = fault_maps(Tech::MlcCtt, &sa);
    let fault_for = move |cfg: MlcConfig| std::sync::Arc::new(base_maps(cfg).scaled(150.0));
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut worst: f64 = 0.0;
    for _ in 0..10 {
        let mats: Vec<_> = stored
            .iter()
            .map(|s| s.decode_with_faults(&fault_for, &mut rng).0)
            .collect();
        let mut faulted = rnn.clone();
        faulted.set_weight_matrices(&mats);
        worst = worst.max(faulted.error_rate(&test));
    }
    assert!(
        worst <= clean_err + 0.12,
        "protected MLC3 worst-trial error {worst} vs clean {clean_err}"
    );
}

#[test]
fn recurrent_spec_pipeline_produces_a_design() {
    // The keyword-spotting spec runs through the same pipeline as the
    // paper models.
    let spec = zoo::keyword_lstm();
    let d = optimal_design(&spec, CellTechnology::MlcCtt).expect("design");
    assert!(d.cells > 1_000_000);
    assert!(d.array.area_mm2 < 1.0, "tiny model: {}", d.array.area_mm2);
    assert!(d.system_64.fps > 100.0, "{}", d.system_64.fps);
}

#[test]
fn rnn_weight_fetch_dominates_its_dram_baseline() {
    // §5.2: with 16 fetch passes per inference, weight traffic is a far
    // larger slice of the RNN's energy than of ResNet50's — so eliminating
    // DRAM helps it disproportionately.
    let cfg = NvdlaConfig::nvdla_64();
    let rnn_base = baseline_design(&zoo::keyword_lstm(), &cfg);
    let cnn_base = baseline_design(&zoo::resnet50(), &cfg);
    let rnn_share = rnn_base.weight_energy_mj / rnn_base.energy_per_inference_mj;
    let cnn_share = cnn_base.weight_energy_mj / cnn_base.energy_per_inference_mj;
    assert!(
        rnn_share > 2.0 * cnn_share,
        "RNN weight share {rnn_share:.3} vs CNN {cnn_share:.3}"
    );
    // And the eNVM design recovers nearly all of it.
    let d = optimal_design(&zoo::keyword_lstm(), CellTechnology::MlcCtt).expect("design");
    assert!(
        d.system_64.weight_energy_mj < rnn_base.weight_energy_mj / 50.0,
        "on-chip fetch energy {} vs DRAM {}",
        d.system_64.weight_energy_mj,
        rnn_base.weight_energy_mj
    );
}
