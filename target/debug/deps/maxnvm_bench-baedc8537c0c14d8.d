/root/repo/target/debug/deps/maxnvm_bench-baedc8537c0c14d8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_bench-baedc8537c0c14d8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
