//! Offline polyfill of the `criterion` benchmarking surface this
//! workspace uses. Each benchmark is auto-calibrated (short warmup to
//! estimate per-iteration cost, then a timed batch sized to the target
//! measurement window) and reported as mean ns/iter on stdout. There is
//! no statistics engine, outlier analysis, or HTML report — the API
//! shape matches criterion 0.5 so the real crate can be dropped back in
//! when a registry is reachable.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured-quantity annotation for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Benchmark id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Benchmark id distinguished by parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (n, Some(p)) => write!(f, "{n}/{p}"),
            (n, None) => write!(f, "{n}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            name,
            parameter: None,
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    measurement_window: Duration,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time repeated calls of `routine`: warm up briefly to estimate
    /// per-iteration cost, then run a batch sized to fill the
    /// measurement window and record mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup_window = Duration::from_millis(25);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_window {
                break;
            }
        }
        let per_iter_ns = (warmup_start.elapsed().as_nanos() / u128::from(warmup_iters)).max(1);
        let iters = (self.measurement_window.as_nanos() / per_iter_ns).clamp(1, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((iters, start.elapsed()));
    }
}

fn run_one(
    id: &str,
    throughput: Option<Throughput>,
    window: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        measurement_window: window,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((iters, elapsed)) => {
            let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!(", {:.3e} elem/s", n as f64 * 1e9 / ns_per_iter)
                }
                Throughput::Bytes(n) => {
                    format!(", {:.3e} B/s", n as f64 * 1e9 / ns_per_iter)
                }
            });
            println!(
                "bench: {id:<50} {ns_per_iter:>14.1} ns/iter ({iters} iters){}",
                rate.unwrap_or_default()
            );
        }
        None => println!("bench: {id:<50} (no measurement recorded)"),
    }
}

/// Benchmark registry/runner (polyfill of `criterion::Criterion`).
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; this polyfill auto-sizes its
    /// single timed batch, so the requested sample count only scales
    /// the measurement window.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.measurement_window = Duration::from_millis(30) * (n as u32).clamp(1, 100);
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, self.measurement_window, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_window = self.measurement_window;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            measurement_window,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_window: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// See [`Criterion::sample_size`]; scales this group's window.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.measurement_window = Duration::from_millis(30) * (n as u32).clamp(1, 100);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.throughput, self.measurement_window, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.throughput, self.measurement_window, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            measurement_window: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_records_a_measurement() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
    }

    #[test]
    fn group_api_round_trips() {
        let mut c = quick();
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(128));
        group.sample_size(1);
        group.bench_function(BenchmarkId::from_parameter(42), |b| {
            b.iter(|| black_box(2u64 * 2))
        });
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_display_forms() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
