/root/repo/target/debug/deps/maxnvm_faultsim-f48d165281f9f04e.d: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_faultsim-f48d165281f9f04e.rmeta: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs Cargo.toml

crates/faultsim/src/lib.rs:
crates/faultsim/src/analytic.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/dse.rs:
crates/faultsim/src/engine/mod.rs:
crates/faultsim/src/engine/error.rs:
crates/faultsim/src/engine/pool.rs:
crates/faultsim/src/evaluate.rs:
crates/faultsim/src/vulnerability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
