//! The four memory proposals evaluated in the paper (§2, §5) and their
//! calibrated device parameters.
//!
//! Level-distribution calibration targets (paper §2.3): MLC3 adjacent-level
//! fault rates in the `1e-3 .. 1e-5` band, non-adjacent misreads at or below
//! `1.5e-10`, and the CTT's hallmark *wide unprogrammed level* (intrinsic
//! Vth variation, Fig. 2b) separated from the first programmed state by an
//! extra guard gap.

use crate::level::{CellModel, LevelDistribution, MlcConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the eNVM proposals characterized in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellTechnology {
    /// Multi-level charge-trap transistor, measured 16nm FinFET test chip.
    MlcCtt,
    /// MLC extrapolation of published RRAM (28nm CMOS-access, Chang et al.).
    MlcRram,
    /// Optimistically scaled RRAM (10F² cell) probing the technology's
    /// maximum potential.
    OptMlcRram,
    /// Single-level-cell RRAM baseline (Lee et al.).
    SlcRram,
}

impl CellTechnology {
    /// All four proposals, in the order the paper's figures list them.
    pub const ALL: [CellTechnology; 4] = [
        CellTechnology::OptMlcRram,
        CellTechnology::MlcCtt,
        CellTechnology::MlcRram,
        CellTechnology::SlcRram,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            CellTechnology::MlcCtt => "MLC-CTT",
            CellTechnology::MlcRram => "MLC-RRAM",
            CellTechnology::OptMlcRram => "Opt MLC-RRAM",
            CellTechnology::SlcRram => "SLC-RRAM",
        }
    }

    /// Maximum bits per cell this proposal supports.
    pub fn max_bits_per_cell(self) -> u8 {
        match self {
            CellTechnology::SlcRram => 1,
            _ => 3,
        }
    }

    /// MLC configurations available for this technology.
    pub fn available_configs(self) -> Vec<MlcConfig> {
        MlcConfig::ALL
            .iter()
            .copied()
            .filter(|c| c.bits() <= self.max_bits_per_cell())
            .collect()
    }

    /// Device parameters used by the array model (`maxnvm-nvsim`) and the
    /// write-time model.
    pub fn device_params(self) -> DeviceParams {
        match self {
            // 16nm FinFET, bare-transistor cell: no access device, so the
            // cell is extremely small; programmed by iterative HCI with
            // ~100ms per program-verify sequence.
            CellTechnology::MlcCtt => DeviceParams {
                tech: self,
                node_nm: 16.0,
                cell_area_f2: 6.0,
                read_voltage: 0.8,
                cell_read_current_ua: 2.0,
                program_pulse_s: 0.1,
                program_pulses_per_bit: 1.0,
                endurance_cycles: 1e4,
            },
            // 28nm CMOS-access RRAM (Chang et al. [8]), MLC via pulse-train
            // programming (Zhao et al. [74]): ~7µs per cell program.
            CellTechnology::MlcRram => DeviceParams {
                tech: self,
                node_nm: 28.0,
                cell_area_f2: 39.0,
                read_voltage: 0.5,
                cell_read_current_ua: 10.0,
                program_pulse_s: 7.0e-6,
                program_pulses_per_bit: 1.0,
                endurance_cycles: 1e6,
            },
            // Optimistic 10F² cell scaled to 16nm.
            CellTechnology::OptMlcRram => DeviceParams {
                tech: self,
                node_nm: 16.0,
                cell_area_f2: 10.0,
                read_voltage: 0.5,
                cell_read_current_ua: 8.0,
                program_pulse_s: 2.5e-6,
                program_pulses_per_bit: 1.0,
                endurance_cycles: 1e6,
            },
            // SLC RRAM baseline: single fast write pulse (~100ns + verify).
            CellTechnology::SlcRram => DeviceParams {
                tech: self,
                node_nm: 28.0,
                cell_area_f2: 39.0,
                read_voltage: 0.5,
                cell_read_current_ua: 10.0,
                program_pulse_s: 1.0e-7,
                program_pulses_per_bit: 1.0,
                endurance_cycles: 1e6,
            },
        }
    }

    /// Builds the calibrated [`CellModel`] for this technology at the given
    /// bits-per-cell.
    ///
    /// # Panics
    ///
    /// Panics if `config` exceeds [`CellTechnology::max_bits_per_cell`].
    pub fn cell_model(self, config: MlcConfig) -> CellModel {
        assert!(
            config.bits() <= self.max_bits_per_cell(),
            "{} supports at most {} bits per cell",
            self.name(),
            self.max_bits_per_cell()
        );
        let n = config.levels();
        match self {
            CellTechnology::MlcCtt => {
                // Wide unprogrammed level (intrinsic Vth spread), tight
                // programmed levels (iterative write-and-check, Fig. 2b),
                // extra guard gap after level 0 (§2.2.1).
                let sigma_unprog = 0.0452;
                let sigma_prog = 0.01353;
                // `n` is 2, 4, or 8: MlcConfig is validated to 1..=3
                // bits. The last arm carries the densest calibration.
                let first_prog = match n {
                    2 => 1.0,
                    4 => 0.40,
                    _ => 0.25,
                };
                let mut levels = vec![LevelDistribution::new(0.0, sigma_unprog)];
                for i in 1..n {
                    let mean =
                        first_prog + (1.0 - first_prog) * (i - 1) as f64 / ((n - 2).max(1)) as f64;
                    levels.push(LevelDistribution::new(mean, sigma_prog));
                }
                CellModel::new(levels)
            }
            CellTechnology::MlcRram | CellTechnology::SlcRram => {
                // Pulse-train programmed filament: uniform spread per level
                // (Zhao et al.), evenly spaced across the resistance window.
                Self::evenly_spaced(n, 0.01657)
            }
            CellTechnology::OptMlcRram => {
                // Projected improved multi-level control (tighter spreads).
                Self::evenly_spaced(n, 0.01576)
            }
        }
    }

    fn evenly_spaced(n: usize, sigma: f64) -> CellModel {
        let levels = (0..n)
            .map(|i| LevelDistribution::new(i as f64 / (n - 1) as f64, sigma))
            .collect();
        CellModel::new(levels)
    }
}

impl fmt::Display for CellTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Physical device parameters consumed by the array and write-time models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Which technology these parameters describe.
    pub tech: CellTechnology,
    /// Process node in nanometres.
    pub node_nm: f64,
    /// Cell footprint in F² (feature-size-squared units).
    pub cell_area_f2: f64,
    /// Nominal wordline read voltage (V).
    pub read_voltage: f64,
    /// Typical per-cell read current (µA), sets bitline sensing energy.
    pub cell_read_current_ua: f64,
    /// Duration of one program(-and-verify) operation (seconds).
    pub program_pulse_s: f64,
    /// Scaling of program iterations with stored bits (1.0 = linear in
    /// levels handled by the pulse itself).
    pub program_pulses_per_bit: f64,
    /// Write endurance (program/erase cycles).
    pub endurance_cycles: f64,
}

impl DeviceParams {
    /// Physical cell area in mm² (`cell_area_f2 × F²`).
    pub fn cell_area_mm2(&self) -> f64 {
        let f_mm = self.node_nm * 1e-6;
        self.cell_area_f2 * f_mm * f_mm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sense::SenseAmp;

    #[test]
    fn mlc3_fault_rates_land_in_paper_band() {
        // §2.3: "fault rates for MLC3 range from 1e-3 to 1e-5".
        for tech in [
            CellTechnology::MlcCtt,
            CellTechnology::MlcRram,
            CellTechnology::OptMlcRram,
        ] {
            let cell = tech.cell_model(MlcConfig::MLC3);
            let worst = cell.fault_map().worst_adjacent_rate();
            assert!(
                (1e-6..1e-2).contains(&worst),
                "{tech}: MLC3 worst adjacent rate {worst} outside band"
            );
        }
    }

    #[test]
    fn non_adjacent_misreads_below_paper_bound() {
        // Footnote 1: non-adjacent misread probability 1.5e-10 or below.
        for tech in CellTechnology::ALL {
            for cfg in tech.available_configs() {
                let cell = tech.cell_model(cfg);
                let bound = cell.non_adjacent_bound();
                assert!(bound <= 1.5e-10, "{tech} {cfg}: non-adjacent bound {bound}");
            }
        }
    }

    #[test]
    fn slc_and_mlc2_are_much_safer_than_mlc3() {
        for tech in [
            CellTechnology::MlcCtt,
            CellTechnology::MlcRram,
            CellTechnology::OptMlcRram,
        ] {
            let r1 = tech
                .cell_model(MlcConfig::SLC)
                .fault_map()
                .worst_adjacent_rate();
            let r2 = tech
                .cell_model(MlcConfig::MLC2)
                .fault_map()
                .worst_adjacent_rate();
            let r3 = tech
                .cell_model(MlcConfig::MLC3)
                .fault_map()
                .worst_adjacent_rate();
            assert!(r1 < r2 && r2 < r3, "{tech}: {r1} {r2} {r3}");
            assert!(r2 < 1e-6, "{tech}: MLC2 should be near-safe, got {r2}");
        }
    }

    #[test]
    fn ctt_unprogrammed_pair_dominates_but_guard_gap_bounds_it() {
        // Fig. 2b: the unprogrammed level is much wider than the tightly
        // write-verified programmed levels, so its boundary is the worst
        // fault pair — but the §2.2.1 guard gap keeps it within ~5x of the
        // programmed pairs rather than orders of magnitude above.
        let cell = CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3);
        let fm = cell.fault_map();
        let unprog_pair = fm.p_up(0).max(fm.p_down(1));
        let worst_prog = (1..7).map(|l| fm.p_up(l)).fold(0.0f64, f64::max);
        assert!(unprog_pair > worst_prog, "unprogrammed should dominate");
        assert!(
            unprog_pair < 10.0 * worst_prog,
            "guard gap failed: {unprog_pair} vs {worst_prog}"
        );
        // The unprogrammed sigma really is the widest (Fig. 2b).
        let s0 = cell.levels()[0].sigma;
        assert!(cell.levels()[1..].iter().all(|l| l.sigma < s0));
    }

    #[test]
    fn opt_rram_beats_ctt_at_mlc3() {
        // The optimistic RRAM sustains 3 bits/cell where CTT cannot (§5.1):
        // its worst-case rate must be lower.
        let ctt = CellTechnology::MlcCtt
            .cell_model(MlcConfig::MLC3)
            .fault_map()
            .worst_adjacent_rate();
        let opt = CellTechnology::OptMlcRram
            .cell_model(MlcConfig::MLC3)
            .fault_map()
            .worst_adjacent_rate();
        assert!(opt < ctt, "opt {opt} vs ctt {ctt}");
    }

    #[test]
    fn sense_amp_keeps_rates_within_2x() {
        // §2.3 sizing criterion. It applies to the *relevant* (MLC3)
        // inter-level fault rates — deep-tail MLC2/SLC rates are
        // exponentially sensitive to any added offset but are so small
        // (<1e-10) that the inflation never matters downstream.
        let sa = SenseAmp::paper_default();
        for tech in [
            CellTechnology::MlcCtt,
            CellTechnology::MlcRram,
            CellTechnology::OptMlcRram,
        ] {
            let cell = tech.cell_model(MlcConfig::MLC3);
            let base = cell.fault_map().worst_adjacent_rate();
            let with = cell.with_sense_amp(&sa).fault_map().worst_adjacent_rate();
            assert!(
                with > base && with < 2.0 * base,
                "{tech}: SA inflates {base} -> {with}"
            );
        }
    }

    #[test]
    fn slc_rram_is_single_bit_only() {
        assert_eq!(CellTechnology::SlcRram.max_bits_per_cell(), 1);
        assert_eq!(CellTechnology::SlcRram.available_configs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "supports at most")]
    fn slc_rram_rejects_mlc() {
        CellTechnology::SlcRram.cell_model(MlcConfig::MLC2);
    }

    #[test]
    fn cell_areas_reflect_density_ordering() {
        // CTT (bare transistor) < optimistic RRAM < CMOS-access RRAM.
        let ctt = CellTechnology::MlcCtt.device_params().cell_area_mm2();
        let opt = CellTechnology::OptMlcRram.device_params().cell_area_mm2();
        let rram = CellTechnology::MlcRram.device_params().cell_area_mm2();
        assert!(ctt < opt && opt < rram, "{ctt} {opt} {rram}");
    }

    #[test]
    fn write_pulse_ordering_matches_paper() {
        // §1: CTT write latency is orders of magnitude above RRAM.
        let ctt = CellTechnology::MlcCtt.device_params().program_pulse_s;
        let rram = CellTechnology::MlcRram.device_params().program_pulse_s;
        let slc = CellTechnology::SlcRram.device_params().program_pulse_s;
        assert!(ctt / rram > 1e3);
        assert!(rram > slc);
    }
}
