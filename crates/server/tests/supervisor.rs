//! The supervisor end to end: bounded typed admission, byte-identical
//! stream results, cooperative cancellation, watchdog quarantine,
//! disk-full eviction with resumable spools, shutdown-evicted streams
//! resuming in a fresh supervisor, and D1 byte-identity under a
//! deterministic fault-injecting checkpoint store.

mod common;

use common::{direct, job, slow_job, temp_spool};
use maxnvm_faultsim::checkpoint::{FaultPlan, FaultyStore, RetryPolicy};
use maxnvm_faultsim::EngineError;
use maxnvm_server::{spooled_streams, Rejected, StreamState, Supervisor, SupervisorConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The deterministic fault seed for injection tests: CI's
/// `fault-injection` job sweeps it; locally it defaults to a fixed
/// value so runs stay reproducible.
fn fault_seed() -> u64 {
    std::env::var("MAXNVM_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(42)
}

/// Polls `status` until the stream carries a result (the runner thread
/// may drain slightly after the state turns terminal).
fn wait_for_result(sup: &Supervisor, id: &maxnvm_server::StreamId) -> maxnvm_server::StreamStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = sup.wait(id).expect("known stream");
        if status.result.is_some() || status.error.is_some() {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "stream never drained: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn concurrent_streams_complete_byte_identical_to_direct_runs() {
    let spool = temp_spool("byte-identical");
    let sup = Supervisor::start(SupervisorConfig::new(&spool).max_running(3)).expect("start");
    let seeds: Vec<u64> = (0..8).map(|i| 100 + i).collect();
    let ids: Vec<_> = seeds
        .iter()
        .map(|&s| sup.submit(format!("stream-{s}"), job(s)).expect("submit"))
        .collect();
    for (id, &seed) in ids.iter().zip(&seeds) {
        let status = sup.wait(id).expect("known stream");
        assert_eq!(status.state, StreamState::Done, "{id}: {:?}", status.error);
        assert_eq!(status.result.expect("result"), direct(seed), "{id}");
    }
    // Completed streams leave no spool files behind.
    assert_eq!(
        spooled_streams(&spool).expect("spool listing"),
        Vec::<String>::new()
    );
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn admission_is_bounded_and_typed() {
    let spool = temp_spool("admission");
    let config = SupervisorConfig::new(&spool)
        .max_running(1)
        .max_inflight(3)
        .watchdog(Duration::from_secs(120));
    let sup = Supervisor::start(config).expect("start");
    let slow = Duration::from_millis(30);
    let s1 = sup.submit("s1", slow_job(1, slow)).expect("s1");
    let s2 = sup.submit("s2", slow_job(2, slow)).expect("s2");
    // An *active* duplicate is rejected as such.
    assert_eq!(
        sup.submit("s1", slow_job(1, slow)).expect_err("dup"),
        Rejected::DuplicateStream { id: "s1".into() }
    );
    let s3 = sup.submit("s3", slow_job(3, slow)).expect("s3");
    // In-flight bound hit: typed QueueFull, nothing queued.
    assert_eq!(
        sup.submit("s4", slow_job(4, slow)).expect_err("full"),
        Rejected::QueueFull { capacity: 3 }
    );
    assert!(sup
        .status(&maxnvm_server::StreamId::new("s4").expect("id"))
        .is_none());
    // Invalid ids never reach the queue.
    for bad in ["", "../escape", "a b", ".hidden"] {
        assert!(matches!(
            sup.submit(bad, job(9)).expect_err("invalid id"),
            Rejected::InvalidStreamId { .. }
        ));
    }
    for id in [&s1, &s2, &s3] {
        let status = sup.wait(id).expect("known stream");
        assert_eq!(status.state, StreamState::Done);
    }
    // With every stream terminal, capacity is free again and a terminal
    // id may be resubmitted (the resume path).
    sup.submit("s1", job(1)).expect("terminal id resubmits");
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn cancelled_stream_degrades_to_a_clean_partial_result() {
    let spool = temp_spool("cancel");
    let config = SupervisorConfig::new(&spool).watchdog(Duration::from_secs(120));
    let sup = Supervisor::start(config).expect("start");
    let id = sup
        .submit("c1", slow_job(5, Duration::from_millis(40)))
        .expect("submit");
    // Let it start, then cancel mid-run.
    std::thread::sleep(Duration::from_millis(120));
    assert!(sup.cancel(&id));
    let status = wait_for_result(&sup, &id);
    assert_eq!(status.state, StreamState::Cancelled);
    let partial = status.result.expect("partial result");
    assert!(partial.cancelled);
    assert!(partial.completed_trials < partial.requested_trials);
    // The completed prefix keeps its per-trial streams (D1): it matches
    // the uninterrupted run's leading trials exactly.
    let truth = direct(5);
    assert_eq!(partial.errors, truth.errors[..partial.completed_trials]);
    // Cancelling a terminal stream is a no-op.
    assert!(!sup.cancel(&id));
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn watchdog_quarantines_a_stalled_stream_and_frees_its_slot() {
    let spool = temp_spool("watchdog");
    let config = SupervisorConfig::new(&spool)
        .max_running(1)
        .watchdog(Duration::from_millis(80));
    let sup = Supervisor::start(config).expect("start");
    // Each evaluation stalls for 400 ms >> the 80 ms deadline: the
    // watchdog sees no progress and fires the stream's cancel token.
    let id = sup
        .submit("stall", slow_job(6, Duration::from_millis(400)))
        .expect("submit");
    let status = sup.wait(&id).expect("known stream");
    assert_eq!(status.state, StreamState::Quarantined);
    // The slot was reclaimed immediately: a healthy stream completes
    // while the stalled one is still draining.
    let healthy = sup.submit("healthy", job(7)).expect("submit");
    let done = sup.wait(&healthy).expect("known stream");
    assert_eq!(done.state, StreamState::Done, "{:?}", done.error);
    assert_eq!(done.result.expect("result"), direct(7));
    // Once the stalled thread drains, the quarantined stream carries a
    // clean partial result (the token cut it between trials).
    let drained = wait_for_result(&sup, &id);
    assert_eq!(drained.state, StreamState::Quarantined);
    let partial = drained.result.expect("partial result");
    assert!(partial.cancelled);
    assert!(partial.completed_trials < partial.requested_trials);
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn resubmitted_quarantined_stream_defers_until_the_old_runner_drains() {
    let spool = temp_spool("quarantine-resubmit");
    let config = SupervisorConfig::new(&spool)
        .max_running(2)
        .watchdog(Duration::from_millis(300));
    let sup = Supervisor::start(config).expect("start");
    // Each evaluation stalls for 450 ms >> the 300 ms deadline, so the
    // watchdog fires while the first evaluations are still in flight;
    // the old runner drains only once they finish (~450 ms in).
    let id = sup
        .submit("rq", slow_job(33, Duration::from_millis(450)))
        .expect("submit");
    let status = sup.wait(&id).expect("known stream");
    assert_eq!(status.state, StreamState::Quarantined);
    // Resubmit the terminal id while the stalled runner is still
    // draining. The resubmitted run is slow enough (100 ms per eval,
    // well under the deadline) that the old runner's late `Done` lands
    // mid-run. It must be deferred until the drain (two runners must
    // never share one spool file) and then complete with its *own*
    // full result — never the old runner's stale partial outcome, and
    // never a wedged event loop.
    let id2 = sup
        .submit("rq", slow_job(33, Duration::from_millis(100)))
        .expect("terminal id resubmits");
    let done = sup.wait(&id2).expect("known stream");
    assert_eq!(done.state, StreamState::Done, "{:?}", done.error);
    let result = done.result.expect("result");
    assert!(!result.cancelled, "stale quarantined outcome leaked");
    assert_eq!(result, direct(33));
    // Nothing rewrites the terminal state after the fact.
    std::thread::sleep(Duration::from_millis(600));
    let still = sup.status(&id2).expect("known stream");
    assert_eq!(still.state, StreamState::Done);
    assert_eq!(still.result.expect("result"), direct(33));
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn quarantined_stream_stays_quarantined_when_its_drain_errors() {
    let spool = temp_spool("quarantine-err-drain");
    // Every checkpoint write fails transiently with no retry budget, so
    // the stalled stream's drain ends in Err(CheckpointIo) — which must
    // not rewrite the already-published quarantine decision to Failed.
    let always_fail = FaultPlan {
        io_error: 1.0,
        torn_write: 0.0,
        disk_full: 0.0,
        slow_write: None,
    };
    let config = SupervisorConfig::new(&spool)
        .watchdog(Duration::from_millis(80))
        .checkpoint_every(1)
        .with_store(Arc::new(FaultyStore::new(fault_seed(), always_fail)))
        .with_retry(RetryPolicy::none());
    let sup = Supervisor::start(config).expect("start");
    let id = sup
        .submit("qerr", slow_job(31, Duration::from_millis(400)))
        .expect("submit");
    let status = sup.wait(&id).expect("known stream");
    assert_eq!(status.state, StreamState::Quarantined);
    let drained = wait_for_result(&sup, &id);
    assert_eq!(
        drained.state,
        StreamState::Quarantined,
        "terminal quarantine decision was rewritten"
    );
    assert!(
        matches!(drained.error, Some(EngineError::CheckpointIo { .. })),
        "{:?}",
        drained.error
    );
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn checkpoint_retry_backoff_is_not_a_watchdog_stall() {
    let spool = temp_spool("retry-not-stall");
    // Every write fails transiently; the retry ladder (100 ms · 2^k,
    // k = 0..3) takes ~1.5 s of backoff with no *evaluator* progress —
    // but each store attempt beats the same liveness counter, and the
    // longest silent gap (800 ms) stays under the 1.1 s deadline. The
    // stream must exhaust its budget and fail typed, not be spuriously
    // quarantined mid-backoff.
    let always_fail = FaultPlan {
        io_error: 1.0,
        torn_write: 0.0,
        disk_full: 0.0,
        slow_write: None,
    };
    let config = SupervisorConfig::new(&spool)
        .checkpoint_every(1)
        .watchdog(Duration::from_millis(1100))
        .with_store(Arc::new(FaultyStore::new(fault_seed(), always_fail)))
        .with_retry(RetryPolicy {
            retries: 4,
            base_delay: Duration::from_millis(100),
        });
    let sup = Supervisor::start(config).expect("start");
    let id = sup.submit("backoff", job(41)).expect("submit");
    let status = wait_for_result(&sup, &id);
    assert_eq!(
        status.state,
        StreamState::Failed,
        "retry backoff must count as progress: {:?}",
        status.error
    );
    assert!(
        matches!(status.error, Some(EngineError::CheckpointIo { .. })),
        "{:?}",
        status.error
    );
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn disk_full_evicts_the_stream_and_resubmission_completes() {
    let spool = temp_spool("disk-full");
    // Every checkpoint write hits a full disk.
    let full = FaultPlan {
        io_error: 0.0,
        torn_write: 0.0,
        disk_full: 1.0,
        slow_write: None,
    };
    let config = SupervisorConfig::new(&spool)
        .checkpoint_every(1)
        .with_store(Arc::new(FaultyStore::new(fault_seed(), full)))
        .with_retry(RetryPolicy::new(2));
    let sup = Supervisor::start(config).expect("start");
    let id = sup.submit("evictee", job(11)).expect("submit");
    let status = sup.wait(&id).expect("known stream");
    // Disk-full is not retried: the stream is evicted with the typed
    // error (and the offending path) attached.
    assert_eq!(status.state, StreamState::Evicted);
    match status.error.expect("typed error") {
        EngineError::CheckpointDiskFull { path, .. } => {
            assert!(path.contains("evictee.ckpt"), "{path}")
        }
        other => panic!("expected CheckpointDiskFull, got {other}"),
    }
    sup.shutdown();
    // The operator frees space (here: a supervisor over a healthy
    // store); resubmitting the evicted stream completes byte-identically.
    let sup = Supervisor::start(SupervisorConfig::new(&spool)).expect("restart");
    let id = sup.submit("evictee", job(11)).expect("resubmit");
    let status = sup.wait(&id).expect("known stream");
    assert_eq!(status.state, StreamState::Done, "{:?}", status.error);
    assert_eq!(status.result.expect("result"), direct(11));
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn shutdown_evicts_in_flight_streams_and_a_fresh_supervisor_resumes_them() {
    let spool = temp_spool("shutdown-resume");
    let config = SupervisorConfig::new(&spool)
        .max_running(1)
        .checkpoint_every(1)
        .watchdog(Duration::from_secs(120));
    let sup = Supervisor::start(config).expect("start");
    let seeds = [21u64, 22, 23];
    let ids: Vec<_> = seeds
        .iter()
        .map(|&s| {
            sup.submit(format!("sd-{s}"), slow_job(s, Duration::from_millis(25)))
                .expect("submit")
        })
        .collect();
    // Wait until the running stream has durably checkpointed at least
    // one trial, then shut down with work still in flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    while spooled_streams(&spool).expect("listing").is_empty() {
        assert!(Instant::now() < deadline, "no checkpoint ever appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    let table = sup.shutdown();
    for id in &ids {
        let state = table.get(id).expect("tracked").state;
        assert!(
            matches!(state, StreamState::Evicted | StreamState::Done),
            "{id}: {state}"
        );
    }
    assert!(
        table.values().any(|s| s.state == StreamState::Evicted),
        "shutdown landed after everything finished; nothing was evicted"
    );
    // Restart: the spool directory names the resumable streams; a fresh
    // supervisor picks each one up (checkpointed or not) and every
    // result is byte-identical to an uninterrupted run.
    let listed = spooled_streams(&spool).expect("listing");
    for stem in &listed {
        assert!(
            seeds.iter().any(|s| stem == &format!("sd-{s}")),
            "foreign spool file {stem}"
        );
    }
    let sup = Supervisor::start(SupervisorConfig::new(&spool)).expect("restart");
    for (id, &seed) in ids.iter().zip(&seeds) {
        if table.get(id).expect("tracked").state == StreamState::Done {
            continue;
        }
        let resumed = sup.submit(id.as_str(), job(seed)).expect("resubmit");
        let status = sup.wait(&resumed).expect("known stream");
        assert_eq!(status.state, StreamState::Done, "{id}: {:?}", status.error);
        assert_eq!(status.result.expect("result"), direct(seed), "{id}");
    }
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn fault_injected_checkpointing_preserves_byte_identity() {
    // The whole point of the robustness layer: under seeded I/O faults
    // (transient errors, torn writes) every stream either completes
    // byte-identically or fails *typed* — and a failed stream resumed by
    // resubmission still converges to the exact uninterrupted bytes.
    let spool = temp_spool("fault-injected");
    let seeds: Vec<u64> = (0..6).map(|i| 300 + i).collect();
    let config = SupervisorConfig::new(&spool)
        .max_running(2)
        .checkpoint_every(1)
        .with_store(Arc::new(FaultyStore::new(fault_seed(), FaultPlan::flaky())))
        .with_retry(RetryPolicy {
            retries: 3,
            base_delay: Duration::from_millis(1),
        });
    let sup = Supervisor::start(config).expect("start");
    for &seed in &seeds {
        let name = format!("fi-{seed}");
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts <= 50, "stream {name} never converged");
            let id = match sup.submit(&name, job(seed)) {
                Ok(id) => id,
                Err(Rejected::DuplicateStream { .. }) => unreachable!("waited to terminal"),
                Err(other) => panic!("unexpected rejection: {other}"),
            };
            let status = sup.wait(&id).expect("known stream");
            match status.state {
                StreamState::Done => {
                    assert_eq!(status.result.expect("result"), direct(seed), "{name}");
                    break;
                }
                // Exhausted retries (CheckpointIo → Failed) or injected
                // disk-full (→ Evicted): typed, never silent — resubmit
                // and let the spool snapshot (possibly torn, then
                // self-healed) carry the stream forward.
                StreamState::Failed | StreamState::Evicted => {
                    let err = status.error.expect("typed error");
                    assert!(
                        matches!(
                            err,
                            EngineError::CheckpointIo { .. }
                                | EngineError::CheckpointDiskFull { .. }
                        ),
                        "untyped failure for {name}: {err}"
                    );
                }
                other => panic!("unexpected terminal state for {name}: {other}"),
            }
        }
    }
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}
