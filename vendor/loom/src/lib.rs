//! Offline polyfill of the slice of `loom` the MaxNVM workspace uses.
//!
//! Real loom is an exhaustive permutation-based model checker (DPOR over
//! all interleavings of the modelled primitives). This build environment
//! has no crates.io access, so this polyfill substitutes **seeded
//! randomized-schedule stress**: [`model`] runs the closure many times,
//! and every lock acquisition, condvar wake-up, and atomic access
//! injects a pseudo-random scheduling perturbation (a yield or a short
//! spin) driven by a per-iteration seed. That explores a different — and
//! far denser — set of interleavings per run than plain repetition,
//! while staying deterministic for a fixed `LOOM_POLYFILL_SEED`.
//!
//! What this proves and does not prove:
//! - A failure here is a real bug: every schedule the stress produces is
//!   a legal schedule.
//! - A pass here is evidence, not proof — unlike real loom, low-probability
//!   interleavings can escape the sampling. The suite is written so the
//!   races of interest (enqueue vs. park, completion vs. wait, shutdown
//!   vs. drain) sit directly on the perturbed primitives.
//!
//! The sync API mirrors `parking_lot` (guard-based `lock()`, `&mut`-guard
//! `Condvar::wait`) rather than real loom's std-style API, so the pool
//! code compiles unchanged under `--cfg loom` with only an import swap.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};

/// Iterations each [`model`] call runs. Override with the
/// `LOOM_POLYFILL_ITERS` environment variable.
const DEFAULT_ITERS: u64 = 64;

/// Global base seed for the run; each model iteration and each thread
/// derive their own stream from it.
static BASE_SEED: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

thread_local! {
    /// Per-thread LCG state for schedule perturbation. Seeded lazily
    /// from `BASE_SEED` so threads spawned inside the model get
    /// distinct, deterministic streams.
    static RNG: Cell<u64> = const { Cell::new(0) };
}

/// Advances the calling thread's perturbation stream and maybe yields:
/// roughly half of the calls do nothing, a quarter yield the OS thread,
/// and a quarter spin briefly — enough jitter to reorder the
/// acquire/park/notify windows the pool's correctness depends on.
fn perturb() {
    let draw = RNG.with(|rng| {
        let mut s = rng.get();
        if s == 0 {
            // First use on this thread: fold the thread id into the base
            // seed for a distinct stream.
            let tid = {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                let id = format!("{:?}", std::thread::current().id());
                for b in id.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            s = BASE_SEED.load(StdOrdering::Relaxed) ^ tid | 1;
        }
        // Constants from Knuth's MMIX LCG.
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng.set(s);
        s >> 60
    });
    match draw {
        0..=7 => {}
        8..=11 => std::thread::yield_now(),
        _ => {
            for _ in 0..(draw * 13) {
                std::hint::spin_loop();
            }
        }
    }
}

/// Runs `f` under randomized-schedule stress: `LOOM_POLYFILL_ITERS`
/// iterations (default 64), each with a distinct deterministic
/// perturbation seed derived from `LOOM_POLYFILL_SEED` (default fixed).
///
/// Mirrors `loom::model`'s signature closely enough for the workspace's
/// model tests; unlike real loom it does not explore interleavings
/// exhaustively (see the crate docs).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("LOOM_POLYFILL_ITERS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERS);
    let seed = std::env::var("LOOM_POLYFILL_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0x5eed_c0de_4a11_0c85);
    for i in 0..iters {
        BASE_SEED.store(
            seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            StdOrdering::Relaxed,
        );
        RNG.with(|rng| rng.set(0));
        f();
    }
}

pub mod sync {
    //! Perturbation-injecting synchronization primitives with
    //! `parking_lot`'s guard-based API.

    pub use std::sync::Arc;

    use super::perturb;
    use std::sync::{self, PoisonError};

    /// Mutex that yields/spins pseudo-randomly around acquisition.
    #[derive(Default)]
    pub struct Mutex<T: ?Sized> {
        inner: sync::Mutex<T>,
    }

    /// RAII guard for [`Mutex`].
    pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Create a new mutex.
        pub const fn new(value: T) -> Self {
            Self {
                inner: sync::Mutex::new(value),
            }
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire the lock (never poisons), perturbing the schedule on
        /// both sides of the acquisition so contended hand-offs explore
        /// different winners across model iterations.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            perturb();
            let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            perturb();
            guard
        }

        /// Mutable access without locking (requires exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Condition variable with parking_lot's `&mut MutexGuard` API and
    /// schedule perturbation around notification and wake-up.
    #[derive(Default)]
    pub struct Condvar {
        inner: sync::Condvar,
    }

    impl Condvar {
        /// Create a new condition variable.
        pub const fn new() -> Self {
            Self {
                inner: sync::Condvar::new(),
            }
        }

        /// Wake one waiting thread.
        pub fn notify_one(&self) {
            perturb();
            self.inner.notify_one();
        }

        /// Wake all waiting threads.
        pub fn notify_all(&self) {
            perturb();
            self.inner.notify_all();
        }

        /// Block until notified. Same guard-swap bridge as the vendored
        /// parking_lot polyfill (see that crate for the soundness note),
        /// plus a perturbation after reacquisition so woken threads race
        /// each other differently per iteration.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            unsafe {
                let taken = std::ptr::read(guard);
                let reacquired = self
                    .inner
                    .wait(taken)
                    .unwrap_or_else(PoisonError::into_inner);
                std::ptr::write(guard, reacquired);
            }
            perturb();
        }
    }

    pub mod atomic {
        //! Atomics whose loads and stores perturb the schedule.

        pub use std::sync::atomic::Ordering;

        use super::super::perturb;
        use std::sync::atomic as std_atomic;

        /// `AtomicBool` with pseudo-random yields around each access.
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            inner: std_atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Create a new atomic bool.
            pub const fn new(value: bool) -> Self {
                Self {
                    inner: std_atomic::AtomicBool::new(value),
                }
            }

            /// Load with a schedule perturbation before the read.
            pub fn load(&self, order: Ordering) -> bool {
                perturb();
                self.inner.load(order)
            }

            /// Store with a schedule perturbation after the write.
            pub fn store(&self, value: bool, order: Ordering) {
                self.inner.store(value, order);
                perturb();
            }

            /// Swap with perturbations on both sides.
            pub fn swap(&self, value: bool, order: Ordering) -> bool {
                perturb();
                let prev = self.inner.swap(value, order);
                perturb();
                prev
            }
        }

        /// `AtomicUsize` with pseudo-random yields around each access.
        #[derive(Debug, Default)]
        pub struct AtomicUsize {
            inner: std_atomic::AtomicUsize,
        }

        impl AtomicUsize {
            /// Create a new atomic usize.
            pub const fn new(value: usize) -> Self {
                Self {
                    inner: std_atomic::AtomicUsize::new(value),
                }
            }

            /// Load with a schedule perturbation before the read.
            pub fn load(&self, order: Ordering) -> usize {
                perturb();
                self.inner.load(order)
            }

            /// Store with a schedule perturbation after the write.
            pub fn store(&self, value: usize, order: Ordering) {
                self.inner.store(value, order);
                perturb();
            }

            /// Add with perturbations on both sides.
            pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
                perturb();
                let prev = self.inner.fetch_add(value, order);
                perturb();
                prev
            }
        }
    }
}

pub mod thread {
    //! Thread handles for model tests. Threads are real OS threads (the
    //! perturbation lives in the sync primitives), so `spawn`/`join`
    //! pass straight through to std.

    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn model_runs_the_default_iteration_count() {
        let count = Arc::new(AtomicUsize::new(0));
        let count2 = Arc::clone(&count);
        super::model(move || {
            count2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn perturbed_condvar_still_signals() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let handle = super::thread::spawn(move || {
                let (lock, cvar) = &*pair2;
                *lock.lock() = true;
                cvar.notify_all();
            });
            let (lock, cvar) = &*pair;
            let mut done = lock.lock();
            while !*done {
                cvar.wait(&mut done);
            }
            drop(done);
            handle.join().expect("signal thread");
        });
    }
}
