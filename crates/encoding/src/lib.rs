//! Weight compression and sparse encodings for MLC eNVM storage
//! (paper §3.1–§3.3).
//!
//! The pipeline this crate implements:
//!
//! 1. **Prune + cluster** ([`cluster`]): magnitude pruning plus per-layer
//!    1-D k-means clustering so each weight becomes a 4–7-bit cluster
//!    index (index 0 is reserved for the exact zero produced by pruning).
//! 2. **Sparse-encode** ([`csr`], [`bitmask`], [`dense`]): lossless
//!    formats over the cluster-index matrix — CSR (values / relative
//!    column indexes / per-row counters) and the NVDLA-style bitmask
//!    format, optionally with the paper's proposed **IdxSync** counters.
//! 3. **Store** ([`storage`]): pack each structure's bit-stream into MLC
//!    cells at a chosen bits-per-cell, optionally Gray-coded and SEC-DED
//!    protected, and decode it back *through* injected faults — faithfully
//!    reproducing the misalignment-propagation failure modes of §4.2.
//!
//! [`estimate`] mirrors the concrete encoders analytically so
//! ImageNet-scale models can be sized without materializing gigabytes.
//!
//! # Example
//!
//! ```
//! use maxnvm_dnn::network::LayerMatrix;
//! use maxnvm_encoding::cluster::ClusteredLayer;
//! use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
//! use maxnvm_encoding::EncodingKind;
//! use maxnvm_envm::MlcConfig;
//!
//! let m = LayerMatrix::new("fc", 4, 8, vec![
//!     0.0, 0.5, 0.0, -0.5, 0.0, 0.0, 1.0, 0.0,
//!     0.5, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0,
//!     0.0, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0, 1.0,
//!     0.0, 1.0, 0.0, 0.0, 0.5, 0.0, -0.5, 0.0,
//! ]);
//! let clustered = ClusteredLayer::from_matrix(&m, 2, 42);
//! let scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::SLC);
//! let stored = StoredLayer::store(&clustered, &scheme);
//! let (decoded, _) = stored.decode_clean();
//! assert_eq!(decoded.data, clustered.reconstruct().data);
//! ```

pub mod bitmask;
pub mod cluster;
pub mod csr;
pub mod dense;
pub mod estimate;
pub mod quantize;
pub mod storage;

use serde::{Deserialize, Serialize};
use std::fmt;

/// The sparse-encoding strategies the paper compares (Table 2, Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EncodingKind {
    /// Dense storage of pruned-and-clustered indices ("P+C").
    DenseClustered,
    /// Compressed sparse row (§3.2.1).
    Csr,
    /// NVDLA bitmask format (§3.2.2), "BitM" in the paper.
    BitMask,
}

impl EncodingKind {
    /// All encodings, in Table 2 row order.
    pub const ALL: [EncodingKind; 3] = [
        EncodingKind::DenseClustered,
        EncodingKind::Csr,
        EncodingKind::BitMask,
    ];

    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            EncodingKind::DenseClustered => "P+C",
            EncodingKind::Csr => "CSR",
            EncodingKind::BitMask => "BitMask",
        }
    }
}

impl fmt::Display for EncodingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The distinct data structures a stored layer is made of; each can be
/// given its own bits-per-cell and protection (§4.1: "sparse encodings
/// require separate fault injections on each structure").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StructureKind {
    /// Non-zero weight cluster indices (or all indices for P+C).
    Values,
    /// CSR relative column indexes.
    ColIndex,
    /// CSR per-row non-zero counters.
    RowCounter,
    /// BitMask indicator bits.
    Mask,
    /// IdxSync per-block non-zero counters.
    SyncCounter,
    /// The per-layer cluster-value lookup table.
    Centroids,
}

impl StructureKind {
    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            StructureKind::Values => "weight values",
            StructureKind::ColIndex => "column index",
            StructureKind::RowCounter => "row counter",
            StructureKind::Mask => "bitmask",
            StructureKind::SyncCounter => "idxsync counters",
            StructureKind::Centroids => "centroids",
        }
    }
}

impl fmt::Display for StructureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Mask bits per IdxSync block: 128 bytes of bitmask, matching the paper's
/// 128-byte-aligned block structure (§3.3, Fig. 4).
pub const IDXSYNC_BLOCK_BITS: usize = 128 * 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_names_match_paper() {
        assert_eq!(EncodingKind::DenseClustered.to_string(), "P+C");
        assert_eq!(EncodingKind::Csr.to_string(), "CSR");
        assert_eq!(EncodingKind::BitMask.to_string(), "BitMask");
    }

    #[test]
    fn structure_names_are_distinct() {
        let all = [
            StructureKind::Values,
            StructureKind::ColIndex,
            StructureKind::RowCounter,
            StructureKind::Mask,
            StructureKind::SyncCounter,
            StructureKind::Centroids,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
