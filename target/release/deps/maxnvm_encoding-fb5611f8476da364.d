/root/repo/target/release/deps/maxnvm_encoding-fb5611f8476da364.d: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage/mod.rs crates/encoding/src/storage/cache.rs crates/encoding/src/storage/chip.rs crates/encoding/src/storage/codec.rs crates/encoding/src/storage/layer.rs crates/encoding/src/storage/model.rs crates/encoding/src/storage/scheme.rs crates/encoding/src/storage/structure.rs

/root/repo/target/release/deps/libmaxnvm_encoding-fb5611f8476da364.rlib: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage/mod.rs crates/encoding/src/storage/cache.rs crates/encoding/src/storage/chip.rs crates/encoding/src/storage/codec.rs crates/encoding/src/storage/layer.rs crates/encoding/src/storage/model.rs crates/encoding/src/storage/scheme.rs crates/encoding/src/storage/structure.rs

/root/repo/target/release/deps/libmaxnvm_encoding-fb5611f8476da364.rmeta: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage/mod.rs crates/encoding/src/storage/cache.rs crates/encoding/src/storage/chip.rs crates/encoding/src/storage/codec.rs crates/encoding/src/storage/layer.rs crates/encoding/src/storage/model.rs crates/encoding/src/storage/scheme.rs crates/encoding/src/storage/structure.rs

crates/encoding/src/lib.rs:
crates/encoding/src/bitmask.rs:
crates/encoding/src/cluster.rs:
crates/encoding/src/csr.rs:
crates/encoding/src/dense.rs:
crates/encoding/src/estimate.rs:
crates/encoding/src/quantize.rs:
crates/encoding/src/storage/mod.rs:
crates/encoding/src/storage/cache.rs:
crates/encoding/src/storage/chip.rs:
crates/encoding/src/storage/codec.rs:
crates/encoding/src/storage/layer.rs:
crates/encoding/src/storage/model.rs:
crates/encoding/src/storage/scheme.rs:
crates/encoding/src/storage/structure.rs:
