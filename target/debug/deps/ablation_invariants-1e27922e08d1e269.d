/root/repo/target/debug/deps/ablation_invariants-1e27922e08d1e269.d: tests/ablation_invariants.rs

/root/repo/target/debug/deps/ablation_invariants-1e27922e08d1e269: tests/ablation_invariants.rs

tests/ablation_invariants.rs:
