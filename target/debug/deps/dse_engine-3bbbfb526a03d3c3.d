/root/repo/target/debug/deps/dse_engine-3bbbfb526a03d3c3.d: crates/bench/benches/dse_engine.rs Cargo.toml

/root/repo/target/debug/deps/libdse_engine-3bbbfb526a03d3c3.rmeta: crates/bench/benches/dse_engine.rs Cargo.toml

crates/bench/benches/dse_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
