/root/repo/target/release/deps/fig5-9a9025f66e6cbe6f.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-9a9025f66e6cbe6f: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
