/root/repo/target/debug/deps/ablations-d3035f2d02889433.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-d3035f2d02889433: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
