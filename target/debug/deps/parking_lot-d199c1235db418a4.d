/root/repo/target/debug/deps/parking_lot-d199c1235db418a4.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-d199c1235db418a4: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
