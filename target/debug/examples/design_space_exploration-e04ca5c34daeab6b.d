/root/repo/target/debug/examples/design_space_exploration-e04ca5c34daeab6b.d: examples/design_space_exploration.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_space_exploration-e04ca5c34daeab6b.rmeta: examples/design_space_exploration.rs Cargo.toml

examples/design_space_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
