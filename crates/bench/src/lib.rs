//! MaxNVM reproduction: benchmark harness binaries (one per paper table/figure).
