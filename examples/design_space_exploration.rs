//! Exhaustive design-space exploration (paper §4.4): sweep every encoding
//! × per-structure bits-per-cell × protection combination for a model and
//! print the landscape — which configurations preserve accuracy, which
//! minimize cells, and where the interesting tensions live.
//!
//! ```sh
//! cargo run --example design_space_exploration
//! ```

//! The second half of the example runs a *concrete* Monte-Carlo sweep on
//! the evaluation engine with the resilience layer enabled: a checkpoint
//! file (kill the process mid-sweep and rerun to resume), a wall-clock
//! deadline via [`CancelToken`], and adaptive early stopping that drops
//! decisively-failing schemes after a handful of trials.

use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_envm::{CellTechnology, SenseAmp};
use maxnvm_faultsim::dse::{explore_spec, minimal_cells, DsePoint};
use maxnvm_faultsim::{
    AccuracyEval, Campaign, CancelToken, CheckpointConfig, DseConfig, EarlyStop, EvalContext,
    ProxyEval, RunControl,
};
use std::time::Duration;

fn main() {
    let spec = zoo::vgg16();
    let tech = CellTechnology::MlcCtt;
    let sa = SenseAmp::paper_default();
    println!(
        "Design space for {} on {} (ITN bound {:.2}%):\n",
        spec.name,
        tech.name(),
        spec.paper.itn_bound * 100.0
    );
    let mut points = explore_spec(&spec, tech, &sa, spec.paper.itn_bound);
    points.sort_by_key(|p| p.cells);
    println!(
        "{:<20} {:>5} {:>5} {:>12} {:>10} {:>6}",
        "scheme", "v-bpc", "m-bpc", "cells(M)", "error", "pass"
    );
    let show = |p: &DsePoint| {
        println!(
            "{:<20} {:>5} {:>5} {:>12.1} {:>9.2}% {:>6}",
            p.scheme.label(),
            p.scheme.bpc.values.bits(),
            p.scheme.bpc.mask.max(p.scheme.bpc.col_index).bits(),
            p.cells as f64 / 1e6,
            p.mean_error * 100.0,
            if p.passes { "yes" } else { "NO" }
        );
    };
    println!("-- ten densest configurations (several fail accuracy!) --");
    for p in points.iter().take(10) {
        show(p);
    }
    println!("\n-- the winner --");
    let best = minimal_cells(&points).expect("something passes");
    show(best);
    let total = points.len();
    let passing = points.iter().filter(|p| p.passes).count();
    println!(
        "\n{passing}/{total} configurations preserve accuracy; the minimal-cell one\n\
         needs {:.1}M cells — {:.1}x fewer than the safest all-SLC dense layout\n\
         ({:.1}M cells).",
        best.cells as f64 / 1e6,
        points
            .iter()
            .filter(|p| p.passes)
            .map(|p| p.cells)
            .max()
            .unwrap() as f64
            / best.cells as f64,
        points
            .iter()
            .filter(|p| p.passes)
            .map(|p| p.cells)
            .max()
            .unwrap() as f64
            / 1e6
    );
    println!("\nKey §4.2 tension on display: the densest configurations store the");
    println!("bitmask or CSR counters in MLC3 *without* protection and fail; adding");
    println!("IdxSync or ECC makes the same densities safe for ~1% extra cells.");

    resilient_concrete_sweep();
}

/// A concrete engine sweep under a [`RunControl`]: checkpointed,
/// deadline-bounded, and adaptively early-stopped.
fn resilient_concrete_sweep() {
    println!("\n== resilient concrete sweep (Monte-Carlo, stand-in layer) ==\n");
    let spec = zoo::vgg12();
    let m = spec.layers[4].sample_matrix(spec.paper.sparsity, 17, 48, 160);
    let layer = ClusteredLayer::from_matrix(&m, 4, 5);
    let eval = ProxyEval::new(vec![layer.reconstruct()], 0.1, 0.9);
    let cfg = DseConfig {
        campaign: Campaign {
            trials: 48,
            seed: 13,
            rate_scale: 120.0,
        },
        itn_bound: 0.02,
    };
    let ctx = EvalContext::new(CellTechnology::MlcCtt, &SenseAmp::paper_default(), 120.0)
        .expect("context");
    let ckpt = std::env::temp_dir().join("maxnvm-dse-example.ckpt");
    let control = RunControl {
        // Kill this process mid-sweep and run the example again: the
        // sweep resumes from the snapshot instead of starting over.
        checkpoint: Some(CheckpointConfig::new(&ckpt).every(256)),
        // A hard wall-clock budget: past the deadline the sweep returns
        // whatever it finished, with the rest checkpointed for resume.
        cancel: CancelToken::with_timeout(Duration::from_secs(600)),
        // Stop a scheme's campaign once its Wilson interval decides the
        // ITN acceptance test either way.
        early_stop: Some(EarlyStop::new(eval.baseline_error(), cfg.itn_bound)),
        ..RunControl::default()
    };
    let points = ctx
        .run_dse_controlled(&[layer], &eval, &cfg, &control)
        .expect("sweep");
    let budget = cfg.campaign.trials * points.len();
    let spent: usize = points.iter().map(|p| p.trials_run).sum();
    let early: usize = points
        .iter()
        .filter(|p| p.trials_run < cfg.campaign.trials)
        .count();
    let best = minimal_cells(&points).expect("something passes");
    println!(
        "{} schemes evaluated; early stopping decided {early} of them before the\n\
         full budget: {spent} trials run instead of {budget} ({:.0}% saved).",
        points.len(),
        (1.0 - spent as f64 / budget as f64) * 100.0
    );
    println!(
        "Winner: {} with {} cells (mean error {:.2}%, {} trials).",
        best.scheme.label(),
        best.cells,
        best.mean_error * 100.0,
        best.trials_run
    );
    let _ = std::fs::remove_file(&ckpt);
}
