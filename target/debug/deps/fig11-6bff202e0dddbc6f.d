/root/repo/target/debug/deps/fig11-6bff202e0dddbc6f.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-6bff202e0dddbc6f: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
