//! A minimal row-major `f32` tensor with the handful of operations the
//! substrate needs: matmul, transpose, im2col/col2im for convolutions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major tensor of `f32` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, len={})", self.shape, self.data.len())
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "empty shape");
        assert!(shape.iter().all(|&d| d > 0), "zero dimension in {shape:?}");
        let n: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "data length vs shape {shape:?}");
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape to {shape:?}");
        self.shape = shape.to_vec();
        self
    }

    /// 2-D element access for matrices.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or indices are out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 on non-matrix");
        self.data[r * self.shape[1] + c]
    }

    /// Matrix multiply: `self (m×k) · rhs (k×n) = (m×n)`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with matching inner dimension.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs not a matrix");
        assert_eq!(rhs.shape.len(), 2, "rhs not a matrix");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        // ikj loop order keeps the inner loop contiguous in both rhs and out.
        for i in 0..m {
            for kk in 0..k {
                let a = self.data[i * k + kk];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[kk * n..(kk + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Tensor::from_vec(&[m, n], out)
    }

    /// Matrix transpose.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose on non-matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out)
    }
}

/// Unfolds an input image `[c, h, w]` into the im2col matrix
/// `[c*kh*kw, out_h*out_w]` for a convolution with the given kernel,
/// stride and zero padding.
///
/// # Panics
///
/// Panics if the input is not 3-D or the output would be empty.
pub fn im2col(
    input: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> (Tensor, usize, usize) {
    assert_eq!(input.shape().len(), 3, "im2col expects [c,h,w]");
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let out_h = (h + 2 * pad - kh) / stride + 1;
    let out_w = (w + 2 * pad - kw) / stride + 1;
    assert!(out_h > 0 && out_w > 0, "empty convolution output");
    let rows = c * kh * kw;
    let cols = out_h * out_w;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.data();
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                for oy in 0..out_h {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..out_w {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[row * cols + oy * out_w + ox] =
                            data[(ci * h + iy as usize) * w + ix as usize];
                    }
                }
            }
        }
    }
    (Tensor::from_vec(&[rows, cols], out), out_h, out_w)
}

/// Folds an im2col-shaped gradient back onto the input image — the adjoint
/// of [`im2col`], used by convolution backprop.
///
/// # Panics
///
/// Panics if `cols`' shape is inconsistent with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let out_h = (h + 2 * pad - kh) / stride + 1;
    let out_w = (w + 2 * pad - kw) / stride + 1;
    assert_eq!(cols.shape(), &[c * kh * kw, out_h * out_w], "col2im shape");
    let mut out = vec![0.0f32; c * h * w];
    let data = cols.data();
    let ncols = out_h * out_w;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                for oy in 0..out_h {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..out_w {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[(ci * h + iy as usize) * w + ix as usize] +=
                            data[row * ncols + oy * out_w + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(&[c, h, w], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at2(2, 1), 6.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0; 6]);
        let b = a.clone().reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: im2col is just a reshape.
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let (cols, oh, ow) = im2col(&input, 1, 1, 1, 0);
        assert_eq!((oh, ow), (2, 2));
        assert_eq!(cols.shape(), &[1, 4]);
        assert_eq!(cols.data(), input.data());
    }

    #[test]
    fn im2col_3x3_geometry() {
        let input = Tensor::zeros(&[3, 8, 8]);
        let (cols, oh, ow) = im2col(&input, 3, 3, 1, 1);
        assert_eq!((oh, ow), (8, 8));
        assert_eq!(cols.shape(), &[3 * 9, 64]);
    }

    #[test]
    fn im2col_convolution_matches_direct() {
        // Convolve a 1x3x3 input with a single 2x2 kernel by both im2col
        // matmul and direct summation.
        let input = Tensor::from_vec(
            &[1, 3, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        );
        let kernel = Tensor::from_vec(&[1, 4], vec![1.0, 0.5, -1.0, 2.0]);
        let (cols, oh, ow) = im2col(&input, 2, 2, 1, 0);
        let out = kernel.matmul(&cols);
        assert_eq!((oh, ow), (2, 2));
        // Direct: out[0,0] = 1*1 + 2*0.5 + 4*(-1) + 5*2 = 8
        assert!((out.data()[0] - 8.0).abs() < 1e-6);
        // out[1,1] (oy=1,ox=1) = 5*1 + 6*0.5 + 8*(-1) + 9*2 = 18
        assert!((out.data()[3] - 18.0).abs() < 1e-6);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop needs.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (c, h, w, kh, kw, stride, pad) = (2, 5, 5, 3, 3, 2, 1);
        let x = Tensor::from_vec(
            &[c, h, w],
            (0..c * h * w).map(|_| rng.gen::<f32>() - 0.5).collect(),
        );
        let (cols, oh, ow) = im2col(&x, kh, kw, stride, pad);
        let y = Tensor::from_vec(
            cols.shape(),
            (0..cols.len()).map(|_| rng.gen::<f32>() - 0.5).collect(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let xt = col2im(&y, c, h, w, kh, kw, stride, pad);
        let rhs: f32 = x.data().iter().zip(xt.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
        let _ = (oh, ow);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_matmul_distributes_over_addition(
            m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in any::<u64>()
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut gen = |r: usize, c: usize| {
                Tensor::from_vec(&[r, c], (0..r * c).map(|_| rng.gen::<f32>() - 0.5).collect())
            };
            let a = gen(m, k);
            let b1 = gen(k, n);
            let b2 = gen(k, n);
            let sum = Tensor::from_vec(
                &[k, n],
                b1.data().iter().zip(b2.data()).map(|(x, y)| x + y).collect(),
            );
            let lhs = a.matmul(&sum);
            let r1 = a.matmul(&b1);
            let r2 = a.matmul(&b2);
            for i in 0..lhs.len() {
                prop_assert!((lhs.data()[i] - (r1.data()[i] + r2.data()[i])).abs() < 1e-4);
            }
        }
    }
}
