//! Trial throughput: per-cell injection with a full decode (the
//! pre-`PreparedLayer` path, still used by the reference arms) vs sparse
//! fault sampling with dirty-region incremental decode, on LeNet5-scale
//! layers at physical (~1e-5) MLC-CTT fault rates.
//!
//! Run with `cargo bench -p maxnvm-bench --bench trial_throughput`.
//! Besides the stdout summary, emits `BENCH_trial_throughput.json` at
//! the workspace root with before/after trials-per-second and the
//! speedup, for CI and regression tracking.

use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{PreparedLayer, StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::campaign::fault_maps;
use rand::SeedableRng;
use std::time::Instant;

/// Trials per second of `trial` over a ~2 s measurement window (one
/// untimed warmup call first).
fn throughput(mut trial: impl FnMut(u64)) -> f64 {
    trial(u64::MAX);
    let start = Instant::now();
    let mut n = 0u64;
    while start.elapsed().as_secs_f64() < 2.0 {
        trial(n);
        n += 1;
    }
    n as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let spec = zoo::lenet5();
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync();
    let stored: Vec<StoredLayer> = spec
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let m = l.sample_matrix(spec.paper.sparsity, 40 + i as u64, 1024, 1024);
            StoredLayer::store(
                &ClusteredLayer::from_matrix(&m, spec.paper.cluster_index_bits, 2),
                &scheme,
            )
        })
        .collect();
    let cells: u64 = stored.iter().map(StoredLayer::total_cells).sum();
    let sa = SenseAmp::paper_default();
    let fault_for = fault_maps(CellTechnology::MlcCtt, &sa);

    let prepared: Vec<PreparedLayer> = stored.iter().map(PreparedLayer::prepare).collect();
    let expected: f64 = prepared
        .iter()
        .map(|p| p.expected_faults(None, &fault_for))
        .sum();

    let before = throughput(|t| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(t);
        for layer in &stored {
            let _ = layer.decode_with_faults(&fault_for, &mut rng);
        }
    });
    let after = throughput(|t| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(t);
        for layer in &prepared {
            let _ = layer.decode_with_faults(&fault_for, &mut rng);
        }
    });
    let speedup = after / before;

    println!(
        "trial_throughput: {} / {}, {cells} cells, {expected:.3} expected faults/trial",
        spec.name,
        scheme.label()
    );
    println!("  before (per-cell inject + full decode):   {before:>10.1} trials/s");
    println!("  after  (sparse sample + dirty re-decode): {after:>10.1} trials/s");
    println!("  speedup: {speedup:.1}x");

    let json = format!(
        "{{\n  \"benchmark\": \"trial_throughput\",\n  \"model\": \"{}\",\n  \"scheme\": \"{}\",\n  \"total_cells\": {cells},\n  \"expected_faults_per_trial\": {expected:.6},\n  \"before_trials_per_sec\": {before:.3},\n  \"after_trials_per_sec\": {after:.3},\n  \"speedup\": {speedup:.3}\n}}\n",
        spec.name,
        scheme.label(),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trial_throughput.json"
    );
    std::fs::write(path, &json).expect("write benchmark JSON");
    println!("wrote {path}");
}
