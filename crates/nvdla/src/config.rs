//! NVDLA baseline configurations (paper Table 3).

use serde::{Deserialize, Serialize};

/// A fixed NVDLA datapath + memory-system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvdlaConfig {
    /// Configuration name ("NVDLA-64", "NVDLA-1024").
    pub name: String,
    /// Number of MAC units.
    pub macs: u32,
    /// Convolutional buffer size (KB).
    pub conv_buffer_kb: u32,
    /// On-chip activation SRAM (KB).
    pub sram_kb: u32,
    /// Clock frequency (GHz).
    pub freq_ghz: f64,
    /// Datapath area (mm², Table 3).
    pub datapath_area_mm2: f64,
    /// Average datapath power while executing (mW) — MACs, buffer,
    /// control. Calibrated so the §5.2 power-reduction factors reproduce.
    pub datapath_power_mw: f64,
    /// SRAM bandwidth (GB/s, Table 3).
    pub sram_bw_gbps: f64,
    /// DRAM read bandwidth available for weights (GB/s, Table 3).
    pub dram_bw_gbps: f64,
    /// LPDDR4 interface/background power while powered (mW, Table 3).
    pub dram_power_mw: f64,
    /// MAC utilization achieved on convolutional layers (dimensionless).
    pub mac_utilization: f64,
}

impl NvdlaConfig {
    /// The resource-constrained NVDLA-64 baseline (Table 3).
    pub fn nvdla_64() -> Self {
        Self {
            name: "NVDLA-64".into(),
            macs: 64,
            conv_buffer_kb: 128,
            sram_kb: 512,
            freq_ghz: 1.0,
            datapath_area_mm2: 0.55,
            datapath_power_mw: 45.0,
            sram_bw_gbps: 6.0,
            dram_bw_gbps: 25.0,
            dram_power_mw: 100.0,
            mac_utilization: 0.8,
        }
    }

    /// The high-performance NVDLA-1024 configuration (Table 3).
    pub fn nvdla_1024() -> Self {
        Self {
            name: "NVDLA-1024".into(),
            macs: 1024,
            conv_buffer_kb: 256,
            sram_kb: 2048,
            freq_ghz: 1.0,
            datapath_area_mm2: 2.4,
            datapath_power_mw: 330.0,
            sram_bw_gbps: 25.0,
            dram_bw_gbps: 25.0,
            dram_power_mw: 200.0,
            mac_utilization: 0.8,
        }
    }

    /// MACs retired per cycle at the configured utilization. NVDLA's MAC
    /// cells each process two int8 multiply-accumulates per cycle in
    /// 8-bit inference mode (the mode the paper's clustered weights use),
    /// so the int8 throughput is twice the nominal MAC count — without
    /// this factor the paper's Table 4 frame rates are unreachable.
    pub fn effective_macs_per_cycle(&self) -> f64 {
        self.macs as f64 * 2.0 * self.mac_utilization
    }

    /// Bytes per cycle deliverable from a link of `gbps` at this clock.
    pub fn bytes_per_cycle(&self, gbps: f64) -> f64 {
        gbps / self.freq_ghz
    }
}

/// DRAM transfer energy (pJ per byte moved), LPDDR4-class.
pub const DRAM_ENERGY_PJ_PER_BYTE: f64 = 40.0;

/// Energy to reload one byte of weights into DRAM from backing storage on
/// wake-up (§5.3's conservative estimate: backing-flash read + DRAM write
/// + link and controller energy).
pub const DRAM_RELOAD_PJ_PER_BYTE: f64 = 600.0;

/// SRAM transfer energy (pJ per byte moved).
pub const SRAM_ENERGY_PJ_PER_BYTE: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_parameters() {
        let small = NvdlaConfig::nvdla_64();
        assert_eq!(small.macs, 64);
        assert_eq!(small.conv_buffer_kb, 128);
        assert_eq!(small.sram_kb, 512);
        assert_eq!(small.dram_power_mw, 100.0);
        let big = NvdlaConfig::nvdla_1024();
        assert_eq!(big.macs, 1024);
        assert_eq!(big.sram_kb, 2048);
        assert_eq!(big.dram_power_mw, 200.0);
        assert!(big.datapath_power_mw > small.datapath_power_mw);
    }

    #[test]
    fn effective_throughput() {
        let c = NvdlaConfig::nvdla_1024();
        // 1024 MAC cells x 2 int8 ops x 0.8 utilization.
        assert!((c.effective_macs_per_cycle() - 1638.4).abs() < 1e-9);
        assert!((c.bytes_per_cycle(25.0) - 25.0).abs() < 1e-9);
    }
}
