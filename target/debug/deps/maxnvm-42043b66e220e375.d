/root/repo/target/debug/deps/maxnvm-42043b66e220e375.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm-42043b66e220e375.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
