/root/repo/target/debug/deps/fig2-6c950ef63c48a678.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-6c950ef63c48a678.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
