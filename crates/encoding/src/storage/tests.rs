use super::*;
use crate::cluster::ClusteredLayer;
use crate::{EncodingKind, StructureKind};
use maxnvm_dnn::network::LayerMatrix;
use maxnvm_envm::{CellModel, CellTechnology, FaultMap, MlcConfig};
use rand::SeedableRng;
use std::sync::Arc;

fn clustered(rows: usize, cols: usize, sparsity: f64, seed: u64) -> ClusteredLayer {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| {
            if rng.gen::<f64>() < sparsity {
                0.0
            } else {
                rng.gen::<f32>() + 0.1
            }
        })
        .collect();
    ClusteredLayer::from_matrix(&LayerMatrix::new("t", rows, cols, data), 4, seed)
}

#[test]
fn clean_round_trip_all_encodings_all_bpc() {
    let c = clustered(12, 40, 0.6, 1);
    let want = c.reconstruct();
    for enc in EncodingKind::ALL {
        for bpc in MlcConfig::ALL {
            for idx_sync in [false, true] {
                for ecc in [EccScope::None, EccScope::Metadata, EccScope::All] {
                    let mut scheme = StorageScheme::uniform(enc, bpc);
                    scheme.idx_sync = idx_sync;
                    scheme.ecc = ecc;
                    let stored = StoredLayer::store(&c, &scheme);
                    let (out, stats) = stored.decode_clean();
                    assert_eq!(out.data, want.data, "{enc} {bpc} sync={idx_sync}");
                    assert_eq!(stats.cell_faults, 0);
                    assert_eq!(stats.ecc_uncorrectable, 0);
                }
            }
        }
    }
}

#[test]
fn cell_counts_shrink_with_more_bits_per_cell() {
    let c = clustered(20, 64, 0.7, 2);
    let slc = StoredLayer::store(
        &c,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::SLC),
    );
    let mlc3 = StoredLayer::store(
        &c,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3),
    );
    assert!(mlc3.total_cells() < slc.total_cells());
    // Roughly 3x fewer (modulo rounding and the SLC centroid table).
    let ratio = slc.total_cells() as f64 / mlc3.total_cells() as f64;
    assert!(ratio > 2.0 && ratio < 3.5, "ratio {ratio}");
}

#[test]
fn ecc_adds_modest_cell_overhead() {
    let c = clustered(32, 128, 0.6, 3);
    let plain = StoredLayer::store(
        &c,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC2),
    );
    let ecc = StoredLayer::store(
        &c,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC2).with_ecc(),
    );
    assert!(ecc.total_cells() > plain.total_cells());
    let overhead = ecc.total_cells() as f64 / plain.total_cells() as f64 - 1.0;
    assert!(overhead < 0.01, "ECC overhead {overhead} should be <1%");
}

#[test]
fn ecc_corrects_injected_faults() {
    // Inject faults into the ECC-protected CSR row counters only, at a
    // rate that makes single-fault codewords common. Every trial whose
    // codewords all decoded (no DetectedDouble) must reconstruct the
    // exact original — single faults were corrected, not just detected.
    let c = clustered(16, 64, 0.5, 4);
    let scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3).with_ecc();
    let stored = StoredLayer::store(&c, &scheme);
    let want = c.reconstruct();
    let cell = CellTechnology::MlcCtt;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    // ~38 row-counter cells at a ~5e-6 mean rate; scale to λ≈0.28
    // faults/codeword so single-error corrections are common while
    // multi-fault codewords stay rare.
    let fault_for = |bpc: MlcConfig| Arc::new(cell.cell_model(bpc).fault_map().scaled(1400.0));
    let mut corrected_trials = 0;
    for _ in 0..60 {
        let (out, stats) =
            stored.decode_with_isolated_faults(StructureKind::RowCounter, &fault_for, &mut rng);
        // A *single* injected fault is always corrected exactly; with
        // three or more faults in one codeword SEC-DED can miscorrect
        // while reporting success — faithful code behaviour, so only
        // the single-fault trials carry the exactness guarantee.
        if stats.cell_faults == 1 {
            assert_eq!(stats.ecc_corrected, 1, "single fault must be corrected");
            assert_eq!(out.data, want.data, "corrected trial must be exact");
            corrected_trials += 1;
        }
    }
    assert!(
        corrected_trials > 2,
        "ECC barely exercised: {corrected_trials}"
    );
}

#[test]
fn isolated_injection_touches_only_target() {
    let c = clustered(8, 1024, 0.5, 6);
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3);
    let stored = StoredLayer::store(&c, &scheme);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    // Saturating fault map on Values only: mask decodes cleanly, so
    // every non-zero position is still non-zero (values corrupted).
    let always = |bpc: MlcConfig| {
        let n = bpc.levels();
        let mut up = vec![1.0; n];
        let mut down = vec![0.0; n];
        up[n - 1] = 0.0;
        down[n - 1] = 1.0;
        Arc::new(FaultMap::new(up, down))
    };
    let (out, stats) = stored.decode_with_isolated_faults(StructureKind::Values, &always, &mut rng);
    assert!(stats.cell_faults > 0);
    let want = c.reconstruct();
    // Mask untouched: every true-zero position stays zero (a corrupted
    // value can *become* the zero cluster, but never the reverse).
    for (a, b) in out.data.iter().zip(&want.data) {
        if *b == 0.0 {
            assert_eq!(*a, 0.0, "zero position gained a value: mask corrupted?");
        }
    }
    // ...but values differ.
    assert_ne!(out.data, want.data);
}

#[test]
fn model_storage_aggregates_layers() {
    let a = clustered(8, 32, 0.5, 30);
    let b = clustered(4, 64, 0.7, 31);
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC2);
    let stored = ModelStorage::store(&[a.clone(), b.clone()], &scheme);
    assert_eq!(stored.layers().len(), 2);
    assert_eq!(
        stored.total_cells(),
        stored.layers()[0].total_cells() + stored.layers()[1].total_cells()
    );
    let (mats, stats) = stored.decode_clean();
    assert_eq!(mats[0].data, a.reconstruct().data);
    assert_eq!(mats[1].data, b.reconstruct().data);
    assert_eq!(stats.cell_faults, 0);
}

#[test]
fn programmed_chip_decodes_deterministically() {
    let c = clustered(16, 256, 0.5, 21);
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3);
    let stored = StoredLayer::store(&c, &scheme);
    // A deliberately noisy cell so chips actually differ.
    let cell_for = |bpc: MlcConfig| {
        let levels = (0..bpc.levels())
            .map(|i| {
                maxnvm_envm::LevelDistribution::new(
                    i as f64 / (bpc.levels() - 1).max(1) as f64,
                    0.06,
                )
            })
            .collect();
        CellModel::new(levels)
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let chip_a = stored.program_chip(&cell_for, &mut rng);
    let chip_b = stored.program_chip(&cell_for, &mut rng);
    // Same chip: identical decodes (permanent faults).
    assert_eq!(chip_a.decode(), chip_a.decode());
    // Different chips: different fault maps (with these rates, surely).
    assert!(chip_a.fault_count() > 0);
    assert_ne!(chip_a.decode().0, chip_b.decode().0);
    // Reported fault counts match the cell-level disagreement.
    assert_eq!(chip_a.decode().1.cell_faults, chip_a.fault_count());
}

#[test]
fn perfect_chip_round_trips() {
    let c = clustered(8, 64, 0.5, 22);
    let scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC2);
    let stored = StoredLayer::store(&c, &scheme);
    // Ultra-tight levels: programming never misses.
    let cell_for = |bpc: MlcConfig| {
        let levels = (0..bpc.levels())
            .map(|i| {
                maxnvm_envm::LevelDistribution::new(
                    i as f64 / (bpc.levels() - 1).max(1) as f64,
                    1e-6,
                )
            })
            .collect();
        CellModel::new(levels)
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let chip = stored.program_chip(&cell_for, &mut rng);
    assert_eq!(chip.fault_count(), 0);
    assert_eq!(chip.decode().0.data, c.reconstruct().data);
}

#[test]
fn scheme_labels_match_paper() {
    assert_eq!(
        StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3)
            .with_idx_sync()
            .label(),
        "BitM+IdxSync"
    );
    assert_eq!(
        StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3)
            .with_ecc()
            .label(),
        "CSR+ECC"
    );
    assert_eq!(
        StorageScheme::uniform(EncodingKind::DenseClustered, MlcConfig::MLC2).label(),
        "P+C"
    );
}

#[test]
fn max_bpc_reports_densest_structure() {
    let mut scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC2);
    scheme.bpc.mask = MlcConfig::SLC;
    scheme.bpc.values = MlcConfig::MLC3;
    assert_eq!(scheme.max_bpc(), MlcConfig::MLC3);
}

#[test]
fn per_structure_bpc_is_respected() {
    let c = clustered(8, 64, 0.5, 8);
    let mut scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::SLC);
    scheme.bpc.values = MlcConfig::MLC3;
    let stored = StoredLayer::store(&c, &scheme);
    for s in stored.structures() {
        match s.kind {
            StructureKind::Values => assert_eq!(s.bpc, MlcConfig::MLC3),
            _ => assert_eq!(s.bpc, MlcConfig::SLC),
        }
    }
    let (out, _) = stored.decode_clean();
    assert_eq!(out.data, c.reconstruct().data);
}

#[test]
fn injection_codec_matches_manual_injection_rng_stream() {
    // The unified codec core must consume the RNG in exactly the order
    // the original two-pass implementation did (inject everything, then
    // decode): one draw per cell, structures in storage order. Replaying
    // the same seed through a hand-rolled two-pass injection must yield
    // the identical fault pattern.
    let c = clustered(10, 96, 0.6, 40);
    let scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3);
    let stored = StoredLayer::store(&c, &scheme);
    let cell = CellTechnology::MlcCtt;
    let fault_for = |bpc: MlcConfig| Arc::new(cell.cell_model(bpc).fault_map().scaled(2000.0));

    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let (via_codec, stats) = stored.decode_with_faults(&fault_for, &mut rng);

    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let mut manual_faults = 0usize;
    let injected: Vec<Vec<u8>> = stored
        .structures()
        .iter()
        .map(|s| {
            let map = fault_for(s.bpc);
            let mut cells = s.cells.clone();
            for cl in cells.iter_mut() {
                let read = map.sample(*cl as usize, &mut rng);
                if read != *cl as usize {
                    *cl = read as u8;
                    manual_faults += 1;
                }
            }
            cells
        })
        .collect();
    let (via_fixed, _) = stored.decode_with_codec(&mut FixedReadCodec::new(&injected));
    assert!(stats.cell_faults > 0, "fault rate too low to exercise");
    assert_eq!(stats.cell_faults, manual_faults);
    assert_eq!(via_codec.data, via_fixed.data);
}

/// An adjacent level guaranteed to differ from `level`.
fn adjacent_flip(level: u8, levels: usize) -> u8 {
    if (level as usize) + 1 < levels {
        level + 1
    } else {
        level - 1
    }
}

#[test]
fn prepared_decode_matches_full_decode_under_identical_flips() {
    use rand::Rng;
    let c = clustered(12, 256, 0.6, 70);
    let mut schemes = Vec::new();
    for enc in EncodingKind::ALL {
        for ecc in [EccScope::None, EccScope::Metadata, EccScope::All] {
            let mut s = StorageScheme::uniform(enc, MlcConfig::MLC2);
            s.ecc = ecc;
            schemes.push(s.clone());
            if enc == EncodingKind::BitMask {
                schemes.push(s.clone().with_idx_sync().with_sync_block_bits(128));
            }
        }
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(71);
    for scheme in &schemes {
        let stored = StoredLayer::store(&c, scheme);
        let prepared = PreparedLayer::prepare(&stored);
        for trial in 0..40 {
            // 0..=2 flips per structure: exercises the clean-copy,
            // entry-patch, row/block re-walk, and full-fallback paths.
            let flips: Vec<Vec<(u32, u8)>> = stored
                .structures()
                .iter()
                .map(|s| {
                    let n = s.cells.len();
                    if n == 0 {
                        return Vec::new();
                    }
                    let k = rng.gen_range(0..3usize.min(n));
                    let mut f: Vec<(u32, u8)> = (0..k)
                        .map(|_| {
                            let pos = rng.gen_range(0..n);
                            let lvl = s.cells[pos];
                            (pos as u32, adjacent_flip(lvl, s.bpc.levels()))
                        })
                        .collect();
                    f.sort_unstable_by_key(|&(p, _)| p);
                    f.dedup_by_key(|x| x.0);
                    f
                })
                .collect();
            let (fast, fast_stats) = prepared.decode_flips(&flips);
            let injected: Vec<Vec<u8>> = stored
                .structures()
                .iter()
                .zip(&flips)
                .map(|(s, f)| {
                    let mut cells = s.cells.clone();
                    for &(p, new) in f {
                        cells[p as usize] = new;
                    }
                    cells
                })
                .collect();
            let (full, full_stats) = stored.decode_with_codec(&mut FixedReadCodec::new(&injected));
            let label = scheme.label();
            assert_eq!(fast.data, full.data, "{label} trial {trial}");
            assert_eq!(
                fast_stats.ecc_corrected, full_stats.ecc_corrected,
                "{label}"
            );
            assert_eq!(
                fast_stats.ecc_uncorrectable, full_stats.ecc_uncorrectable,
                "{label}"
            );
            assert_eq!(
                fast_stats.cell_faults,
                flips.iter().map(Vec::len).sum::<usize>()
            );
        }
    }
}

#[test]
fn deltas_flips_reproduce_decode_flips_bitwise() {
    use rand::Rng;
    // Applying the sparse delta onto the clean matrix must reproduce the
    // materialized faulty decode bit for bit — across every encoding,
    // ECC scope, and the IdxSync variant, including trials that hit the
    // full-decode fallback (counter faults).
    let c = clustered(12, 256, 0.6, 70);
    let mut schemes = Vec::new();
    for enc in EncodingKind::ALL {
        for ecc in [EccScope::None, EccScope::Metadata, EccScope::All] {
            let mut s = StorageScheme::uniform(enc, MlcConfig::MLC2);
            s.ecc = ecc;
            schemes.push(s.clone());
            if enc == EncodingKind::BitMask {
                schemes.push(s.clone().with_idx_sync().with_sync_block_bits(128));
            }
        }
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(73);
    for scheme in &schemes {
        let stored = StoredLayer::store(&c, scheme);
        let prepared = PreparedLayer::prepare(&stored);
        for trial in 0..40 {
            let flips: Vec<Vec<(u32, u8)>> = stored
                .structures()
                .iter()
                .map(|s| {
                    let n = s.cells.len();
                    if n == 0 {
                        return Vec::new();
                    }
                    let k = rng.gen_range(0..3usize.min(n));
                    let mut f: Vec<(u32, u8)> = (0..k)
                        .map(|_| {
                            let pos = rng.gen_range(0..n);
                            let lvl = s.cells[pos];
                            (pos as u32, adjacent_flip(lvl, s.bpc.levels()))
                        })
                        .collect();
                    f.sort_unstable_by_key(|&(p, _)| p);
                    f.dedup_by_key(|x| x.0);
                    f
                })
                .collect();
            let (materialized, m_stats) = prepared.decode_flips(&flips);
            let (deltas, d_stats) = prepared.deltas_flips(&flips);
            let label = scheme.label();
            assert_eq!(m_stats, d_stats, "{label} trial {trial}");
            let clean = &prepared.clean().matrix.data;
            let mut applied = clean.clone();
            for d in &deltas {
                applied[d.slot as usize] = d.value;
            }
            let same = applied
                .iter()
                .zip(&materialized.data)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{label} trial {trial}: delta application drifted");
            // Deltas are slot-sorted, unique, and all genuinely differ
            // from the clean decode.
            for w in deltas.windows(2) {
                assert!(w[0].slot < w[1].slot, "{label}: deltas not sorted");
            }
            for d in &deltas {
                assert_ne!(
                    d.value.to_bits(),
                    clean[d.slot as usize].to_bits(),
                    "{label}: no-op delta"
                );
            }
        }
    }
}

#[test]
fn sampled_deltas_consume_rng_like_materialized_decode() {
    // Same seed → the delta path and the materialized path must see the
    // identical fault draw, so applying one's deltas reproduces the
    // other's matrix.
    let c = clustered(16, 128, 0.6, 80);
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync();
    let stored = StoredLayer::store(&c, &scheme);
    let prepared = PreparedLayer::prepare(&stored);
    let cell = CellTechnology::MlcCtt;
    let fault_for = |bpc: MlcConfig| Arc::new(cell.cell_model(bpc).fault_map().scaled(2000.0));
    for seed in 0..50u64 {
        let mut ra = rand::rngs::StdRng::seed_from_u64(seed);
        let (mat, ms) = prepared.decode_with_faults(&fault_for, &mut ra);
        let mut rb = rand::rngs::StdRng::seed_from_u64(seed);
        let (deltas, ds) = prepared.deltas_with_faults(&fault_for, &mut rb);
        assert_eq!(ms, ds, "seed {seed}");
        let mut applied = prepared.clean().matrix.data.clone();
        for d in &deltas {
            applied[d.slot as usize] = d.value;
        }
        let same = applied
            .iter()
            .zip(&mat.data)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "seed {seed}");
    }
}

#[test]
fn prepared_sampled_decode_is_deterministic_and_calibrated() {
    let c = clustered(16, 128, 0.6, 80);
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync();
    let stored = StoredLayer::store(&c, &scheme);
    let prepared = PreparedLayer::prepare(&stored);
    let cell = CellTechnology::MlcCtt;
    let fault_for = |bpc: MlcConfig| Arc::new(cell.cell_model(bpc).fault_map().scaled(2000.0));
    let run = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        prepared.decode_with_faults(&fault_for, &mut rng)
    };
    assert_eq!(run(1), run(1), "same seed must reproduce the trial");
    // Mean observed faults across trials tracks the exact expectation.
    let expected = prepared.expected_faults(None, &fault_for);
    assert!(expected > 0.5, "rate too low to exercise: {expected}");
    let trials = 400;
    let total: usize = (0..trials).map(|t| run(t).1.cell_faults).sum();
    let mean = total as f64 / trials as f64;
    let rel = (mean - expected).abs() / expected;
    assert!(rel < 0.15, "mean {mean} vs expected {expected}");
    // The exact accounting agrees with the layer-level variant.
    let direct = stored.expected_faults_in(None, &fault_for);
    assert!((expected - direct).abs() < 1e-9);
}

#[test]
fn clean_sparse_decode_matches_dense_build_all_encodings() {
    use maxnvm_dnn::sparse::SparseMatrix;
    // The run-walk-built sparse clean decode must equal the from_dense
    // build exactly — same entries, same bits — for every encoding,
    // bpc, and alignment variant, including a fully-zero layer.
    for (rows, cols, sparsity, seed) in [(12, 40, 0.6, 1), (6, 32, 1.0, 2), (5, 48, 0.0, 3)] {
        let c = clustered(rows, cols, sparsity, seed);
        for enc in EncodingKind::ALL {
            for bpc in [MlcConfig::SLC, MlcConfig::MLC3] {
                for idx_sync in [false, true] {
                    let mut scheme = StorageScheme::uniform(enc, bpc);
                    scheme.idx_sync = idx_sync;
                    let stored = StoredLayer::store(&c, &scheme);
                    let clean = CleanLayerDecode::of(&stored);
                    let want = SparseMatrix::from_dense(
                        clean.matrix.rows,
                        clean.matrix.cols,
                        &clean.matrix.data,
                    );
                    assert_eq!(clean.sparse, want, "{} sync={idx_sync}", scheme.label());
                    let expect_nnz = clean.matrix.data.iter().filter(|v| **v != 0.0).count();
                    assert_eq!(clean.sparse.nnz(), expect_nnz);
                }
            }
        }
    }
}

#[test]
fn sampled_chip_flips_reproduce_programmed_chip() {
    // `sample_chip_flips` must consume the RNG exactly as `program_chip`
    // does: same seed → the flip list is precisely the cells where the
    // programmed chip disagrees with the stored levels, so decoding the
    // flips reproduces the chip's decode bit for bit.
    let c = clustered(16, 256, 0.5, 21);
    for scheme in [
        StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync(),
        StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC2).with_ecc(),
        StorageScheme::uniform(EncodingKind::DenseClustered, MlcConfig::MLC2),
    ] {
        let stored = StoredLayer::store(&c, &scheme);
        let cell_for = |bpc: MlcConfig| {
            let levels = (0..bpc.levels())
                .map(|i| {
                    maxnvm_envm::LevelDistribution::new(
                        i as f64 / (bpc.levels() - 1).max(1) as f64,
                        0.06,
                    )
                })
                .collect();
            CellModel::new(levels)
        };
        for seed in 0..10u64 {
            let mut ra = rand::rngs::StdRng::seed_from_u64(seed);
            let chip = stored.program_chip(&cell_for, &mut ra);
            let mut rb = rand::rngs::StdRng::seed_from_u64(seed);
            let flips = stored.sample_chip_flips(&cell_for, &mut rb);
            let label = scheme.label();
            assert_eq!(flips.len(), stored.structures().len(), "{label}");
            assert_eq!(
                flips.iter().map(Vec::len).sum::<usize>(),
                chip.fault_count(),
                "{label} seed {seed}"
            );
            let injected: Vec<Vec<u8>> = stored
                .structures()
                .iter()
                .zip(&flips)
                .map(|(s, f)| {
                    let mut cells = s.cells.clone();
                    for &(p, new) in f {
                        cells[p as usize] = new;
                    }
                    cells
                })
                .collect();
            let (via_flips, flip_stats) =
                stored.decode_with_codec(&mut FixedReadCodec::new(&injected));
            let (via_chip, chip_stats) = chip.decode();
            assert_eq!(via_flips.data, via_chip.data, "{label} seed {seed}");
            assert_eq!(
                flip_stats.ecc_corrected, chip_stats.ecc_corrected,
                "{label}"
            );
            assert_eq!(
                flip_stats.ecc_uncorrectable, chip_stats.ecc_uncorrectable,
                "{label}"
            );
            // And the delta path over the same flips stays bitwise exact,
            // closing the chain chip → flips → deltas the fault-sim engine
            // relies on.
            let prepared = PreparedLayer::prepare(&stored);
            let (deltas, d_stats) = prepared.deltas_flips(&flips);
            assert_eq!(d_stats.cell_faults, chip.fault_count(), "{label}");
            let mut applied = prepared.clean().matrix.data.clone();
            for d in &deltas {
                applied[d.slot as usize] = d.value;
            }
            let same = applied
                .iter()
                .zip(&via_chip.data)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{label} seed {seed}: chip deltas drifted");
        }
    }
}

#[test]
fn clean_decode_cache_shares_across_protection() {
    let c = clustered(10, 64, 0.5, 90);
    let cache = EncodeCache::new();
    let plain = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::SLC);
    let dense_ecc = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3).with_ecc();
    let a = cache.store_layer(0, &c, &plain);
    let b = cache.store_layer(0, &c, &dense_ecc);
    let da = cache.clean_decode(0, &a);
    let db = cache.clean_decode(0, &b);
    assert!(
        Arc::ptr_eq(&da, &db),
        "schemes sharing raw streams must share the clean decode"
    );
    assert_eq!(da.matrix.data, a.decode_clean().0.data);
    assert_eq!(da.matrix.data, c.reconstruct().data);
    // The shared decode feeds PreparedLayer without recomputation.
    let pb = PreparedLayer::new(&b, db);
    assert_eq!(pb.clean().matrix.data, c.reconstruct().data);
}

#[test]
fn encode_cache_shares_raw_encodes_across_protection() {
    let layers = [clustered(8, 64, 0.5, 50), clustered(12, 32, 0.6, 51)];
    let cache = EncodeCache::new();
    assert!(cache.is_empty());
    // Nine CSR schemes differing only in bpc/ECC: one raw encode per layer.
    for bpc in MlcConfig::ALL {
        for ecc in [EccScope::None, EccScope::Metadata, EccScope::All] {
            let mut scheme = StorageScheme::uniform(EncodingKind::Csr, bpc);
            scheme.ecc = ecc;
            for (i, l) in layers.iter().enumerate() {
                let cached = cache.store_layer(i, l, &scheme);
                let direct = StoredLayer::store(l, &scheme);
                assert_eq!(cached, direct, "cache must not change results");
            }
        }
    }
    assert_eq!(cache.len(), 2, "one raw CSR encode per layer");
    // BitMask with and without IdxSync are distinct raw encodes...
    let plain = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::SLC);
    let sync = plain.clone().with_idx_sync().with_sync_block_bits(64);
    cache.store_layer(0, &layers[0], &plain);
    cache.store_layer(0, &layers[0], &sync);
    assert_eq!(cache.len(), 4);
    // ...but non-BitMask schemes ignore IdxSync in the key.
    let csr_sync = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::SLC).with_idx_sync();
    cache.store_layer(0, &layers[0], &csr_sync);
    assert_eq!(cache.len(), 4, "IdxSync is inert for CSR");
}

#[test]
fn cached_store_decodes_identically_with_faults() {
    let c = clustered(8, 128, 0.55, 60);
    let cache = EncodeCache::new();
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC2)
        .with_idx_sync()
        .with_sync_block_bits(128)
        .with_ecc();
    let cached = cache.store_layer(0, &c, &scheme);
    let direct = StoredLayer::store(&c, &scheme);
    let cell = CellTechnology::MlcCtt;
    let fault_for = |bpc: MlcConfig| Arc::new(cell.cell_model(bpc).fault_map().scaled(500.0));
    let mut rng_a = rand::rngs::StdRng::seed_from_u64(9);
    let mut rng_b = rand::rngs::StdRng::seed_from_u64(9);
    assert_eq!(
        cached.decode_with_faults(&fault_for, &mut rng_a),
        direct.decode_with_faults(&fault_for, &mut rng_b),
    );
}

fn disk_cache_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("maxnvm-diskcache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disk_cache_round_trips_streams_and_decodes_exactly() {
    let dir = disk_cache_dir("roundtrip");
    let c = clustered(10, 48, 0.6, 11);
    for enc in EncodingKind::ALL {
        for idx_sync in [false, true] {
            let mut scheme = StorageScheme::uniform(enc, MlcConfig::MLC2);
            scheme.idx_sync = idx_sync;
            let disk = super::diskcache::EncodeDiskCache::new(&dir);
            let encoded = EncodedStreams::encode(&c, &scheme);
            disk.store_streams(0, &c, &scheme, &encoded);
            let loaded = disk
                .load_streams(0, &c, &scheme)
                .expect("stored streams must load");
            assert_eq!(loaded, encoded, "{enc} sync={idx_sync}");
            let stored = StoredLayer::store_encoded(&c, &scheme, &encoded);
            let decode = CleanLayerDecode::of(&stored);
            disk.store_decode(0, &c, &scheme, &decode);
            let loaded = disk
                .load_decode(0, &c, &scheme)
                .expect("stored decode must load");
            assert_eq!(loaded, decode, "{enc} sync={idx_sync}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_cache_treats_corruption_as_a_miss_and_self_heals() {
    let dir = disk_cache_dir("corrupt");
    let c = clustered(6, 32, 0.5, 12);
    let scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::SLC);
    let disk = super::diskcache::EncodeDiskCache::new(&dir);
    let encoded = EncodedStreams::encode(&c, &scheme);
    disk.store_streams(0, &c, &scheme, &encoded);
    // Mangle every cached entry in several ways; none may panic, all
    // must read back as a miss.
    let entry = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "mnvc"))
        .expect("one cached entry");
    let original = std::fs::read_to_string(&entry).expect("readable");
    for bad in [
        "",
        "garbage",
        "maxnvm-encode-cache v999 streams\nentries 4\n",
        &original[..original.len() - 2], // end marker's count cut off
        &original[..original.len() / 2], // torn write
        &original.replace("end", "End"),
    ] {
        std::fs::write(&entry, bad).expect("writable");
        assert!(
            disk.load_streams(0, &c, &scheme).is_none(),
            "corrupt entry {bad:?} must miss"
        );
    }
    // A corrupt-token bit width must not trip the bit-buffer assertion.
    let hexmangled: String = original
        .lines()
        .map(|l| {
            if l.starts_with("stream ") {
                let mut toks: Vec<String> = l.split(' ').map(str::to_string).collect();
                let last = toks.len() - 1;
                toks[last] = "ffffffffffffffff".to_string();
                toks.join(" ") + "\n"
            } else {
                l.to_string() + "\n"
            }
        })
        .collect();
    std::fs::write(&entry, &hexmangled).expect("writable");
    let _ = disk.load_streams(0, &c, &scheme); // may hit or miss, must not panic
                                               // Self-heal: the writer path replaces the mangled entry.
    std::fs::write(&entry, "garbage").expect("writable");
    let cache = EncodeCache::new().with_disk(super::diskcache::EncodeDiskCache::new(&dir));
    let via_cache = cache.streams(0, &c, &scheme);
    assert_eq!(*via_cache, encoded);
    let healed = super::diskcache::EncodeDiskCache::new(&dir);
    assert_eq!(
        healed.load_streams(0, &c, &scheme).expect("healed entry"),
        encoded
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_cache_counts_hits_misses_and_bytes() {
    let dir = disk_cache_dir("stats");
    let c = clustered(6, 32, 0.5, 13);
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3);
    let cold = EncodeCache::new().with_disk(super::diskcache::EncodeDiskCache::new(&dir));
    let stored = cold.store_layer(0, &c, &scheme);
    let _ = cold.clean_decode_cached(0, &c, &stored);
    let s = cold.stats();
    assert_eq!(s.disk_hits, 0, "cold cache cannot hit");
    assert_eq!(s.disk_misses, 2, "one streams miss, one decode miss");
    assert!(s.bytes_written > 0);
    assert!((0.0..=1.0).contains(&s.hit_rate()));
    let warm = EncodeCache::new().with_disk(super::diskcache::EncodeDiskCache::new(&dir));
    let stored = warm.store_layer(0, &c, &scheme);
    let _ = warm.clean_decode_cached(0, &c, &stored);
    let s = warm.stats();
    assert_eq!(s.disk_hits, 2, "warm cache serves both artifacts");
    assert_eq!(s.disk_misses, 0);
    assert!(s.bytes_read > 0);
    assert_eq!(s.bytes_written, 0, "warm run rewrites nothing");
    assert_eq!(s.hit_rate(), 1.0);
    // In-memory reuse does not touch the disk counters.
    let _ = warm.store_layer(0, &c, &scheme);
    assert_eq!(warm.stats(), s);
    // A cache without a disk layer reports all zeros.
    assert_eq!(EncodeCache::new().stats(), EncodeCacheStats::default());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_cache_clear_evicts_everything() {
    let dir = disk_cache_dir("clear");
    let c = clustered(6, 32, 0.5, 14);
    let scheme = StorageScheme::uniform(EncodingKind::DenseClustered, MlcConfig::MLC2);
    let disk = super::diskcache::EncodeDiskCache::new(&dir);
    disk.store_streams(0, &c, &scheme, &EncodedStreams::encode(&c, &scheme));
    assert!(disk.load_streams(0, &c, &scheme).is_some());
    disk.clear().expect("clear succeeds");
    assert!(disk.load_streams(0, &c, &scheme).is_none());
    // Clearing a never-created directory is fine too.
    super::diskcache::EncodeDiskCache::new(dir.join("nope"))
        .clear()
        .expect("missing dir is not an error");
    let _ = std::fs::remove_dir_all(&dir);
}
