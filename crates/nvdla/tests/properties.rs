//! Property tests for the accelerator model: roofline monotonicity and
//! accounting invariants across random workloads.

use maxnvm_dnn::zoo::{LayerKind, LayerSpec, ModelSpec, PaperModelInfo};
use maxnvm_nvdla::perf::evaluate;
use maxnvm_nvdla::{NvdlaConfig, WeightSource};
use proptest::prelude::*;

fn random_model(layers: Vec<(usize, usize, u64)>) -> ModelSpec {
    let layers = layers
        .into_iter()
        .enumerate()
        .map(|(i, (rows, cols, macs_mult))| LayerSpec {
            name: format!("l{i}"),
            kind: LayerKind::FullyConnected,
            rows,
            cols,
            macs: (rows * cols) as u64 * macs_mult,
            in_elems: cols as u64,
            out_elems: rows as u64,
            fetch_passes: 1,
        })
        .collect();
    ModelSpec {
        name: "prop".into(),
        dataset: "prop".into(),
        layers,
        paper: PaperModelInfo {
            reported_params: 0,
            classification_error: 0.1,
            itn_bound: 0.01,
            cluster_index_bits: 4,
            sparsity: 0.5,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn more_weight_bytes_never_speed_things_up(
        shape in prop::collection::vec((8usize..256, 8usize..256, 1u64..4), 1..6),
        extra in 1u64..1_000_000,
    ) {
        let model = random_model(shape);
        let cfg = NvdlaConfig::nvdla_64();
        let light: Vec<u64> = model.layers.iter().map(|l| l.weights() / 2).collect();
        let heavy: Vec<u64> = light.iter().map(|b| b + extra).collect();
        let a = evaluate(&model, &cfg, &WeightSource::Dram, &light);
        let b = evaluate(&model, &cfg, &WeightSource::Dram, &heavy);
        prop_assert!(b.cycles_per_inference >= a.cycles_per_inference);
        prop_assert!(b.weight_energy_mj > a.weight_energy_mj);
    }

    #[test]
    fn energy_accounting_always_balances(
        shape in prop::collection::vec((8usize..512, 8usize..512, 1u64..8), 1..8),
    ) {
        let model = random_model(shape);
        let cfg = NvdlaConfig::nvdla_1024();
        let bytes: Vec<u64> = model.layers.iter().map(|l| l.weights()).collect();
        let r = evaluate(&model, &cfg, &WeightSource::Dram, &bytes);
        let sum = r.weight_energy_mj
            + r.activation_energy_mj
            + r.datapath_energy_mj
            + r.background_energy_mj;
        prop_assert!((sum / r.energy_per_inference_mj - 1.0).abs() < 1e-9);
        prop_assert!(r.fps > 0.0 && r.fps.is_finite());
        prop_assert!(r.avg_power_mw > 0.0);
    }

    #[test]
    fn bigger_datapath_is_never_slower(
        shape in prop::collection::vec((16usize..512, 16usize..512, 1u64..8), 1..6),
    ) {
        let model = random_model(shape);
        let bytes: Vec<u64> = model.layers.iter().map(|l| l.weights()).collect();
        let small = evaluate(&model, &NvdlaConfig::nvdla_64(), &WeightSource::Dram, &bytes);
        let big = evaluate(&model, &NvdlaConfig::nvdla_1024(), &WeightSource::Dram, &bytes);
        prop_assert!(big.fps >= small.fps * 0.999);
    }
}
