//! Regenerates paper Fig. 6: minimal number of eNVM cells per DNN and per
//! encoding strategy such that classification accuracy is preserved, for
//! MLC-CTT, MLC-RRAM, and the SLC baseline — the result of the exhaustive
//! bits-per-cell / protection design-space exploration.

use maxnvm_dnn::zoo::ModelSpec;
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, SenseAmp};
use maxnvm_faultsim::dse::{
    explore_spec, explore_spec_per_layer, minimal_cells, minimal_cells_for_encoding,
};

fn main() {
    let sa = SenseAmp::paper_default();
    println!("Fig. 6: minimal eNVM cells (millions) per DNN x encoding x technology\n");
    for spec in ModelSpec::paper_models() {
        println!(
            "== {} ({}, sparsity {:.1}%, {}b indices, ITN {:.2}%) ==",
            spec.name,
            spec.dataset,
            spec.paper.sparsity * 100.0,
            spec.paper.cluster_index_bits,
            spec.paper.itn_bound * 100.0
        );
        println!(
            "{:<18} {:>12} {:>12} {:>12}",
            "encoding", "MLC-CTT", "MLC-RRAM", "SLC-RRAM"
        );
        let techs = [
            CellTechnology::MlcCtt,
            CellTechnology::MlcRram,
            CellTechnology::SlcRram,
        ];
        let points: Vec<_> = techs
            .iter()
            .map(|&t| explore_spec(&spec, t, &sa, spec.paper.itn_bound))
            .collect();
        let bars: [(&str, EncodingKind, Option<bool>); 4] = [
            ("P+C", EncodingKind::DenseClustered, None),
            ("CSR", EncodingKind::Csr, None),
            ("BitMask", EncodingKind::BitMask, Some(false)),
            ("BitM+IdxSync", EncodingKind::BitMask, Some(true)),
        ];
        for (label, enc, sync) in bars {
            let mut row = format!("{label:<18}");
            for pts in &points {
                let cells = minimal_cells_for_encoding(pts, enc, sync)
                    .map(|p| format!("{:.1}", p.cells as f64 / 1e6))
                    .unwrap_or_else(|| "fail".into());
                row += &format!(" {cells:>12}");
            }
            println!("{row}");
        }
        for (t, pts) in techs.iter().zip(&points) {
            if let Some(best) = minimal_cells(pts) {
                println!(
                    "  optimal on {}: {} with {:.1}M cells (max {} bits/cell)",
                    t.name(),
                    best.scheme.label(),
                    best.cells as f64 / 1e6,
                    best.scheme.max_bpc().bits()
                );
            }
        }
        // Extension: per-layer mixed encodings ("CSR applied per layer
        // where worthwhile", §3.2.1).
        let (mixed, mixed_cells) =
            explore_spec_per_layer(&spec, CellTechnology::MlcCtt, &sa, spec.paper.itn_bound)
                .expect("SLC always passes");
        let distinct: std::collections::BTreeSet<String> =
            mixed.iter().map(|s| s.label()).collect();
        println!(
            "  per-layer mix on MLC-CTT: {:.1}M cells using {{{}}}",
            mixed_cells as f64 / 1e6,
            distinct.into_iter().collect::<Vec<_>>().join(", ")
        );
        println!();
    }
    println!("Shape checks (paper): savings come from sparse encodings AND from");
    println!("packing more bits per cell under protection; BitM+IdxSync beats plain");
    println!("BitMask (e.g. -22% cells for VGG16); fewest stored bits is not always");
    println!("fewest cells.");
}
