/root/repo/target/debug/deps/table2-e6726856f7a30733.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-e6726856f7a30733.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
