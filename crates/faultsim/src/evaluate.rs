//! Accuracy evaluators: end-to-end network inference for the trainable
//! stand-ins, and a weight-corruption sensitivity proxy for the
//! ImageNet-scale specs.
//!
//! Evaluators expose two granularities. [`AccuracyEval::eval`] (and its
//! scratch-reusing twin) takes fully materialized weight matrices — the
//! reference path everything is checked against. [`AccuracyEval::eval_deltas`]
//! takes the *clean* matrices plus a per-layer sparse list of
//! [`WeightDelta`]s, which is what the sparse fault sampler produces
//! (chip instances reduce to the same deltas via
//! `StoredLayer::sample_chip_flips`); the fast implementations here
//! never materialize the faulty matrices. On top of that,
//! [`AccuracyEval::eval_deltas_sparse`] accepts the clean model as a
//! [`SparseModel`] — the storage-format [`SparseMatrix`] twins next to
//! the dense view — so the whole clean forward pass and every per-trial
//! patch run O(nnz) instead of O(size):
//!
//! - [`NetworkEval`] keeps a [`PrefixCache`] of the clean batch forward
//!   pass (keyed per configuration) and per trial only patches the dirty
//!   rows of the first fault-touched layer and re-runs the suffix —
//!   bit-identical to materializing the faults and running
//!   [`Network::error_rate`] (see [`maxnvm_dnn::prefix`]).
//! - [`ProxyEval`] caches the clean relative-MSE denominator and adjusts
//!   the numerator per delta in O(deltas) — bit-identical to the full
//!   scan whenever the clean decode equals the proxy reference bitwise
//!   (the only configuration the shortcut is enabled for).
//!
//! Both fall back to the materializing default (clean copy + delta
//! overwrite + [`AccuracyEval::eval_scratch`]) when their preconditions
//! fail (residual networks; a lossy clean decode), so `eval_deltas` is
//! total for every evaluator.

use maxnvm_dnn::layer::ForwardScratch;
use maxnvm_dnn::network::{argmax, LayerMatrix, Network, WeightDelta};
use maxnvm_dnn::prefix::PrefixCache;
use maxnvm_dnn::sparse::SparseMatrix;
use maxnvm_dnn::tensor::Tensor;
use std::sync::Arc;

/// The clean model handed to [`AccuracyEval::eval_deltas_sparse`]: the
/// decoded weight matrices in both formats. `sparse[i]` must equal
/// `SparseMatrix::from_dense` of `dense[i]` bit for bit (which the
/// storage layer's clean decode guarantees) — evaluators are free to use
/// either view and get identical results.
#[derive(Debug, Clone, Copy)]
pub struct SparseModel<'a> {
    /// Clean decoded weight matrices, materialized.
    pub dense: &'a [LayerMatrix],
    /// The same matrices in the compute-side sparse format.
    pub sparse: &'a [Arc<SparseMatrix>],
}

impl SparseModel<'_> {
    /// Non-zero weights per layer.
    pub fn layer_nnz(&self) -> Vec<u64> {
        self.sparse.iter().map(|s| s.nnz() as u64).collect()
    }

    /// Achieved model density: total non-zeros over total weights
    /// (`0.0` for an empty model).
    pub fn density(&self) -> f64 {
        let total: usize = self.sparse.iter().map(|s| s.rows() * s.cols()).sum();
        if total == 0 {
            0.0
        } else {
            self.sparse.iter().map(|s| s.nnz()).sum::<usize>() as f64 / total as f64
        }
    }
}

/// Relative weight-MSE at which the sensitivity proxy has risen to
/// `1 - 1/e` of its saturation error. Chosen so that (a) sub-0.1% relative
/// perturbations (adjacent-cluster flips at realistic fault rates) stay
/// within even LeNet5's 0.05% ITN bound and (b) wholesale misalignment
/// (m_rel near 1) saturates toward random-guess error — consistent with
/// the DNN perturbation-tolerance literature the paper builds on
/// [44, 57, 58].
pub const PROXY_M0: f64 = 0.05;

/// A [`NetworkEval`]'s cached clean-prefix state for one configuration
/// key: a network holding the clean decoded weights (deltas are applied
/// and reverted in place per trial) and the [`PrefixCache`] of the clean
/// forward pass over the test batch.
#[derive(Debug, Clone)]
struct PrefixState {
    net: Network,
    cache: PrefixCache,
    clean_error: f64,
    /// One sparse clean weight matrix per prefix site, in site order —
    /// what the sparse trial path patches with `with_deltas` and feeds
    /// to [`Network::forward_suffix_sparse`].
    sparse: Vec<Arc<SparseMatrix>>,
}

/// Reusable per-worker evaluation state: the network clone a
/// [`NetworkEval`] writes decoded weights into, the keyed clean-prefix /
/// clean-MSE caches behind [`AccuracyEval::eval_deltas`], and assorted
/// staging buffers — so a Monte-Carlo campaign pays each allocation once
/// per worker instead of once per trial.
///
/// The keyed caches hold exactly one configuration each (campaigns use a
/// single key; a DSE sweep keys by candidate scheme and rebuilds on key
/// switch — a pure function of the key's clean matrices, so results are
/// identical at any worker count and scratch-reuse pattern).
///
/// A scratch value is tied to the first evaluator that uses it (the lazily
/// built caches keep that evaluator's architecture); do not share one
/// scratch across different evaluators.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    net: Option<Network>,
    forward: ForwardScratch,
    row_buf: Vec<f32>,
    dirty_rows: Vec<usize>,
    undo: Vec<(usize, u32, f32)>,
    materialized: Option<(u64, Vec<LayerMatrix>)>,
    prefix: Option<(u64, Option<PrefixState>)>,
    proxy: Option<(u64, Option<f64>)>,
}

impl EvalScratch {
    /// Installs (or removes) the fan-out handle the GEMM kernels use to
    /// split one large multiply across the worker pool within a trial.
    /// Byte-identical results either way (fixed column-band ownership;
    /// see `maxnvm_dnn::gemm`); the engine installs its pool here so
    /// VGG16-scale forward passes use the whole machine.
    pub fn set_gemm_parallel(
        &mut self,
        parallel: Option<std::sync::Arc<dyn maxnvm_dnn::GemmParallel>>,
    ) {
        self.forward.gemm.set_parallel(parallel);
    }
}

/// Maps decoded weight matrices to a classification error estimate.
pub trait AccuracyEval {
    /// Error of the unperturbed model.
    fn baseline_error(&self) -> f64;
    /// Error with the given (possibly corrupted) weights in place.
    fn eval(&self, mats: &[LayerMatrix]) -> f64;
    /// [`AccuracyEval::eval`] with reusable per-worker state. The default
    /// delegates to `eval`; evaluators with per-call allocations (network
    /// clones) override it so the allocation happens once per scratch.
    fn eval_scratch(&self, mats: &[LayerMatrix], scratch: &mut EvalScratch) -> f64 {
        let _ = scratch;
        self.eval(mats)
    }
    /// Error with the faults given as sparse deltas against the `clean`
    /// decoded matrices: `deltas[i]` lists the faulty slots of matrix `i`
    /// in slot-ascending order, deduped (missing trailing entries mean
    /// "no faults"). `key` identifies the configuration `clean` belongs
    /// to — calls with the same key **must** pass bitwise-identical
    /// `clean` matrices, which lets implementations cache per-key state
    /// in the scratch.
    ///
    /// The default materializes: it keeps a per-key clean copy in the
    /// scratch, overwrites the delta slots, delegates to
    /// [`AccuracyEval::eval_scratch`], and reverts — so overriding
    /// `eval`/`eval_scratch` alone keeps `eval_deltas` consistent.
    /// [`NetworkEval`] and [`ProxyEval`] override it with O(deltas)
    /// paths that are bit-identical to this default.
    fn eval_deltas(
        &self,
        key: u64,
        clean: &[LayerMatrix],
        deltas: &[Vec<WeightDelta>],
        scratch: &mut EvalScratch,
    ) -> f64 {
        eval_deltas_materialized(self, key, clean, deltas, scratch)
    }
    /// [`AccuracyEval::eval_deltas`] with the clean model available in
    /// the compute-side sparse format too. The default ignores the
    /// sparse view and delegates to `eval_deltas` (exact by contract,
    /// since both views decode the same weights); [`NetworkEval`]
    /// overrides it to build its clean prefix and per-trial patches from
    /// the sparse stream, making trials O(nnz) — still bit-identical to
    /// the materializing path.
    fn eval_deltas_sparse(
        &self,
        key: u64,
        clean: &SparseModel,
        deltas: &[Vec<WeightDelta>],
        scratch: &mut EvalScratch,
    ) -> f64 {
        self.eval_deltas(key, clean.dense, deltas, scratch)
    }
}

/// The materializing [`AccuracyEval::eval_deltas`] path, shared by the
/// trait default and the fast evaluators' fallback arms: copy the clean
/// matrices once per key, overwrite the delta slots, evaluate, restore.
fn eval_deltas_materialized<E: AccuracyEval + ?Sized>(
    eval: &E,
    key: u64,
    clean: &[LayerMatrix],
    deltas: &[Vec<WeightDelta>],
    scratch: &mut EvalScratch,
) -> f64 {
    // Take the cached copy out of the scratch so `eval_scratch` below can
    // borrow the scratch mutably; reverting the deltas (rather than
    // re-cloning `clean`) keeps steady-state trials allocation-free.
    let cached = scratch
        .materialized
        .take()
        .filter(|(k, m)| *k == key && m.len() == clean.len());
    let mut mats = match cached {
        Some((_, m)) => m,
        None => clean.to_vec(),
    };
    for (i, ds) in deltas.iter().enumerate() {
        for d in ds {
            mats[i].data[d.slot as usize] = d.value;
        }
    }
    let error = eval.eval_scratch(&mats, scratch);
    for (i, ds) in deltas.iter().enumerate() {
        for d in ds {
            mats[i].data[d.slot as usize] = clean[i].data[d.slot as usize];
        }
    }
    scratch.materialized = Some((key, mats));
    error
}

/// End-to-end evaluator: writes the matrices into a real network and
/// measures classification error on a held-out test set.
#[derive(Debug, Clone)]
pub struct NetworkEval {
    net: Network,
    test: Vec<(Tensor, usize)>,
    baseline: f64,
}

impl NetworkEval {
    /// Creates an evaluator; measures the baseline error immediately.
    pub fn new(net: Network, test: Vec<(Tensor, usize)>) -> Self {
        let baseline = net.error_rate(&test);
        Self {
            net,
            test,
            baseline,
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.net
    }
}

impl AccuracyEval for NetworkEval {
    fn baseline_error(&self) -> f64 {
        self.baseline
    }

    fn eval(&self, mats: &[LayerMatrix]) -> f64 {
        self.eval_scratch(mats, &mut EvalScratch::default())
    }

    fn eval_scratch(&self, mats: &[LayerMatrix], scratch: &mut EvalScratch) -> f64 {
        // Every weight of every matrix is overwritten below, so a stale
        // scratch network from a previous trial cannot leak state.
        let net = scratch.net.get_or_insert_with(|| self.net.clone());
        net.set_weight_matrices(mats);
        net.error_rate(&self.test)
    }

    /// Clean-prefix fast path: the clean batch forward pass is cached
    /// once per key; a trial recomputes only the dirty rows of the first
    /// fault-touched layer and the layer suffix behind it — bit-identical
    /// to materializing the faults (see [`maxnvm_dnn::prefix`]). Residual
    /// networks fall back to the materializing default.
    fn eval_deltas(
        &self,
        key: u64,
        clean: &[LayerMatrix],
        deltas: &[Vec<WeightDelta>],
        scratch: &mut EvalScratch,
    ) -> f64 {
        if self.test.is_empty() {
            return 0.0; // matches `Network::error_rate` on an empty set
        }
        if !matches!(&scratch.prefix, Some((k, _)) if *k == key) {
            let mut net = self.net.clone();
            net.set_weight_matrices(clean);
            let xs: Vec<Tensor> = self.test.iter().map(|(x, _)| x.clone()).collect();
            let state = PrefixCache::build(&net, &xs, &mut scratch.forward).map(|cache| {
                let clean_error = error_over(cache.clean_logits(), &self.test);
                // Same-key sparse calls may reuse this state, so give it
                // the sparse twins (equal to any caller-provided ones by
                // the `eval_deltas_sparse` contract).
                let sparse = clean
                    .iter()
                    .map(|m| Arc::new(SparseMatrix::from_matrix(m)))
                    .collect();
                PrefixState {
                    net,
                    cache,
                    clean_error,
                    sparse,
                }
            });
            scratch.prefix = Some((key, state));
        }
        // Destructure so the prefix state and the staging buffers can be
        // borrowed simultaneously; anything else materializes.
        match scratch {
            EvalScratch {
                prefix: Some((k, Some(state))),
                forward,
                row_buf,
                dirty_rows,
                undo,
                ..
            } if *k == key => {
                let Some(first) = deltas.iter().position(|d| !d.is_empty()) else {
                    return state.clean_error;
                };
                dirty_rows.clear();
                dirty_rows.extend(
                    deltas[first]
                        .iter()
                        .map(|d| d.slot as usize / clean[first].cols),
                );
                dirty_rows.sort_unstable();
                dirty_rows.dedup();
                state.net.apply_weight_deltas(deltas, undo);
                let pos = state.cache.site_layer(first);
                let logits = match state.net.layers()[pos].weight_bias() {
                    Some((w, b)) => {
                        let patched = state
                            .cache
                            .patched_outputs(first, w, b, dirty_rows, row_buf);
                        state.net.forward_suffix(pos + 1, patched, forward)
                    }
                    // Sites address weight layers by construction; stay
                    // total with a (still exact) full faulty forward.
                    None => state
                        .net
                        .forward_batch_scratch(state.cache.input_batch(), forward),
                };
                let error = error_over(&logits, &self.test);
                state.net.revert_weight_deltas(undo);
                error
            }
            _ => eval_deltas_materialized(self, key, clean, deltas, scratch),
        }
    }

    /// Fully sparse trial path: the clean prefix is built straight from
    /// the sparse weight streams ([`PrefixCache::build_sparse`]), dirty
    /// rows are recomputed from the delta-patched sparse matrix
    /// ([`SparseMatrix::with_deltas`] +
    /// [`PrefixCache::patched_outputs_sparse`]), and the suffix runs
    /// through [`Network::forward_suffix_sparse`] — O(nnz) end to end
    /// and bit-identical to the materializing path (see
    /// [`maxnvm_dnn::sparse`] for the exactness argument). Residual
    /// networks fall back to the dense `eval_deltas`.
    fn eval_deltas_sparse(
        &self,
        key: u64,
        clean: &SparseModel,
        deltas: &[Vec<WeightDelta>],
        scratch: &mut EvalScratch,
    ) -> f64 {
        if self.test.is_empty() {
            return 0.0; // matches `Network::error_rate` on an empty set
        }
        if !matches!(&scratch.prefix, Some((k, _)) if *k == key) {
            assert_eq!(
                clean.dense.len(),
                clean.sparse.len(),
                "sparse/dense layer count mismatch"
            );
            let mut net = self.net.clone();
            net.set_weight_matrices(clean.dense);
            let xs: Vec<Tensor> = self.test.iter().map(|(x, _)| x.clone()).collect();
            let overlay: Vec<Option<&SparseMatrix>> =
                clean.sparse.iter().map(|s| Some(&**s)).collect();
            let state =
                PrefixCache::build_sparse(&net, &xs, &overlay, &mut scratch.forward).map(|cache| {
                    let clean_error = error_over(cache.clean_logits(), &self.test);
                    PrefixState {
                        net,
                        cache,
                        clean_error,
                        sparse: clean.sparse.to_vec(),
                    }
                });
            scratch.prefix = Some((key, state));
        }
        match scratch {
            EvalScratch {
                prefix: Some((k, Some(state))),
                forward,
                row_buf,
                dirty_rows,
                undo,
                ..
            } if *k == key => {
                let Some(first) = deltas.iter().position(|d| !d.is_empty()) else {
                    return state.clean_error;
                };
                dirty_rows.clear();
                dirty_rows.extend(
                    deltas[first]
                        .iter()
                        .map(|d| d.slot as usize / clean.dense[first].cols),
                );
                dirty_rows.sort_unstable();
                dirty_rows.dedup();
                // The dense weights are patched too: suffix layers the
                // sparse overlay doesn't cover (nested residual
                // matrices) must still see the faults.
                state.net.apply_weight_deltas(deltas, undo);
                let pos = state.cache.site_layer(first);
                let logits = match state.net.layers()[pos].weight_bias() {
                    Some((_, b)) => {
                        let patched_first = state.sparse[first].with_deltas(&deltas[first]);
                        // Later fault-touched sites get their own
                        // delta-patched streams; clean sites reuse the
                        // cached clean twins untouched.
                        let later: Vec<Option<SparseMatrix>> = state
                            .sparse
                            .iter()
                            .enumerate()
                            .map(|(i, s)| {
                                deltas
                                    .get(i)
                                    .filter(|ds| i > first && !ds.is_empty())
                                    .map(|ds| s.with_deltas(ds))
                            })
                            .collect();
                        let overlay: Vec<Option<&SparseMatrix>> = state
                            .sparse
                            .iter()
                            .zip(&later)
                            .map(|(s, p)| Some(p.as_ref().unwrap_or(&**s)))
                            .collect();
                        let patched = state.cache.patched_outputs_sparse(
                            first,
                            &patched_first,
                            b,
                            dirty_rows,
                            row_buf,
                        );
                        state
                            .net
                            .forward_suffix_sparse(pos + 1, patched, &overlay, forward)
                    }
                    // Sites address weight layers by construction; stay
                    // total with a (still exact) full faulty forward.
                    None => state
                        .net
                        .forward_batch_scratch(state.cache.input_batch(), forward),
                };
                let error = error_over(&logits, &self.test);
                state.net.revert_weight_deltas(undo);
                error
            }
            _ => self.eval_deltas(key, clean.dense, deltas, scratch),
        }
    }
}

/// Classification error of per-sample logits against labelled samples —
/// the same argmax and counting [`Network::error_rate`] uses, applied to
/// already-computed logits.
fn error_over(logits: &[Tensor], test: &[(Tensor, usize)]) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let wrong = logits
        .iter()
        .zip(test)
        .filter(|(l, (_, y))| argmax(l) != *y)
        .count();
    wrong as f64 / test.len() as f64
}

/// Sensitivity-proxy evaluator for models too large to train in this
/// substrate: classification error is estimated from the relative
/// weight-MSE between the decoded matrices and a clean reference,
///
/// `err = base + (sat - base) · (1 - exp(-m_rel / M0))`,
///
/// where `m_rel = Σ (w' - w)² / Σ w²` aggregated over layers. The shape —
/// tiny perturbations harmless, misalignment catastrophic — is what the
/// paper's Fig. 5 measures end-to-end; the constant is documented at
/// [`PROXY_M0`].
#[derive(Debug, Clone)]
pub struct ProxyEval {
    reference: Vec<LayerMatrix>,
    baseline: f64,
    saturation: f64,
}

impl ProxyEval {
    /// Creates a proxy against clean reference matrices.
    ///
    /// `baseline` is the model's reported clean error; `saturation` the
    /// error of random guessing (e.g. `0.999` for ImageNet top-1).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= baseline < saturation <= 1`.
    pub fn new(reference: Vec<LayerMatrix>, baseline: f64, saturation: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&baseline) && baseline < saturation && saturation <= 1.0,
            "invalid error bounds {baseline}, {saturation}"
        );
        Self {
            reference,
            baseline,
            saturation,
        }
    }

    /// The aggregated relative weight-MSE of `mats` against the reference.
    pub fn relative_mse(&self, mats: &[LayerMatrix]) -> f64 {
        assert_eq!(mats.len(), self.reference.len(), "layer count mismatch");
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (m, r) in mats.iter().zip(&self.reference) {
            assert_eq!(
                (m.rows, m.cols),
                (r.rows, r.cols),
                "layer shape mismatch for {}",
                r.name
            );
            for (a, b) in m.data.iter().zip(&r.data) {
                num += ((a - b) as f64).powi(2);
                den += (*b as f64).powi(2);
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Maps a relative MSE to an error estimate (the curve above).
    pub fn error_from_mse(&self, m_rel: f64) -> f64 {
        self.baseline + (self.saturation - self.baseline) * (1.0 - (-m_rel / PROXY_M0).exp())
    }

    /// The cached denominator for the incremental delta path: `Σ ref²`
    /// (accumulated in the same layer-then-cell order as
    /// [`ProxyEval::relative_mse`]), but only when `clean` equals the
    /// reference bitwise. That equality is what makes the incremental
    /// numerator exact: every non-delta cell of a trial then contributes
    /// exactly `0.0` to the full scan, so summing the delta terms alone
    /// (in slot order) reproduces it bit for bit. A lossy clean decode
    /// returns `None` and the evaluator materializes instead.
    fn incremental_den(&self, clean: &[LayerMatrix]) -> Option<f64> {
        if clean.len() != self.reference.len() {
            return None;
        }
        let mut den = 0.0f64;
        for (c, r) in clean.iter().zip(&self.reference) {
            if (c.rows, c.cols) != (r.rows, r.cols) {
                return None;
            }
            for (a, b) in c.data.iter().zip(&r.data) {
                if a.to_bits() != b.to_bits() {
                    return None;
                }
                den += (*b as f64).powi(2);
            }
        }
        Some(den)
    }
}

impl AccuracyEval for ProxyEval {
    fn baseline_error(&self) -> f64 {
        self.baseline
    }

    fn eval(&self, mats: &[LayerMatrix]) -> f64 {
        self.error_from_mse(self.relative_mse(mats))
    }

    /// Incremental fast path: with the denominator cached (see
    /// [`ProxyEval::incremental_den`]) the numerator is just the
    /// slot-ordered sum of `(value − ref)²` over the deltas — O(deltas)
    /// and bit-identical to the full scan. Falls back to materializing
    /// when the clean decode differs from the reference.
    fn eval_deltas(
        &self,
        key: u64,
        clean: &[LayerMatrix],
        deltas: &[Vec<WeightDelta>],
        scratch: &mut EvalScratch,
    ) -> f64 {
        if !matches!(&scratch.proxy, Some((k, _)) if *k == key) {
            scratch.proxy = Some((key, self.incremental_den(clean)));
        }
        match &scratch.proxy {
            Some((k, Some(den))) if *k == key => {
                let den = *den;
                let mut num = 0.0f64;
                for (i, ds) in deltas.iter().enumerate() {
                    let r = &self.reference[i];
                    for d in ds {
                        // f32 subtraction then the f64 square, exactly as
                        // in `relative_mse`.
                        num += ((d.value - r.data[d.slot as usize]) as f64).powi(2);
                    }
                }
                let m_rel = if den == 0.0 { 0.0 } else { num / den };
                self.error_from_mse(m_rel)
            }
            _ => eval_deltas_materialized(self, key, clean, deltas, scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_dnn::data::gaussian_clusters;
    use maxnvm_dnn::train::{sgd_train, TrainConfig};
    use maxnvm_dnn::zoo::mlp_mini;

    fn trained_eval() -> NetworkEval {
        let all = gaussian_clusters(8, 3, 400, 2.5, 7);
        let (train, test) = all.split_at(300);
        let mut net = mlp_mini(8, 3, 16, 1);
        sgd_train(
            &mut net,
            train,
            &TrainConfig {
                epochs: 15,
                lr: 0.02,
                momentum: 0.9,
                seed: 2,
            },
        )
        .unwrap();
        NetworkEval::new(net, test.to_vec())
    }

    #[test]
    fn network_eval_baseline_is_learned() {
        let eval = trained_eval();
        assert!(eval.baseline_error() < 0.15, "{}", eval.baseline_error());
    }

    #[test]
    fn network_eval_clean_weights_reproduce_baseline() {
        let eval = trained_eval();
        let mats = eval.network().weight_matrices();
        assert_eq!(eval.eval(&mats), eval.baseline_error());
    }

    #[test]
    fn network_eval_scratch_reuse_matches_fresh_eval() {
        let eval = trained_eval();
        let mut scratch = EvalScratch::default();
        let clean = eval.network().weight_matrices();
        assert_eq!(
            eval.eval_scratch(&clean, &mut scratch),
            eval.baseline_error()
        );
        let mut corrupted = clean.clone();
        for v in &mut corrupted[0].data {
            *v += 1.7;
        }
        assert_eq!(
            eval.eval_scratch(&corrupted, &mut scratch),
            eval.eval(&corrupted),
            "reused scratch must match a fresh evaluation"
        );
        // The corrupted trial leaves no residue in the scratch network.
        assert_eq!(
            eval.eval_scratch(&clean, &mut scratch),
            eval.baseline_error()
        );
    }

    #[test]
    fn network_eval_scrambled_weights_destroy_accuracy() {
        let eval = trained_eval();
        let mut mats = eval.network().weight_matrices();
        for m in &mut mats {
            for (i, v) in m.data.iter_mut().enumerate() {
                *v = ((i * 2654435761) % 17) as f32 / 17.0 - 0.5;
            }
        }
        let err = eval.eval(&mats);
        assert!(
            err > eval.baseline_error() + 0.2,
            "scrambled error {err} vs baseline {}",
            eval.baseline_error()
        );
    }

    #[test]
    fn proxy_is_monotone_in_corruption() {
        let refm = vec![LayerMatrix::new(
            "l",
            4,
            4,
            (0..16).map(|i| i as f32).collect(),
        )];
        let proxy = ProxyEval::new(refm.clone(), 0.1, 0.9);
        assert_eq!(proxy.eval(&refm), 0.1);
        let mut light = refm.clone();
        light[0].data[3] += 0.5;
        let mut heavy = refm.clone();
        for v in &mut heavy[0].data {
            *v = -*v;
        }
        let e_light = proxy.eval(&light);
        let e_heavy = proxy.eval(&heavy);
        assert!(0.1 < e_light && e_light < e_heavy);
        assert!(e_heavy > 0.85, "wholesale corruption saturates: {e_heavy}");
    }

    #[test]
    fn proxy_tiny_perturbations_stay_within_tight_bounds() {
        // A 2e-5 relative MSE (value faults at realistic rates: LeNet5 has
        // ~80k value cells at ~9e-6 mean rate, so ~0.7 corrupted weights of
        // 60k non-zeros) must stay within LeNet5's 0.05% ITN bound.
        let refm = vec![LayerMatrix::new("l", 1, 1, vec![1.0])];
        let proxy = ProxyEval::new(refm, 0.0083, 0.9);
        let bumped = proxy.error_from_mse(2e-5);
        assert!(bumped - 0.0083 < 0.0005, "delta {}", bumped - 0.0083);
    }

    #[test]
    #[should_panic(expected = "layer shape mismatch")]
    fn proxy_rejects_mismatched_shapes() {
        let refm = vec![LayerMatrix::new("l", 2, 2, vec![1.0; 4])];
        let proxy = ProxyEval::new(refm, 0.1, 0.9);
        proxy.eval(&[LayerMatrix::new("l", 1, 4, vec![1.0; 4])]);
    }

    /// Applies the sparse deltas onto a copy of `clean` — the
    /// materialized reference every `eval_deltas` result is compared to.
    fn materialize(clean: &[LayerMatrix], deltas: &[Vec<WeightDelta>]) -> Vec<LayerMatrix> {
        let mut mats = clean.to_vec();
        for (i, ds) in deltas.iter().enumerate() {
            for d in ds {
                mats[i].data[d.slot as usize] = d.value;
            }
        }
        mats
    }

    fn delta_cases() -> Vec<Vec<Vec<WeightDelta>>> {
        let d = |slot: u32, value: f32| WeightDelta { slot, value };
        vec![
            vec![Vec::new(), Vec::new()],
            vec![vec![d(5, 2.0)], Vec::new()],
            vec![Vec::new(), vec![d(1, -4.0)]],
            vec![vec![d(0, 9.0), d(17, -9.0)], vec![d(3, 0.25)]],
        ]
    }

    /// The clean-prefix fast path must be bit-identical to materializing
    /// the faults, across fault positions, reused scratch state, and key
    /// switches.
    #[test]
    fn network_eval_deltas_is_bit_exact_with_materialized() {
        let eval = trained_eval();
        let clean = eval.network().weight_matrices();
        let mut scratch = EvalScratch::default();
        for deltas in &delta_cases() {
            assert_eq!(
                eval.eval_deltas(7, &clean, deltas, &mut scratch),
                eval.eval(&materialize(&clean, deltas)),
                "prefix path must match the materialized evaluation"
            );
        }
        // No faults on a reused (previously corrupted) scratch: the exact
        // clean baseline, no residue.
        assert_eq!(
            eval.eval_deltas(7, &clean, &[Vec::new(), Vec::new()], &mut scratch),
            eval.baseline_error()
        );
        // A key switch rebuilds the cache for the new clean matrices and
        // back again.
        let mut other = clean.clone();
        for v in &mut other[0].data {
            *v = -*v;
        }
        assert_eq!(
            eval.eval_deltas(8, &other, &[Vec::new(), Vec::new()], &mut scratch),
            eval.eval(&other)
        );
        assert_eq!(
            eval.eval_deltas(7, &clean, &[Vec::new(), Vec::new()], &mut scratch),
            eval.baseline_error()
        );
    }

    /// Magnitude-prunes every matrix to roughly the given sparsity (the
    /// same rule `zoo::prune_to_sparsity` uses).
    fn prune(mats: &[LayerMatrix], sparsity: f64) -> Vec<LayerMatrix> {
        mats.iter()
            .map(|m| {
                let mut out = m.clone();
                if sparsity >= 1.0 {
                    out.data.iter_mut().for_each(|v| *v = 0.0);
                } else if sparsity > 0.0 {
                    let mut mags: Vec<f32> = out.data.iter().map(|v| v.abs()).collect();
                    mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    let t = mags[((mags.len() - 1) as f64 * sparsity) as usize];
                    for v in &mut out.data {
                        if v.abs() <= t {
                            *v = 0.0;
                        }
                    }
                }
                out
            })
            .collect()
    }

    /// The fully sparse trial path must be bit-identical to materializing
    /// the faults — at 0% (dense), Table-2 (0.409), and 100% sparsity,
    /// including multi-layer fault deltas through the prefix cache.
    #[test]
    fn network_eval_deltas_sparse_is_bit_exact_across_sparsities() {
        let eval = trained_eval();
        let base = eval.network().weight_matrices();
        for (ki, sparsity) in [0.0, 0.409, 1.0].into_iter().enumerate() {
            let clean = prune(&base, sparsity);
            let sparse: Vec<Arc<SparseMatrix>> = clean
                .iter()
                .map(|m| Arc::new(SparseMatrix::from_matrix(m)))
                .collect();
            let model = SparseModel {
                dense: &clean,
                sparse: &sparse,
            };
            let mut scratch = EvalScratch::default();
            for deltas in &delta_cases() {
                assert_eq!(
                    eval.eval_deltas_sparse(20 + ki as u64, &model, deltas, &mut scratch),
                    eval.eval(&materialize(&clean, deltas)),
                    "sparsity {sparsity}: sparse trial path drifted"
                );
            }
            // And the sparse path agrees with the dense prefix path on a
            // fresh scratch, multi-layer case included.
            let multi = &delta_cases()[3];
            assert_eq!(
                eval.eval_deltas_sparse(20 + ki as u64, &model, multi, &mut scratch),
                eval.eval_deltas(30 + ki as u64, &clean, multi, &mut EvalScratch::default()),
                "sparsity {sparsity}: sparse vs dense prefix paths drifted"
            );
        }
    }

    /// A dense-built prefix state reused by a same-key sparse call (and
    /// vice versa) stays exact — the two entry points share the cache.
    #[test]
    fn network_eval_sparse_and_dense_entry_points_share_state() {
        let eval = trained_eval();
        let clean = eval.network().weight_matrices();
        let sparse: Vec<Arc<SparseMatrix>> = clean
            .iter()
            .map(|m| Arc::new(SparseMatrix::from_matrix(m)))
            .collect();
        let model = SparseModel {
            dense: &clean,
            sparse: &sparse,
        };
        let mut scratch = EvalScratch::default();
        let deltas = &delta_cases()[3];
        let want = eval.eval(&materialize(&clean, deltas));
        // Dense first (builds the state), then sparse on the same key.
        assert_eq!(eval.eval_deltas(5, &clean, deltas, &mut scratch), want);
        assert_eq!(
            eval.eval_deltas_sparse(5, &model, deltas, &mut scratch),
            want
        );
        // Sparse first on a fresh key, then dense reuses it.
        assert_eq!(
            eval.eval_deltas_sparse(6, &model, deltas, &mut scratch),
            want
        );
        assert_eq!(eval.eval_deltas(6, &clean, deltas, &mut scratch), want);
    }

    /// Residual networks have no prefix cache; `eval_deltas` must fall
    /// back to the materializing path and still agree exactly.
    #[test]
    fn network_eval_deltas_falls_back_on_residual_networks() {
        use maxnvm_dnn::layer::Layer;
        let net = maxnvm_dnn::network::Network::new(
            "res",
            vec![Layer::Residual {
                body: vec![Layer::linear("b", 4, 4)],
                shortcut: vec![],
            }],
        );
        let test: Vec<(Tensor, usize)> = (0..6)
            .map(|i| {
                let data = (0..4).map(|j| ((i * 3 + j) % 5) as f32 - 2.0).collect();
                (Tensor::from_vec(&[4], data), i % 4)
            })
            .collect();
        let eval = NetworkEval::new(net, test);
        let clean = eval.network().weight_matrices();
        let deltas = vec![vec![WeightDelta {
            slot: 2,
            value: 30.0,
        }]];
        let mut scratch = EvalScratch::default();
        assert_eq!(
            eval.eval_deltas(0, &clean, &deltas, &mut scratch),
            eval.eval(&materialize(&clean, &deltas))
        );
        assert_eq!(
            eval.eval_deltas(0, &clean, &[Vec::new()], &mut scratch),
            eval.baseline_error()
        );
        // The sparse entry point falls back identically.
        let sparse: Vec<Arc<SparseMatrix>> = clean
            .iter()
            .map(|m| Arc::new(SparseMatrix::from_matrix(m)))
            .collect();
        let model = SparseModel {
            dense: &clean,
            sparse: &sparse,
        };
        assert_eq!(
            eval.eval_deltas_sparse(0, &model, &deltas, &mut scratch),
            eval.eval(&materialize(&clean, &deltas))
        );
    }

    /// With the reference equal to the clean decode (the DSE
    /// configuration), the incremental numerator must reproduce the full
    /// scan bit for bit.
    #[test]
    fn proxy_eval_deltas_is_bit_exact_when_reference_is_clean() {
        let refm = vec![
            LayerMatrix::new("a", 4, 6, (0..24).map(|i| i as f32 * 0.3 - 2.0).collect()),
            LayerMatrix::new("b", 2, 5, (0..10).map(|i| (i as f32).sin()).collect()),
        ];
        let proxy = ProxyEval::new(refm.clone(), 0.1, 0.9);
        let mut scratch = EvalScratch::default();
        for deltas in &delta_cases() {
            assert_eq!(
                proxy.eval_deltas(3, &refm, deltas, &mut scratch),
                proxy.eval(&materialize(&refm, deltas)),
                "incremental proxy must match the full scan"
            );
        }
    }

    /// A clean decode that differs from the reference (lossy clustering)
    /// disables the shortcut; the fallback still agrees with `eval`.
    #[test]
    fn proxy_eval_deltas_falls_back_on_lossy_clean_decodes() {
        let refm = vec![LayerMatrix::new(
            "l",
            3,
            3,
            (0..9).map(|i| i as f32).collect(),
        )];
        let proxy = ProxyEval::new(refm.clone(), 0.1, 0.9);
        let mut clean = refm.clone();
        clean[0].data[4] += 0.125;
        let deltas = vec![vec![WeightDelta {
            slot: 7,
            value: -3.0,
        }]];
        let mut scratch = EvalScratch::default();
        assert_eq!(
            proxy.eval_deltas(1, &clean, &deltas, &mut scratch),
            proxy.eval(&materialize(&clean, &deltas))
        );
        // And with no faults, exactly the clean evaluation.
        assert_eq!(
            proxy.eval_deltas(1, &clean, &[Vec::new()], &mut scratch),
            proxy.eval(&clean)
        );
    }
}
