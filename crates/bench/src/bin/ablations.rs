//! Ablation studies for the design choices this reproduction makes —
//! each knob the paper fixes (or leaves implicit) swept in isolation.
//!
//! ```sh
//! cargo run --release -p maxnvm-bench --bin ablations
//! ```

use maxnvm_dnn::network::LayerMatrix;
use maxnvm_ecc::{BlockCodec, SecDed};
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::csr::CsrLayer;
use maxnvm_encoding::estimate::LayerGeometry;
use maxnvm_encoding::quantize::{min_bits_for_mse, FixedPoint};
use maxnvm_encoding::storage::StorageScheme;
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::level::{CellModel, LevelDistribution};
use maxnvm_envm::retention::{years_to_rate, RetentionParams};
use maxnvm_envm::{CellTechnology, EnduranceModel, MlcConfig, SenseAmp, WriteModel};
use maxnvm_faultsim::analytic::layer_damage;
use rand::{Rng, SeedableRng};

fn main() {
    guard_gap();
    sense_amp_sizing();
    ecc_codeword_size();
    idxsync_block_size();
    csr_index_modes();
    clustering_vs_fixed_point();
    endurance();
    retention();
}

/// §2.2.1: "we separate the unprogrammed and first programmed state to
/// minimize read errors" — what happens without the guard gap?
fn guard_gap() {
    println!("== Ablation 1: CTT guard gap ==");
    let with_gap = CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3);
    // Same sigmas, but evenly spaced levels (no extra separation).
    let s0 = with_gap.levels()[0].sigma;
    let sp = with_gap.levels()[1].sigma;
    let no_gap = CellModel::new(
        (0..8)
            .map(|i| LevelDistribution::new(i as f64 / 7.0, if i == 0 { s0 } else { sp }))
            .collect(),
    );
    let a = with_gap.fault_map();
    let b = no_gap.fault_map();
    println!(
        "  unprogrammed-pair misread:  with gap {:.2e}   without {:.2e}  ({:.0}x worse)",
        a.p_up(0),
        b.p_up(0),
        b.p_up(0) / a.p_up(0)
    );
    println!(
        "  worst adjacent rate:        with gap {:.2e}   without {:.2e}\n",
        a.worst_adjacent_rate(),
        b.worst_adjacent_rate()
    );
}

/// §2.3: the sense-amp sizing study — offset vs area vs fault inflation.
fn sense_amp_sizing() {
    println!("== Ablation 2: sense-amp input-pair sizing (Pelgrom) ==");
    println!(
        "  {:>6} {:>12} {:>10} {:>16}",
        "size", "offset σ", "rel area", "MLC3 inflation"
    );
    let cell = CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3);
    let base = cell.fault_map().worst_adjacent_rate();
    for size in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let sa = SenseAmp::with_size_factor(size);
        let with = cell.with_sense_amp(&sa).fault_map().worst_adjacent_rate();
        println!(
            "  {size:>5}x {:>12.4} {:>10.2} {:>15.2}x",
            sa.input_referred_offset_sigma(),
            sa.relative_area(),
            with / base
        );
    }
    println!("  (the paper-default 1.0x keeps inflation < 2x at <1% overhead)\n");
}

/// ECC codeword size: overhead vs expected uncorrectable events at
/// VGG16's column-index scale.
fn ecc_codeword_size() {
    println!("== Ablation 3: SEC-DED codeword size (VGG16 column indexes) ==");
    println!(
        "  {:>10} {:>10} {:>20}",
        "codeword", "overhead", "E[uncorrectable]/model"
    );
    let geom = LayerGeometry::from_sparsity(4096, 25088, 0.811); // fc6 as proxy
    let sa = SenseAmp::paper_default();
    for (label, data_bits) in [
        ("64B", 64usize * 8),
        ("512B (ours)", 512 * 8),
        ("4KB (paper)", 4096 * 8),
    ] {
        let code = SecDed::new(data_bits);
        let mut scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3).with_ecc();
        scheme.ecc_code = code;
        let d = layer_damage(geom, 6, &scheme, CellTechnology::MlcCtt, &sa);
        println!(
            "  {label:>10} {:>9.2}% {:>20.3}",
            code.overhead() * 100.0,
            // corrupted weights per layer ~ residual events x row/2.
            d.corrupted_weight_fraction * (geom.rows * geom.cols) as f64
                / (geom.nnz as f64 / geom.rows as f64)
        );
    }
    println!("  (smaller codewords trade overhead for residual-risk margin)\n");
}

/// IdxSync block size: counter overhead vs damage confinement.
fn idxsync_block_size() {
    println!("== Ablation 4: IdxSync block size (VGG16 fc6) ==");
    println!(
        "  {:>10} {:>14} {:>18}",
        "block", "counter bits", "E[m_rel] at MLC3"
    );
    let geom = LayerGeometry::from_sparsity(4096, 25088, 0.811);
    let sa = SenseAmp::paper_default();
    for block in [256usize, 1024, 4096, 16384] {
        let mut scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3)
            .with_idx_sync()
            .with_sync_block_bits(block);
        // Counters in SLC: isolate the confinement effect of the block
        // size from counter vulnerability.
        scheme.bpc.sync_counter = MlcConfig::SLC;
        let d = layer_damage(geom, 6, &scheme, CellTechnology::MlcCtt, &sa);
        let counters = (geom.rows * geom.cols).div_ceil(block as u64)
            * maxnvm_encoding::bitmask::sync_counter_bits_for(block) as u64;
        println!("  {block:>9}b {:>14} {:>18.3e}", counters, d.relative_mse);
    }
    println!("  (smaller blocks confine damage better but cost more counter bits)\n");
}

/// §4.2: relative vs absolute column indexes vs relative+ECC.
fn csr_index_modes() {
    println!("== Ablation 5: CSR column-index mode (16x1024 layer, 80% sparse) ==");
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let data: Vec<f32> = (0..16 * 1024)
        .map(|_| {
            if rng.gen::<f64>() < 0.8 {
                0.0
            } else {
                rng.gen::<f32>() - 0.5
            }
        })
        .collect();
    let c = ClusteredLayer::from_matrix(&LayerMatrix::new("l", 16, 1024, data), 6, 1);
    let rel = CsrLayer::encode(&c);
    let abs = CsrLayer::encode_absolute(&c);
    let ecc_bits =
        BlockCodec::new(SecDed::default_512b()).overhead_bits(rel.total_bits() as usize) as u64;
    println!(
        "  relative:        {:>8} bits ({}-bit fields, blast radius: rest of row)",
        rel.total_bits(),
        rel.col_idx_bits
    );
    println!(
        "  relative + ECC:  {:>8} bits (faults corrected)",
        rel.total_bits() + ecc_bits
    );
    println!(
        "  absolute:        {:>8} bits ({}-bit fields, blast radius: one weight)",
        abs.total_bits(),
        abs.col_idx_bits
    );
    println!("  -> absolute costs strictly more than relative+ECC (§4.2)\n");
}

/// §3.1.2: clustering vs fixed-point bits at iso-MSE.
fn clustering_vs_fixed_point() {
    println!("== Ablation 6: clustering vs fixed-point (iso-MSE bits/weight) ==");
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let data: Vec<f32> = (0..128 * 128)
        .map(|_| {
            if rng.gen::<f64>() < 0.6 {
                0.0
            } else {
                (rng.gen::<f32>() - 0.5) + (rng.gen::<f32>() - 0.5)
            }
        })
        .collect();
    let m = LayerMatrix::new("l", 128, 128, data);
    println!(
        "  {:>13} {:>12} {:>16}",
        "cluster bits", "k-means MSE", "fixed-pt bits"
    );
    for bits in [3u8, 4, 5, 6] {
        let c = ClusteredLayer::from_matrix(&m, bits, 3);
        let mse = c.quantization_mse(&m);
        let fp = min_bits_for_mse(&m, mse)
            .map(|b| b.to_string())
            .unwrap_or_else(|| ">16".into());
        println!("  {bits:>13} {mse:>12.3e} {fp:>16}");
    }
    let f8 = FixedPoint::for_range(8, 1.0);
    println!(
        "  (an 8-bit fixed-point format here reaches MSE {:.2e})\n",
        f8.mse(&m)
    );
}

/// §7.1: endurance-limited rewrite schedules.
fn endurance() {
    println!("== Ablation 7: rewrite schedules vs endurance (VGG16-scale, 90M cells) ==");
    println!(
        "  {:>14} {:>12} {:>16} {:>22}",
        "technology", "write time", "10y min interval", "daily-update lifetime"
    );
    for tech in CellTechnology::ALL {
        let w = WriteModel::for_tech(tech).total_write_time_s(90_000_000);
        let e = EnduranceModel::for_tech(tech);
        println!(
            "  {:>14} {:>12} {:>15.0}s {:>21.0}y",
            tech.name(),
            WriteModel::format_duration(w),
            e.min_rewrite_interval_s(10.0),
            e.lifetime_years(24.0 * 3600.0)
        );
    }
    println!("  (CTT: fine for daily updates, hopeless for activation buffering — §6/§7.1)\n");
}

/// Retention: MLC3 fault rates as stored levels age.
fn retention() {
    println!("== Ablation 8: retention drift (MLC3, worst adjacent rate) ==");
    println!(
        "  {:>14} {:>12} {:>12} {:>12} {:>16}",
        "technology", "fresh", "1 year", "10 years", "years to 1e-3"
    );
    for tech in [
        CellTechnology::MlcCtt,
        CellTechnology::MlcRram,
        CellTechnology::OptMlcRram,
    ] {
        let cell = tech.cell_model(MlcConfig::MLC3);
        let p = RetentionParams::for_tech(tech);
        let fresh = cell.fault_map().worst_adjacent_rate();
        let y1 = p.age(&cell, 1.0).fault_map().worst_adjacent_rate();
        let y10 = p.age(&cell, 10.0).fault_map().worst_adjacent_rate();
        let horizon = years_to_rate(tech, &cell, 1e-3);
        println!(
            "  {:>14} {:>12.2e} {:>12.2e} {:>12.2e} {:>15.1}y",
            tech.name(),
            fresh,
            y1,
            y10,
            horizon
        );
    }
    println!("  (CTT's gate-stack storage out-retains the RRAM filaments — [46])");
}
