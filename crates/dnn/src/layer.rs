//! Network layers with single-sample forward inference.
//!
//! Weights are kept in the 2-D layout the paper's sparse encodings consume
//! (§3.2.1): convolution kernels `[out_ch, in_ch*kh*kw]` (the NVDLA-
//! compatible 2-D mapping of the 3-D filters) and linear weights
//! `[out, in]`.

use crate::tensor::{im2col, Tensor};
use serde::{Deserialize, Serialize};

/// One layer of a [`Network`](crate::Network).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution. `weight` is `[out_ch, in_ch*kh*kw]`.
    Conv2d {
        /// Layer name (used to label weight matrices).
        name: String,
        /// Kernel matrix, `[out_ch, in_ch*kh*kw]`.
        weight: Tensor,
        /// Per-output-channel bias.
        bias: Vec<f32>,
        /// Input channels.
        in_ch: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride (same in both dimensions).
        stride: usize,
        /// Zero padding (same on all sides).
        pad: usize,
    },
    /// Fully connected layer. `weight` is `[out, in]`.
    Linear {
        /// Layer name.
        name: String,
        /// Weight matrix, `[out, in]`.
        weight: Tensor,
        /// Per-output bias.
        bias: Vec<f32>,
    },
    /// Rectified linear unit.
    ReLU,
    /// 2×2 max pooling with stride 2. Requires even spatial dimensions.
    MaxPool2,
    /// Global average pooling, `[c,h,w] -> [c]`.
    AvgPoolGlobal,
    /// Flattens `[c,h,w] -> [c*h*w]`.
    Flatten,
    /// Batch normalization (inference form, per-channel affine).
    BatchNorm2d {
        /// Scale per channel.
        gamma: Vec<f32>,
        /// Shift per channel.
        beta: Vec<f32>,
        /// Running mean per channel.
        mean: Vec<f32>,
        /// Running variance per channel.
        var: Vec<f32>,
    },
    /// Residual block: `out = body(x) + shortcut(x)` (empty shortcut =
    /// identity). Forward-only.
    Residual {
        /// Main path.
        body: Vec<Layer>,
        /// Shortcut path (empty = identity).
        shortcut: Vec<Layer>,
    },
}

impl Layer {
    /// Convenience constructor for a convolution with zero-initialized
    /// parameters.
    pub fn conv2d(
        name: &str,
        out_ch: usize,
        in_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Layer::Conv2d {
            name: name.to_string(),
            weight: Tensor::zeros(&[out_ch, in_ch * k * k]),
            bias: vec![0.0; out_ch],
            in_ch,
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// Convenience constructor for a linear layer with zero-initialized
    /// parameters.
    pub fn linear(name: &str, out: usize, inp: usize) -> Self {
        Layer::Linear {
            name: name.to_string(),
            weight: Tensor::zeros(&[out, inp]),
            bias: vec![0.0; out],
        }
    }

    /// Runs the layer on a single sample.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d {
                weight,
                bias,
                in_ch,
                kh,
                kw,
                stride,
                pad,
                ..
            } => {
                assert_eq!(x.shape().len(), 3, "conv input must be [c,h,w]");
                assert_eq!(x.shape()[0], *in_ch, "conv input channels");
                let (cols, oh, ow) = im2col(x, *kh, *kw, *stride, *pad);
                let mut out = weight.matmul(&cols);
                let out_ch = weight.shape()[0];
                for (ci, row) in out.data_mut().chunks_mut(oh * ow).enumerate() {
                    for v in row.iter_mut() {
                        *v += bias[ci];
                    }
                }
                out.reshape(&[out_ch, oh, ow])
            }
            Layer::Linear { weight, bias, .. } => {
                assert_eq!(x.shape().len(), 1, "linear input must be flat");
                let (out, inp) = (weight.shape()[0], weight.shape()[1]);
                assert_eq!(x.len(), inp, "linear input size");
                let mut y = vec![0.0f32; out];
                for (o, yo) in y.iter_mut().enumerate() {
                    let row = &weight.data()[o * inp..(o + 1) * inp];
                    *yo = bias[o] + row.iter().zip(x.data()).map(|(w, v)| w * v).sum::<f32>();
                }
                Tensor::from_vec(&[out], y)
            }
            Layer::ReLU => {
                Tensor::from_vec(x.shape(), x.data().iter().map(|&v| v.max(0.0)).collect())
            }
            Layer::MaxPool2 => {
                assert_eq!(x.shape().len(), 3, "pool input must be [c,h,w]");
                let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
                assert!(
                    h % 2 == 0 && w % 2 == 0,
                    "pool needs even dims, got {h}x{w}"
                );
                let (oh, ow) = (h / 2, w / 2);
                let mut out = vec![0.0f32; c * oh * ow];
                for ci in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut m = f32::NEG_INFINITY;
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let v = x.data()[(ci * h + oy * 2 + dy) * w + ox * 2 + dx];
                                    m = m.max(v);
                                }
                            }
                            out[(ci * oh + oy) * ow + ox] = m;
                        }
                    }
                }
                Tensor::from_vec(&[c, oh, ow], out)
            }
            Layer::AvgPoolGlobal => {
                assert_eq!(x.shape().len(), 3, "pool input must be [c,h,w]");
                let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
                let hw = (h * w) as f32;
                let out = (0..c)
                    .map(|ci| x.data()[ci * h * w..(ci + 1) * h * w].iter().sum::<f32>() / hw)
                    .collect();
                Tensor::from_vec(&[c], out)
            }
            Layer::Flatten => {
                let n = x.len();
                x.clone().reshape(&[n])
            }
            Layer::BatchNorm2d {
                gamma,
                beta,
                mean,
                var,
            } => {
                assert_eq!(x.shape().len(), 3, "batchnorm input must be [c,h,w]");
                let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
                assert_eq!(c, gamma.len(), "batchnorm channels");
                let mut out = x.data().to_vec();
                for ci in 0..c {
                    let inv = 1.0 / (var[ci] + 1e-5).sqrt();
                    for v in &mut out[ci * h * w..(ci + 1) * h * w] {
                        *v = gamma[ci] * (*v - mean[ci]) * inv + beta[ci];
                    }
                }
                Tensor::from_vec(x.shape(), out)
            }
            Layer::Residual { body, shortcut } => {
                let mut main = x.clone();
                for l in body {
                    main = l.forward(&main);
                }
                let mut sc = x.clone();
                for l in shortcut {
                    sc = l.forward(&sc);
                }
                assert_eq!(main.shape(), sc.shape(), "residual shape mismatch");
                let data = main
                    .data()
                    .iter()
                    .zip(sc.data())
                    .map(|(a, b)| a + b)
                    .collect();
                Tensor::from_vec(main.shape(), data)
            }
        }
    }

    /// Runs the layer on a batch of same-shaped samples.
    ///
    /// Conv2d and Linear batch into a single matrix multiply (one matmul
    /// per layer per trial instead of one per sample); other layers map
    /// [`Self::forward`] over the batch. Per-sample results are identical
    /// to [`Self::forward`]: each output element accumulates the same
    /// weight terms in the same order, independent of the other columns.
    ///
    /// # Panics
    ///
    /// Panics if the samples disagree in shape or any is incompatible
    /// with the layer.
    pub fn forward_batch(&self, xs: &[Tensor]) -> Vec<Tensor> {
        if xs.is_empty() {
            return Vec::new();
        }
        match self {
            Layer::Conv2d {
                weight,
                bias,
                in_ch,
                kh,
                kw,
                stride,
                pad,
                ..
            } => {
                let shape = xs[0].shape().to_vec();
                assert_eq!(shape.len(), 3, "conv input must be [c,h,w]");
                assert_eq!(shape[0], *in_ch, "conv input channels");
                let n = xs.len();
                let mut cols = Vec::with_capacity(n);
                let (mut oh, mut ow) = (0, 0);
                for x in xs {
                    assert_eq!(x.shape(), &shape[..], "batch shapes must agree");
                    let (c, h, w) = im2col(x, *kh, *kw, *stride, *pad);
                    (oh, ow) = (h, w);
                    cols.push(c);
                }
                // Concatenate the im2col patch matrices horizontally and
                // multiply once; each sample's columns are untouched by
                // its neighbours.
                let k = cols[0].shape()[0];
                let p = oh * ow;
                let mut big = vec![0.0f32; k * n * p];
                for (s, c) in cols.iter().enumerate() {
                    for row in 0..k {
                        big[row * n * p + s * p..row * n * p + s * p + p]
                            .copy_from_slice(&c.data()[row * p..(row + 1) * p]);
                    }
                }
                let out = weight.matmul(&Tensor::from_vec(&[k, n * p], big));
                let out_ch = weight.shape()[0];
                (0..n)
                    .map(|s| {
                        let mut data = vec![0.0f32; out_ch * p];
                        for (o, chunk) in data.chunks_mut(p).enumerate() {
                            chunk.copy_from_slice(
                                &out.data()[o * n * p + s * p..o * n * p + s * p + p],
                            );
                            for v in chunk.iter_mut() {
                                *v += bias[o];
                            }
                        }
                        Tensor::from_vec(&[out_ch, oh, ow], data)
                    })
                    .collect()
            }
            Layer::Linear { weight, bias, .. } => {
                let (out_dim, inp) = (weight.shape()[0], weight.shape()[1]);
                let n = xs.len();
                let mut rhs = vec![0.0f32; inp * n];
                for (s, x) in xs.iter().enumerate() {
                    assert_eq!(x.shape().len(), 1, "linear input must be flat");
                    assert_eq!(x.len(), inp, "linear input size");
                    for (k, &v) in x.data().iter().enumerate() {
                        rhs[k * n + s] = v;
                    }
                }
                let y = weight.matmul(&Tensor::from_vec(&[inp, n], rhs));
                (0..n)
                    .map(|s| {
                        let data = (0..out_dim)
                            .map(|o| y.data()[o * n + s] + bias[o])
                            .collect();
                        Tensor::from_vec(&[out_dim], data)
                    })
                    .collect()
            }
            Layer::Residual { body, shortcut } => {
                let mut main = xs.to_vec();
                for l in body {
                    main = l.forward_batch(&main);
                }
                let mut sc = xs.to_vec();
                for l in shortcut {
                    sc = l.forward_batch(&sc);
                }
                main.iter()
                    .zip(&sc)
                    .map(|(a, b)| {
                        assert_eq!(a.shape(), b.shape(), "residual shape mismatch");
                        let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
                        Tensor::from_vec(a.shape(), data)
                    })
                    .collect()
            }
            _ => xs.iter().map(|x| self.forward(x)).collect(),
        }
    }

    /// Number of stored weights (excluding biases and batch-norm
    /// parameters) — what the paper counts as DNN "parameters" for storage.
    pub fn weight_count(&self) -> usize {
        match self {
            Layer::Conv2d { weight, .. } | Layer::Linear { weight, .. } => weight.len(),
            Layer::Residual { body, shortcut } => {
                body.iter().chain(shortcut).map(Layer::weight_count).sum()
            }
            _ => 0,
        }
    }

    /// Whether this layer participates in backprop training (residual and
    /// batch-norm layers are forward-only in this substrate).
    pub fn supports_backprop(&self) -> bool {
        !matches!(
            self,
            Layer::Residual { .. } | Layer::BatchNorm2d { .. } | Layer::AvgPoolGlobal
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -0.5]);
        let y = Layer::ReLU.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn linear_computes_affine() {
        let l = Layer::Linear {
            name: "fc".into(),
            weight: Tensor::from_vec(&[2, 3], vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]),
            bias: vec![1.0, -1.0],
        };
        let y = l.forward(&Tensor::from_vec(&[3], vec![2.0, 4.0, 6.0]));
        assert_eq!(y.data(), &[2.0 - 6.0 + 1.0, 6.0 - 1.0]);
    }

    #[test]
    fn conv_geometry_and_bias() {
        let mut l = Layer::conv2d("c1", 2, 1, 3, 1, 1);
        if let Layer::Conv2d { bias, .. } = &mut l {
            bias[1] = 5.0;
        }
        let y = l.forward(&Tensor::zeros(&[1, 8, 8]));
        assert_eq!(y.shape(), &[2, 8, 8]);
        // Zero weights: channel 0 all zero, channel 1 all bias.
        assert!(y.data()[..64].iter().all(|&v| v == 0.0));
        assert!(y.data()[64..].iter().all(|&v| v == 5.0));
    }

    #[test]
    fn maxpool_takes_window_max() {
        let x = Tensor::from_vec(&[1, 2, 4], vec![1.0, 2.0, 5.0, 0.0, 3.0, 4.0, -1.0, 6.0]);
        let y = Layer::MaxPool2.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[4.0, 6.0]);
    }

    #[test]
    fn global_avg_pool() {
        let x = Tensor::from_vec(&[2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]);
        let y = Layer::AvgPoolGlobal.forward(&x);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn flatten_reshapes() {
        let x = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(Layer::Flatten.forward(&x).shape(), &[24]);
    }

    #[test]
    fn batchnorm_normalizes_channel() {
        let l = Layer::BatchNorm2d {
            gamma: vec![2.0],
            beta: vec![1.0],
            mean: vec![3.0],
            var: vec![4.0],
        };
        let x = Tensor::from_vec(&[1, 1, 2], vec![3.0, 7.0]);
        let y = l.forward(&x);
        assert!((y.data()[0] - 1.0).abs() < 1e-4); // (3-3)/2*2+1
        assert!((y.data()[1] - 5.0).abs() < 1e-3); // (7-3)/2*2+1
    }

    #[test]
    fn residual_identity_shortcut_adds_input() {
        let block = Layer::Residual {
            body: vec![Layer::ReLU],
            shortcut: vec![],
        };
        let x = Tensor::from_vec(&[3], vec![-2.0, 0.0, 3.0]);
        let y = block.forward(&x);
        assert_eq!(y.data(), &[-2.0, 0.0, 6.0]);
    }

    #[test]
    fn weight_count_recurses_residual() {
        let block = Layer::Residual {
            body: vec![Layer::conv2d("a", 4, 4, 3, 1, 1), Layer::ReLU],
            shortcut: vec![Layer::conv2d("b", 4, 4, 1, 1, 0)],
        };
        assert_eq!(block.weight_count(), 4 * 4 * 9 + 4 * 4);
    }

    #[test]
    #[should_panic(expected = "even dims")]
    fn maxpool_rejects_odd_dims() {
        Layer::MaxPool2.forward(&Tensor::zeros(&[1, 3, 4]));
    }
}
