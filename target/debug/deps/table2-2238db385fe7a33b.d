/root/repo/target/debug/deps/table2-2238db385fe7a33b.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-2238db385fe7a33b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
