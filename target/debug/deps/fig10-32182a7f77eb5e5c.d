/root/repo/target/debug/deps/fig10-32182a7f77eb5e5c.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-32182a7f77eb5e5c: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
