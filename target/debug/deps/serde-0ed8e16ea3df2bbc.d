/root/repo/target/debug/deps/serde-0ed8e16ea3df2bbc.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-0ed8e16ea3df2bbc: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
