/root/repo/target/debug/deps/fig2-53ad8e562b70a294.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-53ad8e562b70a294: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
