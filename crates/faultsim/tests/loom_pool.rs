//! Model checks of the WorkerPool's condvar protocol and the CancelToken
//! handoff, run under `cargo xtask loom` (`RUSTFLAGS="--cfg loom"`).
//!
//! With `--cfg loom` the pool's Mutex/Condvar/atomics swap to the
//! vendored loom polyfill: every acquisition, wake-up, and atomic access
//! injects a seeded pseudo-random yield or spin, and `loom::model` runs
//! each closure across many distinct perturbation seeds. This is
//! randomized-schedule stress, not exhaustive DPOR (see DESIGN.md §11) —
//! a failure is always a real schedule, a pass is strong evidence.
//!
//! The scenarios pin the pool's three load-bearing windows:
//! - enqueue vs. park: a caller pushing jobs while workers are between
//!   the queue check and the condvar wait must not strand a job;
//! - completion vs. wait: the scope's last job waking the parked caller
//!   must not be lost (the `wake_all` lock-then-notify closes this);
//! - shutdown vs. drain: dropping the pool while workers race the
//!   shutdown flag must join every thread.

#![cfg(loom)]

use maxnvm_faultsim::engine::WorkerPool;
use maxnvm_faultsim::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn enqueue_wakeup_returns_every_result_in_order() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let out = pool.scope_map(8, |i| i * 3);
        assert_eq!(out, (0..8).map(|i| i * 3).collect::<Vec<_>>());
    });
}

#[test]
fn parked_caller_is_woken_by_its_last_job() {
    // One job, two workers: the caller usually finds the queue already
    // drained and must park until the worker's completion wake-up. A
    // lost wake-up hangs this test rather than failing an assert, so a
    // pass also certifies the notify protocol's liveness.
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let out = pool.scope_map(1, |i| i + 41);
        assert_eq!(out, vec![41]);
    });
}

#[test]
fn nested_scopes_stay_live_with_one_worker() {
    loom::model(|| {
        let pool = WorkerPool::new(1);
        let total: usize = pool
            .scope_map(3, |i| {
                pool.scope_map(3, |j| i * 3 + j).iter().sum::<usize>()
            })
            .iter()
            .sum();
        assert_eq!(total, (0..9).sum());
    });
}

#[test]
fn shutdown_joins_workers_racing_the_flag() {
    loom::model(|| {
        let pool = WorkerPool::new(3);
        // Leave some work in flight right up to the drop so workers are
        // caught at every point of their loop: running a job, checking
        // the queue, checking shutdown, or parked.
        let _ = pool.scope_map(5, |i| i);
        drop(pool); // must join all three threads, never hang
    });
}

#[test]
fn cancel_handoff_skips_cleanly_mid_scope() {
    // A second thread fires the token while the scope is running. Every
    // index must settle as exactly Some (ran before the cancel landed)
    // or None (skipped after), with no slot lost either way — and the
    // scope must terminate regardless of where the store interleaves
    // with the per-job token checks.
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let cancel = CancelToken::new();
        let fired = cancel.clone();
        let canceller = loom::thread::spawn(move || fired.cancel());
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let out = pool.scope_map_cancellable(16, &cancel, move |_| {
            ran2.fetch_add(1, Ordering::Relaxed);
        });
        canceller.join().expect("canceller thread");
        let produced = out.iter().filter(|slot| slot.is_some()).count();
        assert_eq!(out.len(), 16);
        assert_eq!(produced, ran.load(Ordering::Relaxed));
    });
}

#[test]
fn pre_fired_token_runs_nothing() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = pool.scope_map_cancellable(8, &cancel, |i| i);
        assert!(out.iter().all(Option::is_none));
    });
}
