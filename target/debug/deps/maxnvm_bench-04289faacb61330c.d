/root/repo/target/debug/deps/maxnvm_bench-04289faacb61330c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/maxnvm_bench-04289faacb61330c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
