/root/repo/target/debug/deps/rand-ff118d04fcc641a6.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ff118d04fcc641a6.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ff118d04fcc641a6.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
