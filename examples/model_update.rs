//! Over-the-air model updates on an eNVM-backed edge device — the §7.1
//! discussion turned into a deployment planner: for each technology, is a
//! given update cadence feasible on write time, endurance, *and* retention?
//!
//! ```sh
//! cargo run --example model_update
//! ```

use maxnvm::{optimal_design, CellTechnology};
use maxnvm_dnn::zoo;
use maxnvm_envm::retention::{years_to_rate, RetentionParams};
use maxnvm_envm::{EnduranceModel, MlcConfig, WriteModel};

fn main() {
    let model = zoo::resnet50();
    println!(
        "Deployment planner: {} on an eNVM-backed edge accelerator\n",
        model.name
    );
    let target_lifetime_years = 5.0;
    let cadences: [(&str, f64); 4] = [
        ("hourly", 3600.0),
        ("daily", 24.0 * 3600.0),
        ("weekly", 7.0 * 24.0 * 3600.0),
        ("monthly", 30.44 * 24.0 * 3600.0),
    ];

    for tech in CellTechnology::ALL {
        let design = optimal_design(&model, tech).expect("design");
        let write = WriteModel::for_tech(tech);
        let endurance = EnduranceModel::for_tech(tech);
        let write_s = write.total_write_time_s(design.cells);
        println!(
            "== {} ({} @ {} bits/cell, {:.1}M cells, {:.2}mm2) ==",
            tech.name(),
            design.scheme_label,
            design.max_bits_per_cell,
            design.cells as f64 / 1e6,
            design.array.area_mm2
        );
        println!(
            "  full-model rewrite: {}   downtime per update",
            WriteModel::format_duration(write_s)
        );
        let cfg = MlcConfig::new(design.max_bits_per_cell).expect("valid bpc");
        let retention_horizon = years_to_rate(tech, &tech.cell_model(cfg), 1e-3);
        println!(
            "  retention horizon:  {:.1} years until MLC misread rates reach 1e-3",
            retention_horizon
        );
        print!("  update cadences ({}y life):", target_lifetime_years);
        for (label, interval) in cadences {
            let ok = endurance.rewrite_feasible(design.cells, interval, target_lifetime_years);
            // An update also refreshes the stored levels, resetting drift:
            // cadence must also beat the retention horizon.
            let refreshed = interval / (365.25 * 24.0 * 3600.0) < retention_horizon;
            print!("  {label}:{}", if ok && refreshed { "yes" } else { "NO" });
        }
        println!("\n");
    }
    println!("Takeaways (§7.1): RRAM variants accept any practical cadence; CTT's");
    println!("minutes-long, endurance-limited writes suit weekly/monthly updates —");
    println!("and its superior retention is what makes those long gaps safe. The");
    println!("drift-refresh coupling is this reproduction's extension: an update");
    println!("doubles as a retention refresh, so slow-retaining cells *want* the");
    println!("frequent updates their endurance permits.");

    // Show the retention-vs-update tension concretely for Opt MLC-RRAM.
    let tech = CellTechnology::OptMlcRram;
    let cell = tech.cell_model(MlcConfig::MLC3);
    let p = RetentionParams::for_tech(tech);
    println!("\nOpt MLC-RRAM MLC3 misread rate vs time since last write:");
    for months in [1u32, 6, 12, 24, 60] {
        let years = months as f64 / 12.0;
        let rate = p.age(&cell, years).fault_map().worst_adjacent_rate();
        println!("  {months:>3} months: {rate:.2e}");
    }
}
