/root/repo/target/release/deps/maxnvm-cab13c33e79a6fde.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libmaxnvm-cab13c33e79a6fde.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libmaxnvm-cab13c33e79a6fde.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
