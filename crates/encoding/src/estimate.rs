//! Analytic size/cell estimators mirroring the concrete encoders, so
//! ImageNet-scale models (Table 2, Fig. 6, Fig. 8) can be sized without
//! materializing hundreds of megabytes of weights.
//!
//! The estimators are exact for matrices whose column count fits the
//! relative-index width (no CSR padding entries) — verified against the
//! concrete encoders in tests.

use crate::bitmask::sync_counter_bits_for;
use crate::csr::{bit_width, col_idx_bits_for};
use crate::storage::StorageScheme;
use crate::{EncodingKind, StructureKind, IDXSYNC_BLOCK_BITS};
use maxnvm_dnn::zoo::ModelSpec;
use maxnvm_ecc::BlockCodec;
use serde::{Deserialize, Serialize};

/// The shape facts the estimators need about one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerGeometry {
    /// Matrix rows.
    pub rows: u64,
    /// Matrix columns.
    pub cols: u64,
    /// Non-zero weights after pruning.
    pub nnz: u64,
}

impl LayerGeometry {
    /// Geometry from a layer size and an overall sparsity target.
    pub fn from_sparsity(rows: u64, cols: u64, sparsity: f64) -> Self {
        assert!((0.0..=1.0).contains(&sparsity), "sparsity out of range");
        let total = rows * cols;
        Self {
            rows,
            cols,
            nnz: ((total as f64) * (1.0 - sparsity)).round() as u64,
        }
    }
}

/// Bits per structure for one encoded layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeBreakdown {
    /// `(structure, bits)` pairs, including the centroid LUT.
    pub per_structure: Vec<(StructureKind, u64)>,
}

impl SizeBreakdown {
    /// Total bits across all structures.
    pub fn total_bits(&self) -> u64 {
        self.per_structure.iter().map(|(_, b)| b).sum()
    }

    /// Bits for one structure (0 if absent).
    pub fn bits_for(&self, kind: StructureKind) -> u64 {
        self.per_structure
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, b)| *b)
            .unwrap_or(0)
    }
}

/// Raw encoded bits for a layer under an encoding strategy (§3.2),
/// excluding ECC overhead (that is applied per scheme in
/// [`estimate_cells`]).
pub fn encoded_bits(
    geom: LayerGeometry,
    index_bits: u8,
    encoding: EncodingKind,
    idx_sync: bool,
) -> SizeBreakdown {
    encoded_bits_with_block(geom, index_bits, encoding, idx_sync, IDXSYNC_BLOCK_BITS)
}

/// [`encoded_bits`] with an explicit IdxSync block size.
pub fn encoded_bits_with_block(
    geom: LayerGeometry,
    index_bits: u8,
    encoding: EncodingKind,
    idx_sync: bool,
    block_bits: usize,
) -> SizeBreakdown {
    let ib = index_bits as u64;
    let centroid_bits = (1u64 << index_bits) * 16;
    let mut per_structure = match encoding {
        EncodingKind::DenseClustered => {
            vec![(StructureKind::Values, geom.rows * geom.cols * ib)]
        }
        EncodingKind::Csr => {
            let density = geom.nnz as f64 / (geom.rows * geom.cols).max(1) as f64;
            let w = col_idx_bits_for(geom.cols.max(1), density);
            // Expected padding entries for geometric gaps: a gap of g
            // zeros inserts floor(g / 2^w) pad entries; summing the tail
            // probabilities gives q/(1-q) extra entries per non-zero with
            // q = (1-d)^(2^w).
            let q = (1.0 - density).powi(1 << w);
            let entries = (geom.nnz as f64 * (1.0 + q / (1.0 - q).max(1e-12))).round() as u64;
            vec![
                (StructureKind::Values, entries * ib),
                (StructureKind::ColIndex, entries * w as u64),
                (
                    StructureKind::RowCounter,
                    geom.rows * bit_width(geom.cols) as u64,
                ),
            ]
        }
        EncodingKind::BitMask => {
            let mut v = vec![
                (StructureKind::Mask, geom.rows * geom.cols),
                (StructureKind::Values, geom.nnz * ib),
            ];
            if idx_sync {
                let blocks = (geom.rows * geom.cols).div_ceil(block_bits as u64);
                v.push((
                    StructureKind::SyncCounter,
                    blocks * sync_counter_bits_for(block_bits) as u64,
                ));
            }
            v
        }
    };
    per_structure.push((StructureKind::Centroids, centroid_bits));
    SizeBreakdown { per_structure }
}

/// Memory cells needed to store a layer under a full scheme, including ECC
/// expansion and per-structure bits-per-cell (matches
/// `StoredLayer::total_cells` exactly when no CSR padding occurs and the
/// centroid table is full).
pub fn estimate_cells(geom: LayerGeometry, index_bits: u8, scheme: &StorageScheme) -> u64 {
    let breakdown = encoded_bits_with_block(
        geom,
        index_bits,
        scheme.encoding,
        scheme.idx_sync,
        scheme.sync_block_bits,
    );
    breakdown
        .per_structure
        .iter()
        .map(|&(kind, bits)| {
            if kind == StructureKind::Centroids {
                return bits; // SLC, 1 bit per cell
            }
            let stored = if scheme.ecc.covers(kind) && bits > 0 {
                BlockCodec::new(scheme.ecc_code).encoded_len(bits as usize) as u64
            } else {
                bits
            };
            stored.div_ceil(scheme.bpc.for_kind(kind).bits() as u64)
        })
        .sum()
}

/// Total encoded bits for a whole model spec (Table 2's size columns):
/// applies the model's Table 2 sparsity uniformly across layers.
pub fn model_bits(spec: &ModelSpec, encoding: EncodingKind, idx_sync: bool) -> u64 {
    spec.layers
        .iter()
        .map(|l| {
            let geom =
                LayerGeometry::from_sparsity(l.rows as u64, l.cols as u64, spec.paper.sparsity);
            encoded_bits(geom, spec.paper.cluster_index_bits, encoding, idx_sync).total_bits()
        })
        .sum()
}

/// Total memory cells for a whole model under one scheme.
pub fn model_cells(spec: &ModelSpec, scheme: &StorageScheme) -> u64 {
    spec.layers
        .iter()
        .map(|l| {
            let geom =
                LayerGeometry::from_sparsity(l.rows as u64, l.cols as u64, spec.paper.sparsity);
            estimate_cells(geom, spec.paper.cluster_index_bits, scheme)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusteredLayer;
    use crate::storage::{EccScope, StoredLayer};
    use maxnvm_dnn::network::LayerMatrix;
    use maxnvm_dnn::zoo;
    use maxnvm_envm::MlcConfig;
    use rand::{Rng, SeedableRng};

    /// A clustered layer whose centroid table is full (all 2^bits values
    /// used) so the estimator's centroid accounting matches exactly.
    fn full_clustered(
        rows: usize,
        cols: usize,
        sparsity: f64,
        bits: u8,
        seed: u64,
    ) -> ClusteredLayer {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = (1usize << bits) - 1;
        let data = (0..rows * cols)
            .map(|i| {
                if i >= rows * cols - k {
                    // guarantee every cluster value appears
                    (i as f32) * 10.0 + 1.0
                } else if rng.gen::<f64>() < sparsity {
                    0.0
                } else {
                    rng.gen_range(1..=k) as f32 * 10.0
                }
            })
            .collect();
        ClusteredLayer::from_matrix(&LayerMatrix::new("t", rows, cols, data), bits, seed)
    }

    #[test]
    fn estimator_matches_concrete_encoder() {
        // Dense and BitMask estimates are exact; CSR uses an expected-
        // padding model, so it must agree within a fraction of a percent.
        for seed in 0..3u64 {
            let c = full_clustered(24, 200, 0.7, 4, seed);
            let geom = LayerGeometry {
                rows: 24,
                cols: 200,
                nnz: c.nonzeros() as u64,
            };
            for enc in EncodingKind::ALL {
                for bpc in MlcConfig::ALL {
                    for idx_sync in [false, true] {
                        for ecc in [EccScope::None, EccScope::Metadata] {
                            let mut scheme = StorageScheme::uniform(enc, bpc);
                            scheme.idx_sync = idx_sync;
                            scheme.ecc = ecc;
                            let concrete = StoredLayer::store(&c, &scheme).total_cells();
                            let est = estimate_cells(geom, 4, &scheme);
                            if enc == EncodingKind::Csr {
                                let rel = (est as f64 - concrete as f64).abs() / concrete as f64;
                                assert!(
                                    rel < 0.01,
                                    "{enc} {bpc} ecc={ecc:?} seed={seed}: est {est} vs {concrete}"
                                );
                            } else {
                                assert_eq!(
                                    est, concrete,
                                    "{enc} {bpc} sync={idx_sync} ecc={ecc:?} seed={seed}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn table2_sizes_reproduce_paper_shape() {
        // Table 2 (MB): LeNet5 P+C 316KB / CSR 84KB / BitM 107KB;
        // VGG16 P+C 101MB / CSR 30.2MB / BitM 35.5MB;
        // ResNet50 P+C 30.6MB / CSR 25.1MB / BitM 11.2MB.
        let mb = |bits: u64| bits as f64 / 8.0 / 1024.0 / 1024.0;

        let lenet = zoo::lenet5();
        let pc = mb(model_bits(&lenet, EncodingKind::DenseClustered, false));
        let csr = mb(model_bits(&lenet, EncodingKind::Csr, false));
        let bm = mb(model_bits(&lenet, EncodingKind::BitMask, false));
        // LeNet5: CSR smallest, P+C largest.
        assert!(csr < bm && bm < pc, "LeNet5: {csr} {bm} {pc}");
        assert!(
            (pc - 316.0 / 1024.0).abs() / (316.0 / 1024.0) < 0.15,
            "P+C {pc}MB"
        );

        let vgg16 = zoo::vgg16();
        let pc = mb(model_bits(&vgg16, EncodingKind::DenseClustered, false));
        let csr = mb(model_bits(&vgg16, EncodingKind::Csr, false));
        let bm = mb(model_bits(&vgg16, EncodingKind::BitMask, false));
        assert!((pc - 101.0).abs() < 8.0, "VGG16 P+C {pc}MB vs 101MB");
        assert!((csr - 30.2).abs() < 16.0, "VGG16 CSR {csr}MB vs 30.2MB");
        assert!((bm - 35.5).abs() < 5.0, "VGG16 BitM {bm}MB vs 35.5MB");

        let resnet = zoo::resnet50();
        let pc = mb(model_bits(&resnet, EncodingKind::DenseClustered, false));
        let csr = mb(model_bits(&resnet, EncodingKind::Csr, false));
        let bm = mb(model_bits(&resnet, EncodingKind::BitMask, false));
        // ResNet50: BitMask clearly smallest (Table 2: 11.2 vs 25.1/30.6).
        assert!(bm < csr && bm < pc, "ResNet50: {bm} {csr} {pc}");
    }

    #[test]
    fn idxsync_overhead_is_small() {
        let geom = LayerGeometry::from_sparsity(4096, 4096, 0.8);
        let with = encoded_bits(geom, 6, EncodingKind::BitMask, true).total_bits();
        let without = encoded_bits(geom, 6, EncodingKind::BitMask, false).total_bits();
        let overhead = with as f64 / without as f64 - 1.0;
        assert!(
            overhead > 0.0 && overhead < 0.01,
            "IdxSync overhead {overhead}"
        );
    }

    #[test]
    fn from_sparsity_rounds_counts() {
        let g = LayerGeometry::from_sparsity(10, 10, 0.25);
        assert_eq!(g.nnz, 75);
    }

    #[test]
    fn csr_beats_dense_only_when_sparse_enough() {
        // The relative overhead of CSR varies with sparsity (§3.2.1): at
        // low sparsity dense P+C is smaller, at high sparsity CSR wins.
        let dense_geom = LayerGeometry::from_sparsity(256, 256, 0.2);
        let sparse_geom = LayerGeometry::from_sparsity(256, 256, 0.9);
        let csr_low = encoded_bits(dense_geom, 6, EncodingKind::Csr, false).total_bits();
        let pc_low = encoded_bits(dense_geom, 6, EncodingKind::DenseClustered, false).total_bits();
        assert!(
            csr_low > pc_low,
            "low sparsity: CSR {csr_low} vs P+C {pc_low}"
        );
        let csr_high = encoded_bits(sparse_geom, 6, EncodingKind::Csr, false).total_bits();
        let pc_high =
            encoded_bits(sparse_geom, 6, EncodingKind::DenseClustered, false).total_bits();
        assert!(
            csr_high < pc_high,
            "high sparsity: CSR {csr_high} vs P+C {pc_high}"
        );
    }
}
