/root/repo/target/debug/deps/fault_injection-c5a251121b3f82ae.d: crates/bench/benches/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-c5a251121b3f82ae: crates/bench/benches/fault_injection.rs

crates/bench/benches/fault_injection.rs:
