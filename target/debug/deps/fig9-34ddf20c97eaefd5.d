/root/repo/target/debug/deps/fig9-34ddf20c97eaefd5.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-34ddf20c97eaefd5: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
