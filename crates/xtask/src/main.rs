//! Workspace automation entry point (`cargo xtask <command>`).
//!
//! Commands:
//! - `lint [--json [PATH]] [--update-semantics-lock [--same-version]]`
//!   — run the `maxnvm-lint` static analysis pass (DESIGN.md §11, §16).
//!   Exits non-zero on any non-allow-listed violation. `--json`
//!   additionally writes a machine-readable report (default
//!   `maxnvm-lint-report.json` at the workspace root).
//!   `--update-semantics-lock` regenerates `semantics.lock` before
//!   linting; it refuses to re-fingerprint changed modules at an
//!   unchanged `TRIAL_SEMANTICS_VERSION` unless `--same-version`
//!   records that the change was reviewed as value-preserving.
//! - `miri [--strict]` — run the sanctioned Miri suite (`bits`, `ecc`,
//!   `envm` unit tests plus the pool transmute test). Skips with a
//!   warning when the Miri component is not installed, unless
//!   `--strict`.
//! - `loom` — build and run the `--cfg loom` model checks of the
//!   WorkerPool and `CancelToken` handoff.
//! - `deny [--strict]` — run `cargo deny check` if cargo-deny is
//!   installed; otherwise skip with a warning, unless `--strict`.

mod graph;
mod lint;
mod scan;
mod semantics;

use std::env;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&root, &args[1..]),
        Some("miri") => cmd_miri(&root, args.iter().any(|a| a == "--strict")),
        Some("loom") => cmd_loom(&root),
        Some("deny") => cmd_deny(&root, args.iter().any(|a| a == "--strict")),
        Some(other) => {
            eprintln!("unknown xtask command {other:?}");
            eprintln!("usage: cargo xtask <lint [--json [PATH]] [--update-semantics-lock [--same-version]] | miri [--strict] | loom | deny [--strict]>");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <lint [--json [PATH]] [--update-semantics-lock [--same-version]] | miri [--strict] | loom | deny [--strict]>");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn cmd_lint(root: &Path, args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--update-semantics-lock") {
        let same_version = args.iter().any(|a| a == "--same-version");
        match semantics::update(root, same_version) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = lint::run(root);
    print!("{}", report.render_text());
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(pos + 1)
            .filter(|a| !a.starts_with("--"))
            .map(PathBuf::from)
            .unwrap_or_else(|| root.join("maxnvm-lint-report.json"));
        match std::fs::write(&path, report.render_json()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_miri(root: &Path, strict: bool) -> ExitCode {
    let available = Command::new("cargo")
        .args(["miri", "--version"])
        .current_dir(root)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false);
    if !available {
        let msg = "miri is not installed (rustup component add miri)";
        if strict {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
        eprintln!("warning: SKIPPED miri suite — {msg}");
        return ExitCode::SUCCESS;
    }
    // The sanctioned suite: pure bit-level crates end to end, plus the
    // pool's lifetime-erasing transmute exercised under the borrow
    // tracker. Kept small: Miri runs ~100x slower than native.
    run_all(
        root,
        &[
            &["miri", "test", "-p", "maxnvm-bits"],
            &["miri", "test", "-p", "maxnvm-ecc"],
            &["miri", "test", "-p", "maxnvm-envm", "--lib", "gray"],
            &[
                "miri",
                "test",
                "-p",
                "maxnvm-faultsim",
                "--lib",
                "engine::pool::tests::transmute_",
            ],
        ],
    )
}

fn cmd_loom(root: &Path) -> ExitCode {
    // The vendored loom polyfill is a regular dependency, so the model
    // checks build offline; `--cfg loom` swaps the pool's primitives to
    // the schedule-perturbing versions and enables the model tests.
    let mut rustflags = env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("--cfg loom") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg loom");
    }
    let status = Command::new("cargo")
        .args([
            "test",
            "--release",
            "-p",
            "maxnvm-faultsim",
            "--test",
            "loom_pool",
        ])
        .env("RUSTFLAGS", rustflags)
        // Keep the loom artifacts apart from the main cache: RUSTFLAGS
        // changes would otherwise thrash the shared target dir.
        .env("CARGO_TARGET_DIR", root.join("target/loom"))
        .current_dir(root)
        .status();
    exit_of(status)
}

fn cmd_deny(root: &Path, strict: bool) -> ExitCode {
    let available = Command::new("cargo")
        .args(["deny", "--version"])
        .current_dir(root)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false);
    if !available {
        let msg = "cargo-deny is not installed (cargo install cargo-deny)";
        if strict {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
        eprintln!("warning: SKIPPED cargo-deny — {msg}");
        return ExitCode::SUCCESS;
    }
    let status = Command::new("cargo")
        .args(["deny", "check"])
        .current_dir(root)
        .status();
    exit_of(status)
}

fn run_all(root: &Path, commands: &[&[&str]]) -> ExitCode {
    for cmd in commands {
        let status = Command::new("cargo").args(*cmd).current_dir(root).status();
        match status {
            Ok(s) if s.success() => {}
            other => return exit_of(other),
        }
    }
    ExitCode::SUCCESS
}

fn exit_of(status: std::io::Result<std::process::ExitStatus>) -> ExitCode {
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: failed to launch cargo: {e}");
            ExitCode::FAILURE
        }
    }
}
