//! Offline polyfill of `serde_derive`: the derives expand to nothing.
//!
//! The workspace annotates its result/config types with
//! `#[derive(Serialize, Deserialize)]` for downstream consumers, but no
//! code path in this repository performs (de)serialization, so empty
//! expansions keep everything compiling without crates.io access. The
//! `serde(...)` helper attribute is accepted and ignored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
