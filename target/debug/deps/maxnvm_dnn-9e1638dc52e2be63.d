/root/repo/target/debug/deps/maxnvm_dnn-9e1638dc52e2be63.d: crates/dnn/src/lib.rs crates/dnn/src/data.rs crates/dnn/src/layer.rs crates/dnn/src/network.rs crates/dnn/src/rnn.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_dnn-9e1638dc52e2be63.rmeta: crates/dnn/src/lib.rs crates/dnn/src/data.rs crates/dnn/src/layer.rs crates/dnn/src/network.rs crates/dnn/src/rnn.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs Cargo.toml

crates/dnn/src/lib.rs:
crates/dnn/src/data.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/network.rs:
crates/dnn/src/rnn.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/train.rs:
crates/dnn/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
