/root/repo/target/debug/deps/table4-dd4eb1e2db9e9dec.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-dd4eb1e2db9e9dec: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
