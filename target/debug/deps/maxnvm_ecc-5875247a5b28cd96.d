/root/repo/target/debug/deps/maxnvm_ecc-5875247a5b28cd96.d: crates/ecc/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_ecc-5875247a5b28cd96.rlib: crates/ecc/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_ecc-5875247a5b28cd96.rmeta: crates/ecc/src/lib.rs

crates/ecc/src/lib.rs:
