//! Deeply-embedded inference end to end: train a small CNN on synthetic
//! digits, prune + cluster its weights, commit them to simulated MLC-CTT
//! cells, and measure classification error through injected faults — the
//! paper's §4 methodology on a real, runnable network.
//!
//! ```sh
//! cargo run --example embedded_inference
//! ```

use maxnvm_dnn::data::SyntheticDigits;
use maxnvm_dnn::train::{sgd_train, TrainConfig};
use maxnvm_dnn::zoo::{lenet_mini, prune_to_sparsity};
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::campaign::Campaign;
use maxnvm_faultsim::evaluate::{AccuracyEval, NetworkEval};

fn main() {
    // Train the embedded model.
    println!("Training a LeNet-style CNN on 16x16 synthetic digits...");
    let data = SyntheticDigits::generate(1500, 42);
    let mut net = lenet_mini(7);
    let report = sgd_train(
        &mut net,
        &data.train,
        &TrainConfig {
            epochs: 6,
            // 0.005 sits right on this config's divergence edge: under
            // the §14 fused-multiply-add semantics this seed's
            // trajectory tips into a loss spike at epoch 2 and never
            // recovers. 0.004 trains to 0% with margin.
            lr: 0.004,
            momentum: 0.9,
            seed: 1,
        },
    )
    .expect("trainable topology");
    println!("  final train error {:.2}%", report.train_error * 100.0);

    // Prune (magnitude), retrain briefly (the paper prunes *with*
    // retraining, §3.1.2), re-prune to restore the zeros, then cluster.
    let mut mats = net.weight_matrices();
    for m in &mut mats {
        prune_to_sparsity(&mut m.data, 0.6);
    }
    net.set_weight_matrices(&mats);
    sgd_train(
        &mut net,
        &data.train,
        &TrainConfig {
            epochs: 2,
            lr: 0.002,
            momentum: 0.9,
            seed: 2,
        },
    )
    .expect("trainable topology");
    let mut mats = net.weight_matrices();
    for m in &mut mats {
        prune_to_sparsity(&mut m.data, 0.6);
    }
    net.set_weight_matrices(&mats);
    let eval = NetworkEval::new(net, data.test);
    println!(
        "  pruned test error {:.2}% ({} weights)",
        eval.baseline_error() * 100.0,
        mats.iter().map(|m| m.data.len()).sum::<usize>()
    );
    let clustered: Vec<ClusteredLayer> = mats
        .iter()
        .map(|m| ClusteredLayer::from_matrix(m, 4, 5))
        .collect();

    // Commit to MLC-CTT under two storage schemes and inject faults.
    let tech = CellTechnology::MlcCtt;
    let sa = SenseAmp::paper_default();
    // Scale fault rates so expected fault counts match a full-size
    // LeNet5 deployment (the stand-in has ~160x fewer cells).
    let campaign = Campaign {
        trials: 25,
        seed: 3,
        rate_scale: 160.0,
    };
    println!(
        "\nFault-injection campaigns on {} ({} trials):",
        tech.name(),
        campaign.trials
    );
    println!(
        "{:<34} {:>10} {:>12} {:>12}",
        "scheme", "cells", "mean error", "worst trial"
    );
    for (label, scheme) in [
        (
            "BitMask, all SLC",
            StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::SLC),
        ),
        (
            "BitMask, all MLC3 (unprotected)",
            StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3),
        ),
        (
            "BitM+IdxSync+ECC, MLC3",
            StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3)
                .with_idx_sync()
                .with_ecc(),
        ),
        (
            "CSR+ECC, MLC3",
            StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3).with_ecc(),
        ),
    ] {
        let stored: Vec<StoredLayer> = clustered
            .iter()
            .map(|c| StoredLayer::store(c, &scheme))
            .collect();
        let cells: u64 = stored.iter().map(StoredLayer::total_cells).sum();
        let result = campaign.run(&stored, tech, &sa, &eval).expect("campaign");
        println!(
            "{:<34} {:>10} {:>11.2}% {:>11.2}%",
            label,
            cells,
            result.mean_error * 100.0,
            result.max_error * 100.0
        );
    }
    println!("\nMLC3 cuts the cell count ~3x. Unprotected, the bitmask's misalignment");
    println!("cascades destroy accuracy; IdxSync/ECC confine the damage, leaving only");
    println!("the (unprotected) weight values' small residual at this exaggerated rate.");
}
