//! A stored layer as one manufactured-and-programmed chip sees it.

use super::codec::FixedReadCodec;
use super::layer::StoredLayer;
use super::structure::DecodeStats;
use maxnvm_dnn::network::LayerMatrix;

/// A [`StoredLayer`] as one manufactured-and-programmed chip sees it:
/// the analog outcome of programming is fixed, so decoding is
/// deterministic and repeated reads agree — the paper's per-trial fault
/// map semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgrammedLayer {
    stored: StoredLayer,
    read_cells: Vec<Vec<u8>>,
}

impl ProgrammedLayer {
    pub(crate) fn new(stored: StoredLayer, read_cells: Vec<Vec<u8>>) -> Self {
        Self { stored, read_cells }
    }

    /// Number of cells whose programmed level reads back wrong on this
    /// chip instance.
    pub fn fault_count(&self) -> usize {
        self.stored
            .structures
            .iter()
            .zip(&self.read_cells)
            .map(|(s, reads)| s.cells.iter().zip(reads).filter(|(a, b)| a != b).count())
            .sum()
    }

    /// Decodes the chip's (fixed) read values.
    pub fn decode(&self) -> (LayerMatrix, DecodeStats) {
        let (m, mut stats) = self
            .stored
            .decode_with_codec(&mut FixedReadCodec::new(&self.read_cells));
        stats.cell_faults = self.fault_count();
        (m, stats)
    }
}
