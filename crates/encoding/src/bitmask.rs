//! NVDLA-style bitmask sparse encoding, "BitM" (§3.2.2), with the paper's
//! proposed IdxSync error-mitigation counters (§3.3, Fig. 4).
//!
//! A one-bit-per-weight mask marks non-zeros; the non-zero cluster indices
//! are stored packed in order. A single mask-bit fault changes the number
//! of ones seen so far, so *every subsequent value* is mis-assigned during
//! reconstruction — the paper's most vulnerable structure. IdxSync stores,
//! per 128-byte-aligned mask block, a counter of the expected non-zeros;
//! at each block boundary the decoder resynchronizes its value-array read
//! pointer to the running counter sum, confining the damage to one block.

use crate::cluster::ClusteredLayer;
use crate::csr::bit_width;
use crate::{StructureKind, IDXSYNC_BLOCK_BITS};
use maxnvm_bits::{BitBuffer, BitReader};
use serde::{Deserialize, Serialize};

/// A bitmask-encoded layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitMaskLayer {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Bits per cluster-index value.
    pub index_bits: u8,
    /// One bit per weight, row-major.
    pub mask: BitBuffer,
    /// Non-zero cluster indices in mask order.
    pub values: Vec<u16>,
    /// Mask bits per IdxSync block (the paper's 128-byte alignment =
    /// [`IDXSYNC_BLOCK_BITS`]; small stand-in models may scale it down).
    pub block_bits: usize,
    /// IdxSync: non-zeros per mask block, if enabled.
    pub counters: Option<Vec<u16>>,
}

/// Bits per IdxSync counter: enough to count every bit in a block.
pub fn sync_counter_bits_for(block_bits: usize) -> u8 {
    bit_width(block_bits as u64)
}

/// Bits per IdxSync counter at the paper's default block size.
pub fn sync_counter_bits() -> u8 {
    sync_counter_bits_for(IDXSYNC_BLOCK_BITS)
}

impl BitMaskLayer {
    /// Encodes a clustered layer; `idx_sync` adds the per-block counters.
    pub fn encode(layer: &ClusteredLayer, idx_sync: bool) -> Self {
        Self::encode_with_block(layer, idx_sync, IDXSYNC_BLOCK_BITS)
    }

    /// Encodes with an explicit IdxSync block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_bits == 0`.
    pub fn encode_with_block(layer: &ClusteredLayer, idx_sync: bool, block_bits: usize) -> Self {
        assert!(block_bits > 0, "empty IdxSync block");
        let total = layer.rows * layer.cols;
        let mut mask = BitBuffer::with_capacity(total);
        let mut values = Vec::with_capacity(layer.nonzeros());
        for &i in &layer.indices {
            mask.push_bit(i != 0);
            if i != 0 {
                values.push(i);
            }
        }
        let counters = idx_sync.then(|| {
            let nblocks = total.div_ceil(block_bits);
            (0..nblocks)
                .map(|b| {
                    let start = b * block_bits;
                    let end = (start + block_bits).min(total);
                    (start..end).filter(|&i| mask.get(i) == Some(true)).count() as u16
                })
                .collect()
        });
        Self {
            rows: layer.rows,
            cols: layer.cols,
            index_bits: layer.index_bits,
            mask,
            values,
            block_bits,
            counters,
        }
    }

    /// Number of stored non-zero values.
    pub fn nonzeros(&self) -> usize {
        self.values.len()
    }

    /// Number of IdxSync blocks covering the mask.
    pub fn num_blocks(&self) -> usize {
        (self.rows * self.cols).div_ceil(self.block_bits)
    }

    /// Serializes the structures into independent bit streams.
    pub fn to_streams(&self) -> Vec<(StructureKind, BitBuffer)> {
        let mut out = Vec::new();
        out.push((StructureKind::Mask, self.mask.clone()));
        let mut vals = BitBuffer::with_capacity(self.values.len() * self.index_bits as usize);
        for &v in &self.values {
            vals.push_bits(v as u64, self.index_bits as usize);
        }
        out.push((StructureKind::Values, vals));
        if let Some(counters) = &self.counters {
            let cb = sync_counter_bits_for(self.block_bits) as usize;
            let mut c = BitBuffer::with_capacity(counters.len() * cb);
            for &v in counters {
                c.push_bits(v as u64, cb);
            }
            out.push((StructureKind::SyncCounter, c));
        }
        out
    }

    /// Rebuilds from (possibly fault-corrupted) streams. `nonzeros` is the
    /// true stored value count (fixed by array sizing).
    #[allow(clippy::too_many_arguments)]
    pub fn from_streams(
        rows: usize,
        cols: usize,
        index_bits: u8,
        nonzeros: usize,
        block_bits: usize,
        mask: &BitBuffer,
        values: &BitBuffer,
        counters: Option<&BitBuffer>,
    ) -> Self {
        let total = rows * cols;
        // The mask stream is exactly total bits (shorter only if the caller
        // truncated it; pad with zeros defensively).
        let mut m = BitBuffer::with_capacity(total);
        for i in 0..total {
            m.push_bit(mask.get(i).unwrap_or(false));
        }
        let mut vr = BitReader::new(values);
        let vals: Vec<u16> = (0..nonzeros)
            .map(|_| vr.read_bits(index_bits as usize).unwrap_or(0) as u16)
            .collect();
        let ctrs = counters.map(|cbuf| {
            let cb = sync_counter_bits_for(block_bits) as usize;
            let nblocks = total.div_ceil(block_bits);
            let mut cr = BitReader::new(cbuf);
            (0..nblocks)
                .map(|_| cr.read_bits(cb).unwrap_or(0) as u16)
                .collect()
        });
        Self {
            rows,
            cols,
            index_bits,
            mask: m,
            values: vals,
            block_bits,
            counters: ctrs,
        }
    }

    /// Reconstructs the dense cluster-index matrix, reproducing the mask's
    /// misalignment-propagation failure mode — or, with IdxSync, the
    /// per-block resynchronization of Fig. 4.
    pub fn reconstruct_indices(&self) -> Vec<u16> {
        let total = self.rows * self.cols;
        let mut out = vec![0u16; total];
        match &self.counters {
            None => {
                let mut ptr = 0usize;
                #[allow(clippy::needless_range_loop)]
                for i in 0..total {
                    if self.mask.get(i) == Some(true) {
                        out[i] = self.values.get(ptr).copied().unwrap_or(0);
                        ptr += 1;
                    }
                }
            }
            Some(counters) => {
                // IdxSync: reset the read pointer at every block boundary
                // to the running sum of the *stored* counters. Faults in
                // the current block stay in the current block (Fig. 4).
                let mut base = 0usize;
                for (b, &cnt) in counters.iter().enumerate() {
                    let start = b * self.block_bits;
                    let end = (start + self.block_bits).min(total);
                    let mut ptr = base;
                    #[allow(clippy::needless_range_loop)]
                    for i in start..end {
                        if self.mask.get(i) == Some(true) {
                            out[i] = self.values.get(ptr).copied().unwrap_or(0);
                            ptr += 1;
                        }
                    }
                    base += cnt as usize;
                }
            }
        }
        out
    }

    /// Walks the stored non-zeros in mask order, calling
    /// `f(row, col, value)` for each set mask bit whose stored cluster
    /// index is non-zero — without materializing the dense index matrix.
    /// The mask is scanned in 64-bit groups and all-zero groups are
    /// skipped wholesale, so the walk is O(mask words + non-zeros).
    ///
    /// Assumes self-consistent (clean) metadata: the value pointer is the
    /// running set-bit count, which equals the IdxSync block bases when
    /// the counters are clean — the mapping
    /// [`Self::reconstruct_indices`] uses either way.
    pub fn for_each_nonzero(&self, mut f: impl FnMut(usize, usize, u16)) {
        let total = self.rows * self.cols;
        let mut ptr = 0usize;
        let mut base = 0usize;
        while base < total {
            let width = 64.min(total - base);
            let mut word = self.mask.read_at(base, width).unwrap_or(0);
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let i = base + bit;
                let v = self.values.get(ptr).copied().unwrap_or(0);
                ptr += 1;
                if v != 0 {
                    f(i / self.cols, i % self.cols, v);
                }
            }
            base += width;
        }
    }

    /// The output-matrix slot each stored value writes during
    /// [`Self::reconstruct_indices`]: value `j` lands at the position of
    /// the `j`-th set mask bit (`u32::MAX` when the mask has fewer set
    /// bits than stored values). Meaningful under a clean mask and clean
    /// counters, where the IdxSync block bases equal the running set-bit
    /// count and the mapping is identical with or without counters.
    pub fn entry_slots(&self) -> Vec<u32> {
        let total = self.rows * self.cols;
        let mut out = vec![u32::MAX; self.values.len()];
        let mut ptr = 0usize;
        for i in 0..total {
            if ptr >= out.len() {
                break;
            }
            if self.mask.get(i) == Some(true) {
                out[ptr] = i as u32;
                ptr += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_dnn::network::LayerMatrix;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn clustered(rows: usize, cols: usize, sparsity: f64, seed: u64) -> ClusteredLayer {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen::<f64>() < sparsity {
                    0.0
                } else {
                    rng.gen::<f32>() + 0.1
                }
            })
            .collect();
        ClusteredLayer::from_matrix(&LayerMatrix::new("t", rows, cols, data), 4, seed)
    }

    fn round_trip(c: &ClusteredLayer, idx_sync: bool) -> Vec<u16> {
        let enc = BitMaskLayer::encode(c, idx_sync);
        let streams = enc.to_streams();
        let counters = streams
            .iter()
            .find(|(k, _)| *k == StructureKind::SyncCounter)
            .map(|(_, b)| b);
        let dec = BitMaskLayer::from_streams(
            c.rows,
            c.cols,
            c.index_bits,
            enc.nonzeros(),
            enc.block_bits,
            &streams[0].1,
            &streams[1].1,
            counters,
        );
        dec.reconstruct_indices()
    }

    #[test]
    fn clean_round_trip_without_idxsync() {
        let c = clustered(8, 32, 0.6, 1);
        assert_eq!(round_trip(&c, false), c.indices);
    }

    #[test]
    fn clean_round_trip_with_idxsync() {
        let c = clustered(20, 100, 0.8, 2);
        assert_eq!(round_trip(&c, true), c.indices);
    }

    #[test]
    fn counters_sum_to_nonzeros() {
        let c = clustered(30, 70, 0.5, 3);
        let enc = BitMaskLayer::encode(&c, true);
        let total: usize = enc
            .counters
            .as_ref()
            .unwrap()
            .iter()
            .map(|&x| x as usize)
            .sum();
        assert_eq!(total, enc.nonzeros());
        assert_eq!(enc.counters.as_ref().unwrap().len(), enc.num_blocks());
    }

    #[test]
    fn mask_fault_propagates_without_idxsync() {
        // §4.2: a single bit flip in the bitmask mis-assigns all remaining
        // non-zero values during reconstruction.
        let c = clustered(4, 1024, 0.5, 4); // 4 blocks of mask
        let mut enc = BitMaskLayer::encode(&c, false);
        let clean = enc.reconstruct_indices();
        // Flip a mask bit early in block 0 (turn a zero into a "non-zero").
        let flip = (0..200)
            .find(|&i| enc.mask.get(i) == Some(false))
            .expect("a zero bit early on");
        enc.mask.toggle(flip);
        let bad = enc.reconstruct_indices();
        // Damage must extend into the final block (far from the flip).
        let last_quarter = 3 * 1024;
        assert_ne!(
            &bad[last_quarter..],
            &clean[last_quarter..],
            "mask fault should propagate to the end"
        );
    }

    #[test]
    fn idxsync_confines_mask_fault_to_its_block() {
        // Fig. 4: IdxSync corrects misalignment in subsequent blocks.
        let c = clustered(4, 1024, 0.5, 5);
        let mut enc = BitMaskLayer::encode(&c, true);
        let clean = enc.reconstruct_indices();
        let flip = (0..200)
            .find(|&i| enc.mask.get(i) == Some(false))
            .expect("a zero bit early on");
        enc.mask.toggle(flip);
        let bad = enc.reconstruct_indices();
        // Block 0 (bits 0..1024) is corrupted...
        assert_ne!(&bad[..1024], &clean[..1024]);
        // ...but all later blocks decode exactly as before.
        assert_eq!(
            &bad[1024..],
            &clean[1024..],
            "IdxSync must stop propagation at the block boundary"
        );
    }

    #[test]
    fn counter_fault_shifts_only_subsequent_blocks() {
        let c = clustered(4, 1024, 0.5, 6);
        let mut enc = BitMaskLayer::encode(&c, true);
        let clean = enc.reconstruct_indices();
        enc.counters.as_mut().unwrap()[1] += 1;
        let bad = enc.reconstruct_indices();
        // Blocks 0 and 1 use the same base pointers as before.
        assert_eq!(&bad[..2048], &clean[..2048]);
        // Blocks 2+ read from a shifted base.
        assert_ne!(&bad[2048..], &clean[2048..]);
    }

    #[test]
    fn all_zero_layer() {
        let m = LayerMatrix::new("z", 4, 64, vec![0.0; 256]);
        let c = ClusteredLayer::from_matrix(&m, 4, 1);
        assert_eq!(round_trip(&c, true), vec![0u16; 256]);
        assert_eq!(BitMaskLayer::encode(&c, false).nonzeros(), 0);
    }

    #[test]
    fn sync_counter_width_covers_block() {
        // A block of 1024 mask bits can hold up to 1024 non-zeros.
        assert!(sync_counter_bits() as u32 >= 11);
        assert!((1u32 << sync_counter_bits()) > IDXSYNC_BLOCK_BITS as u32);
    }

    #[test]
    fn walk_matches_reconstruction() {
        for (rows, cols, sparsity, idx_sync) in [
            (8, 32, 0.6, false),
            (20, 100, 0.8, true),
            (3, 200, 0.95, true),
        ] {
            let c = clustered(rows, cols, sparsity, 9);
            let enc = BitMaskLayer::encode(&c, idx_sync);
            let mut walked = Vec::new();
            enc.for_each_nonzero(|r, cc, v| walked.push((r, cc, v)));
            let expect: Vec<(usize, usize, u16)> = enc
                .reconstruct_indices()
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0)
                .map(|(i, &v)| (i / cols, i % cols, v))
                .collect();
            assert_eq!(walked, expect, "{rows}x{cols} @ {sparsity}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_walk_matches_reconstruction(
            rows in 1usize..8,
            cols in 1usize..200,
            sparsity in 0.0f64..0.99,
            seed in any::<u64>(),
            idx_sync in any::<bool>(),
        ) {
            let c = clustered(rows, cols, sparsity, seed);
            let enc = BitMaskLayer::encode(&c, idx_sync);
            let mut walked = Vec::new();
            enc.for_each_nonzero(|r, cc, v| walked.push((r, cc, v)));
            let expect: Vec<(usize, usize, u16)> = enc
                .reconstruct_indices()
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0)
                .map(|(i, &v)| (i / cols, i % cols, v))
                .collect();
            prop_assert_eq!(walked, expect);
        }

        #[test]
        fn prop_round_trip(
            rows in 1usize..8,
            cols in 1usize..200,
            sparsity in 0.0f64..0.99,
            seed in any::<u64>(),
            idx_sync in any::<bool>(),
        ) {
            let c = clustered(rows, cols, sparsity, seed);
            prop_assert_eq!(round_trip(&c, idx_sync), c.indices);
        }

        #[test]
        fn prop_single_mask_flip_with_idxsync_never_escapes_block(
            seed in any::<u64>(),
            flip in any::<prop::sample::Index>(),
        ) {
            let c = clustered(3, 1024, 0.6, seed);
            let mut enc = BitMaskLayer::encode(&c, true);
            let clean = enc.reconstruct_indices();
            let pos = flip.index(3 * 1024);
            enc.mask.toggle(pos);
            let bad = enc.reconstruct_indices();
            let block = pos / IDXSYNC_BLOCK_BITS;
            for b in 0..3 {
                let range = b * 1024..(b + 1) * 1024;
                if b != block {
                    prop_assert_eq!(&bad[range.clone()], &clean[range], "block {} corrupted", b);
                }
            }
        }
    }
}
