//! The compressed weight representation the inference path computes on.
//!
//! MaxNVM stores weights sparse-encoded in eNVM (CSR, BitMask+IdxSync);
//! this module is the compute-side twin of those storage formats: a
//! row-major CSR matrix of f32 weights that the GEMM kernels in
//! [`crate::gemm`] consume directly, so a decoded layer never has to be
//! materialized dense just to run inference.
//!
//! # Bit-exactness with the dense path (rule D1)
//!
//! Every GEMM accumulator in this crate starts at `+0.0` and adds terms
//! in ascending-`k` order. Under IEEE-754 round-to-nearest a running sum
//! that starts at `+0.0` can never become `-0.0`: adding `±0.0` to `+0.0`
//! yields `+0.0`, and exact cancellation of nonzero terms also yields
//! `+0.0`. Adding a `±0.0` term to such an accumulator is therefore a
//! bitwise no-op, so *skipping* every term whose weight is exactly zero —
//! which is all the sparse path does — reproduces the dense result bit
//! for bit, provided the right-hand side is finite (a non-finite
//! activation would turn a skipped `0.0 × x` into a propagating `NaN` on
//! the dense path only). The parity tests in [`crate::gemm`] and the
//! fault-injection evaluators lock this equality.
//!
//! Stored entries are always nonzero: builders drop exact-`±0.0` values,
//! and [`SparseMatrix::with_deltas`] removes entries a fault delta sets
//! to zero, so `nnz` is the true nonzero count.

use crate::network::{LayerMatrix, WeightDelta};

/// A row-major CSR matrix of f32 weights: for each row, ascending column
/// indices and their (nonzero) values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `rows + 1` entry offsets into `col_idx` / `values`.
    row_starts: Vec<u32>,
    /// Column index per stored entry, ascending within each row.
    col_idx: Vec<u32>,
    /// Stored entry values, never exactly `±0.0`.
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Builds from a dense row-major slice, dropping exact-zero entries
    /// (both signs).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_dense(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "dense data shape mismatch");
        Self::from_entries(
            rows,
            cols,
            data.iter().enumerate().map(|(slot, &v)| (slot as u32, v)),
        )
    }

    /// Builds from a dense [`LayerMatrix`].
    pub fn from_matrix(m: &LayerMatrix) -> Self {
        Self::from_dense(m.rows, m.cols, &m.data)
    }

    /// Builds from `(slot, value)` entries in strictly ascending slot
    /// order (row-major positions; this is exactly the order the
    /// encoding run-walks emit). Exact-zero values are dropped.
    ///
    /// # Panics
    ///
    /// Panics if a slot is out of range or not strictly ascending.
    pub fn from_entries(
        rows: usize,
        cols: usize,
        entries: impl IntoIterator<Item = (u32, f32)>,
    ) -> Self {
        let mut row_starts = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_starts.push(0u32);
        let mut filled = 0usize; // rows whose start offset is recorded
        let mut prev: Option<u32> = None;
        for (slot, v) in entries {
            assert!(
                (slot as usize) < rows * cols,
                "entry slot {slot} out of range for {rows}x{cols}"
            );
            assert!(
                prev.is_none_or(|p| p < slot),
                "entry slots must be strictly ascending"
            );
            prev = Some(slot);
            if v == 0.0 {
                continue;
            }
            let r = slot as usize / cols;
            while filled < r {
                row_starts.push(col_idx.len() as u32);
                filled += 1;
            }
            col_idx.push(slot % cols as u32);
            values.push(v);
        }
        while filled < rows {
            row_starts.push(col_idx.len() as u32);
            filled += 1;
        }
        Self {
            rows,
            cols,
            row_starts,
            col_idx,
            values,
        }
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored (nonzero) entry count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Achieved density `nnz / (rows * cols)`; `0.0` for an empty shape.
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Row `r`'s entries: ascending column indices and their values.
    // maxnvm-lint: allow(R1/index-arith): the constructor guarantees rows+1 monotone row_starts entries; an out-of-range r hits the slice bound panic, and r+1 cannot wrap before it does.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (a, b) = (self.row_starts[r] as usize, self.row_starts[r + 1] as usize);
        (&self.col_idx[a..b], &self.values[a..b])
    }

    /// Entries per `KC`-sized column block (`blocks = cols.div_ceil(kc)`),
    /// used by the sparse GEMM to elide packing for all-zero k-panels.
    pub fn kblock_nnz(&self, kc: usize, out: &mut Vec<u32>) {
        out.clear();
        out.resize(self.cols.div_ceil(kc.max(1)), 0);
        for &c in &self.col_idx {
            out[c as usize / kc.max(1)] += 1;
        }
    }

    /// Materializes the dense row-major matrix (zeros filled in).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.to_dense_into(&mut out);
        out
    }

    /// Materializes into a reusable buffer (resized and zero-filled),
    /// so the GEMM density cutover can densify without allocating in
    /// the trial loop.
    // maxnvm-lint: allow(R1/index-arith): out is resized to rows*cols above and the CSR invariant keeps c < cols, so r*cols+c is in range.
    pub fn to_dense_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.rows * self.cols, 0.0);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out[r * self.cols + c as usize] = v;
            }
        }
    }

    /// A copy with slot-sorted fault `deltas` merged into the runs:
    /// existing entries are replaced, new nonzero entries inserted, and
    /// entries a delta sets to exact zero removed — so the result equals
    /// `from_dense` of the dense matrix with the same deltas applied.
    /// O(nnz + deltas).
    ///
    /// `deltas` must be slot-ascending and deduped (the form
    /// `PreparedLayer` produces) and within the matrix shape.
    pub fn with_deltas(&self, deltas: &[WeightDelta]) -> Self {
        let mut out = Self {
            rows: self.rows,
            cols: self.cols,
            row_starts: Vec::with_capacity(self.rows + 1),
            col_idx: Vec::with_capacity(self.col_idx.len() + deltas.len()),
            values: Vec::with_capacity(self.values.len() + deltas.len()),
        };
        out.row_starts.push(0);
        let mut d = 0usize;
        for r in 0..self.rows {
            let row_base = r * self.cols;
            let row_end = row_base + self.cols;
            let (cols, vals) = self.row(r);
            let mut e = 0usize;
            while d < deltas.len() && (deltas[d].slot as usize) < row_end {
                let dc = deltas[d].slot as usize - row_base;
                while e < cols.len() && (cols[e] as usize) < dc {
                    out.col_idx.push(cols[e]);
                    out.values.push(vals[e]);
                    e += 1;
                }
                if e < cols.len() && cols[e] as usize == dc {
                    e += 1; // replaced (or removed, if the delta is zero)
                }
                if deltas[d].value != 0.0 {
                    out.col_idx.push(dc as u32);
                    out.values.push(deltas[d].value);
                }
                d += 1;
            }
            out.col_idx.extend_from_slice(&cols[e..]);
            out.values.extend_from_slice(&vals[e..]);
            out.row_starts.push(out.col_idx.len() as u32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dense_case() -> (usize, usize, Vec<f32>) {
        let (rows, cols) = (3, 5);
        let data = vec![
            0.0, 1.5, 0.0, -2.0, 0.0, //
            0.0, 0.0, 0.0, 0.0, 0.0, //
            3.0, 0.0, -0.0, 0.25, 7.0,
        ];
        (rows, cols, data)
    }

    #[test]
    fn round_trips_and_skips_zeros_of_both_signs() {
        let (rows, cols, data) = dense_case();
        let s = SparseMatrix::from_dense(rows, cols, &data);
        assert_eq!(s.nnz(), 5, "-0.0 must be dropped too");
        assert_eq!(s.density(), 5.0 / 15.0);
        // -0.0 round-trips as +0.0: bitwise harmless for the GEMM path
        // (see the module doc) and required for nnz to mean "nonzero".
        let back = s.to_dense();
        for (i, (&a, &b)) in back.iter().zip(&data).enumerate() {
            if b == 0.0 {
                assert_eq!(a.to_bits(), 0.0f32.to_bits(), "slot {i}");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "slot {i}");
            }
        }
    }

    #[test]
    fn row_access_is_ascending() {
        let (rows, cols, data) = dense_case();
        let s = SparseMatrix::from_dense(rows, cols, &data);
        assert_eq!(s.row(0), (&[1u32, 3][..], &[1.5f32, -2.0][..]));
        assert_eq!(s.row(1).0, &[] as &[u32]);
        assert_eq!(s.row(2), (&[0u32, 3, 4][..], &[3.0f32, 0.25, 7.0][..]));
    }

    #[test]
    fn empty_shapes_are_total() {
        for (r, c) in [(0, 0), (0, 4), (4, 0)] {
            let s = SparseMatrix::from_dense(r, c, &vec![0.0; r * c]);
            assert_eq!(s.nnz(), 0);
            assert_eq!(s.density(), 0.0);
            assert_eq!(s.to_dense().len(), r * c);
        }
    }

    #[test]
    fn all_zero_matrix_round_trips() {
        let s = SparseMatrix::from_dense(4, 6, &[0.0; 24]);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.to_dense(), vec![0.0; 24]);
        for r in 0..4 {
            assert!(s.row(r).0.is_empty());
        }
    }

    #[test]
    fn kblock_nnz_buckets_columns() {
        let (rows, cols, data) = dense_case();
        let s = SparseMatrix::from_dense(rows, cols, &data);
        let mut blocks = Vec::new();
        s.kblock_nnz(2, &mut blocks);
        // cols {1,3,0,3,4} -> blocks {0:2, 1:2 (two col-3 entries... )}
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks.iter().sum::<u32>(), s.nnz() as u32);
        assert_eq!(blocks, vec![2, 2, 1]);
    }

    fn apply_dense(data: &[f32], deltas: &[WeightDelta]) -> Vec<f32> {
        let mut out = data.to_vec();
        for d in deltas {
            out[d.slot as usize] = d.value;
        }
        out
    }

    #[test]
    fn with_deltas_replaces_inserts_and_removes() {
        let (rows, cols, data) = dense_case();
        let s = SparseMatrix::from_dense(rows, cols, &data);
        let deltas = vec![
            WeightDelta {
                slot: 1,
                value: 9.0, // replace
            },
            WeightDelta {
                slot: 2,
                value: -4.0, // insert
            },
            WeightDelta {
                slot: 10,
                value: 0.0, // remove
            },
        ];
        let patched = s.with_deltas(&deltas);
        let expect = SparseMatrix::from_dense(rows, cols, &apply_dense(&data, &deltas));
        assert_eq!(patched, expect);
        assert_eq!(patched.nnz(), 5, "one insert, one removal");
        // The original is untouched.
        assert_eq!(s.nnz(), 5);
    }

    #[test]
    fn with_no_deltas_is_identity() {
        let (rows, cols, data) = dense_case();
        let s = SparseMatrix::from_dense(rows, cols, &data);
        assert_eq!(s.with_deltas(&[]), s);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_with_deltas_matches_dense_application(
            rows in 1usize..6,
            cols in 1usize..12,
            seed in any::<u64>(),
            sparsity in 0.0f64..1.0,
            ndeltas in 0usize..8,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let data: Vec<f32> = (0..rows * cols)
                .map(|_| {
                    if rng.gen::<f64>() < sparsity {
                        0.0
                    } else {
                        rng.gen::<f32>() - 0.5
                    }
                })
                .collect();
            let mut slots: Vec<u32> = (0..(rows * cols) as u32).collect();
            // Deterministic partial shuffle, then sort the chosen slots.
            for i in (1..slots.len()).rev() {
                let j = rng.gen_range(0..=i);
                slots.swap(i, j);
            }
            let mut chosen: Vec<u32> = slots.into_iter().take(ndeltas.min(rows * cols)).collect();
            chosen.sort_unstable();
            let deltas: Vec<WeightDelta> = chosen
                .into_iter()
                .map(|slot| WeightDelta {
                    slot,
                    value: if rng.gen::<f64>() < 0.3 { 0.0 } else { rng.gen::<f32>() - 0.5 },
                })
                .collect();
            let s = SparseMatrix::from_dense(rows, cols, &data);
            let patched = s.with_deltas(&deltas);
            let expect = SparseMatrix::from_dense(rows, cols, &apply_dense(&data, &deltas));
            prop_assert_eq!(patched, expect);
        }
    }
}
