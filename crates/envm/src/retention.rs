//! Retention modeling: how stored levels drift over the deployment
//! lifetime.
//!
//! The paper's companion device study (Ma et al. \[46\], which Fig. 2 draws
//! from) demonstrates "reliable long-term retention" for CTT; RRAM
//! filaments relax more visibly. Retention loss appears as (a) a slow
//! drift of programmed level means toward the unprogrammed state and
//! (b) a widening of the level distributions — both of which grow the
//! adjacent-level overlap that sets the fault rates. This module applies
//! a log-time drift law to a [`CellModel`] so campaigns can be run "at
//! age T".

use crate::level::{CellModel, LevelDistribution};
use crate::tech::CellTechnology;
use serde::{Deserialize, Serialize};

/// Per-technology retention parameters (log-time drift law:
/// `Δ = coefficient × log10(1 + t/t0)` with `t0` = 1 hour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionParams {
    /// Fractional mean drift toward the erased state per decade of time.
    pub mean_drift_per_decade: f64,
    /// Fractional sigma growth per decade of time.
    pub sigma_growth_per_decade: f64,
}

impl RetentionParams {
    /// Published-behaviour-shaped defaults per technology: CTT retains
    /// charge in the gate stack (very slow drift); RRAM filaments relax
    /// faster; the aggressively scaled cell faster still.
    pub fn for_tech(tech: CellTechnology) -> Self {
        match tech {
            CellTechnology::MlcCtt => Self {
                mean_drift_per_decade: 0.002,
                sigma_growth_per_decade: 0.01,
            },
            CellTechnology::MlcRram | CellTechnology::SlcRram => Self {
                mean_drift_per_decade: 0.004,
                sigma_growth_per_decade: 0.015,
            },
            CellTechnology::OptMlcRram => Self {
                mean_drift_per_decade: 0.005,
                sigma_growth_per_decade: 0.018,
            },
        }
    }

    /// Applies `years` of drift to a cell model: programmed means relax
    /// toward level 0's mean, sigmas widen. Thresholds are kept where the
    /// sense amps were trimmed at time zero — drift is exactly what the
    /// references do *not* track.
    ///
    /// # Panics
    ///
    /// Panics if `years < 0`.
    pub fn age(&self, cell: &CellModel, years: f64) -> CellModel {
        assert!(years >= 0.0, "negative age");
        if years == 0.0 {
            return cell.clone();
        }
        let hours = years * 365.25 * 24.0;
        let decades = (1.0 + hours).log10();
        let erased_mean = cell.levels()[0].mean;
        let levels: Vec<LevelDistribution> = cell
            .levels()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == 0 {
                    *l
                } else {
                    let drift = (l.mean - erased_mean) * self.mean_drift_per_decade * decades;
                    LevelDistribution::new(
                        l.mean - drift,
                        l.sigma * (1.0 + self.sigma_growth_per_decade * decades),
                    )
                }
            })
            .collect();
        CellModel::with_thresholds(levels, cell.thresholds().to_vec())
    }
}

/// Years until the worst adjacent-level misread rate of an aged cell
/// crosses `rate_limit` (bisection over a 0–50-year window; returns 50.0
/// if it never crosses).
pub fn years_to_rate(tech: CellTechnology, cell: &CellModel, rate_limit: f64) -> f64 {
    let params = RetentionParams::for_tech(tech);
    let rate_at = |y: f64| params.age(cell, y).fault_map().worst_adjacent_rate();
    if rate_at(50.0) <= rate_limit {
        return 50.0;
    }
    if rate_at(0.0) >= rate_limit {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 50.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if rate_at(mid) <= rate_limit {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::MlcConfig;

    #[test]
    fn zero_age_is_identity() {
        let cell = CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3);
        let aged = RetentionParams::for_tech(CellTechnology::MlcCtt).age(&cell, 0.0);
        assert_eq!(aged, cell);
    }

    #[test]
    fn aging_monotonically_raises_fault_rates() {
        let cell = CellTechnology::MlcRram.cell_model(MlcConfig::MLC3);
        let p = RetentionParams::for_tech(CellTechnology::MlcRram);
        let mut last = cell.fault_map().worst_adjacent_rate();
        for years in [0.1, 1.0, 5.0, 10.0] {
            let rate = p.age(&cell, years).fault_map().worst_adjacent_rate();
            assert!(rate > last, "rate must grow with age: {rate} at {years}y");
            last = rate;
        }
    }

    #[test]
    fn ctt_retains_longer_than_rram() {
        // [46]: CTT's gate-stack charge storage retains markedly better
        // than RRAM filaments.
        let limit = 1e-3;
        let ctt = years_to_rate(
            CellTechnology::MlcCtt,
            &CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3),
            limit,
        );
        let opt = years_to_rate(
            CellTechnology::OptMlcRram,
            &CellTechnology::OptMlcRram.cell_model(MlcConfig::MLC3),
            limit,
        );
        assert!(ctt > opt, "CTT {ctt}y vs Opt RRAM {opt}y");
    }

    #[test]
    fn ten_year_retention_holds_for_all_mlc3_techs() {
        // The deployment story (§5.3: devices that sit powered off between
        // inferences) needs the levels to stay readable for years.
        for tech in [
            CellTechnology::MlcCtt,
            CellTechnology::MlcRram,
            CellTechnology::OptMlcRram,
        ] {
            let cell = tech.cell_model(MlcConfig::MLC3);
            let aged = RetentionParams::for_tech(tech).age(&cell, 10.0);
            let rate = aged.fault_map().worst_adjacent_rate();
            assert!(
                rate < 5e-3,
                "{tech}: 10-year MLC3 rate {rate} would break the DSE budget"
            );
        }
    }

    #[test]
    fn erased_level_does_not_drift() {
        let cell = CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3);
        let aged = RetentionParams::for_tech(CellTechnology::MlcCtt).age(&cell, 10.0);
        assert_eq!(aged.levels()[0], cell.levels()[0]);
        // Programmed levels moved toward erased.
        assert!(aged.levels()[7].mean < cell.levels()[7].mean);
    }
}
