/root/repo/target/release/deps/maxnvm_dnn-12bf56b9cece0083.d: crates/dnn/src/lib.rs crates/dnn/src/data.rs crates/dnn/src/layer.rs crates/dnn/src/network.rs crates/dnn/src/rnn.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/release/deps/libmaxnvm_dnn-12bf56b9cece0083.rlib: crates/dnn/src/lib.rs crates/dnn/src/data.rs crates/dnn/src/layer.rs crates/dnn/src/network.rs crates/dnn/src/rnn.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/release/deps/libmaxnvm_dnn-12bf56b9cece0083.rmeta: crates/dnn/src/lib.rs crates/dnn/src/data.rs crates/dnn/src/layer.rs crates/dnn/src/network.rs crates/dnn/src/rnn.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/data.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/network.rs:
crates/dnn/src/rnn.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/train.rs:
crates/dnn/src/zoo.rs:
