//! The evaluation engine: shared precomputed fault state plus a
//! persistent worker pool behind every campaign and design-space sweep.
//!
//! A Monte-Carlo evaluation repeats three kinds of work: deriving fault
//! maps from the cell models (identical for every trial of a
//! technology), sparse-encoding the layers (identical for every scheme
//! that only differs in protection), and the per-trial inject → decode
//! → evaluate loop (embarrassingly parallel). [`EvalContext`] hoists
//! the first out of the trial loop — one pre-scaled [`FaultMap`] per
//! bits-per-cell, shared by `Arc` — and schedules the third onto a
//! process-wide [`WorkerPool`]; [`EvalContext::run_dse`] additionally
//! shares raw encodes *and clean decodes* across candidate schemes
//! through an [`EncodeCache`].
//!
//! The trial loop itself is O(expected faults + dirty suffix), not
//! O(cells × test set): each stored layer is wrapped in a
//! [`PreparedLayer`] (clean decode cached once, faults sampled sparsely
//! with geometric skips, each trial reduced to a sparse
//! [`WeightDelta`] list against the shared clean decode), and the
//! evaluators consume those deltas through
//! [`AccuracyEval::eval_deltas`] on per-worker [`EvalScratch`] state —
//! [`crate::evaluate::NetworkEval`] patches only the dirty rows of the
//! first fault-touched layer atop a cached clean-prefix forward pass,
//! [`crate::evaluate::ProxyEval`] adjusts a cached MSE numerator —
//! both bit-identical to materializing the faulty matrices. The clean
//! model additionally travels as a [`SparseModel`] — the storage
//! format's compute-side twin — so network evaluations run the sparse
//! GEMM path end to end ([`AccuracyEval::eval_deltas_sparse`]). Chip
//! campaigns ([`EvalContext::run_chips`]) are O(nnz + faults) too: each
//! trial samples only the cells a chip instance mis-programs
//! (`StoredLayer::sample_chip_flips`, RNG-identical to programming the
//! full chip) and reduces them to the same sparse deltas.
//!
//! On top of that sits the **resilience layer** (`*_controlled` entry
//! points taking a [`RunControl`]):
//!
//! - every trial runs under `catch_unwind`, so a panicking trial
//!   becomes a [`TrialOutcome::Failed`] recorded (with its seed) on the
//!   [`CampaignResult`] instead of unwinding the whole sweep;
//! - a [`CancelToken`] — flag or wall-clock deadline — is checked
//!   between trials, turning Ctrl-C or a time budget into a clean
//!   partial result;
//! - a [`CheckpointConfig`] makes the run write atomic
//!   [`CampaignCheckpoint`] snapshots, and an existing snapshot (with a
//!   matching configuration fingerprint) resumes exactly where a killed
//!   process stopped — byte-identical to an uninterrupted run;
//! - an [`EarlyStop`] rule halts a scheme's trials once the Wilson
//!   interval on its error estimate is decisively inside or outside
//!   the iso-training-noise budget (opt-in: fixed budgets stay
//!   byte-identical by default).
//!
//! Determinism is preserved at any worker count: trial `t` always draws
//! from `StdRng::seed_from_u64(seed.wrapping_add(t))` regardless of
//! which worker runs it, results are assembled in trial order, and
//! early-stop decisions are evaluated only at fixed batch boundaries
//! over that ordered prefix — so the engine reproduces its own
//! single-worker run bit for bit.
//!
//! The default pool sizes itself to `std::thread::available_parallelism`
//! and can be overridden with the `MAXNVM_THREADS` environment variable;
//! a malformed or zero override is a typed
//! [`EngineError::InvalidWorkerConfig`] at the API boundary (and a
//! one-time warning + fallback where no error can be returned).

mod error;
mod pool;
mod shard;

pub use error::EngineError;
pub use pool::WorkerPool;
pub use shard::ShardSpec;

use crate::campaign::{wilson_interval, CampaignResult, TrialOutcome};
use crate::cancel::CancelToken;
use crate::checkpoint::{CampaignCheckpoint, CheckpointConfig, Fingerprint};
use crate::dse::{candidate_schemes, DseConfig, DsePoint};
use crate::evaluate::{AccuracyEval, EvalScratch, SparseModel};
use maxnvm_dnn::network::{LayerMatrix, WeightDelta};
use maxnvm_dnn::sparse::SparseMatrix;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::EncodeCacheStats;
use maxnvm_encoding::storage::{DecodeStats, EncodeCache, PreparedLayer, StoredLayer};
use maxnvm_encoding::StructureKind;
use maxnvm_envm::{CellModel, CellTechnology, FaultMap, MlcConfig, SenseAmp};
use parking_lot::Mutex;
use rand::SeedableRng;
use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Once, OnceLock};

/// A checkout pool of reusable [`EvalScratch`] values: each in-flight
/// evaluation pops one (or starts fresh) and pushes it back, so at most
/// `workers + 1` scratch networks ever exist per run, independent of the
/// trial count.
///
/// Every scratch handed out carries the run's [`pool::PoolParallel`]
/// handle, so a single large GEMM inside one trial can fan out over the
/// same worker pool the trials themselves run on (nested scopes are
/// safe; results are byte-identical at any worker count per the fixed
/// column-band ownership in `maxnvm_dnn::gemm`).
struct ScratchPool {
    scratches: Mutex<Vec<EvalScratch>>,
    parallel: Arc<dyn maxnvm_dnn::GemmParallel>,
}

impl ScratchPool {
    fn new(pool: &Arc<WorkerPool>) -> Self {
        Self {
            scratches: Mutex::new(Vec::new()),
            parallel: Arc::new(pool::PoolParallel::new(Arc::clone(pool))),
        }
    }

    /// [`AccuracyEval::eval_deltas_sparse`] on a pooled scratch: the
    /// sparse trial path. `key` identifies which clean configuration the
    /// deltas are against (campaigns use `0`; a DSE keys by candidate
    /// scheme), so a scratch checked out by a different scheme's trial
    /// rebuilds its caches deterministically instead of mixing state.
    fn eval_deltas_sparse(
        &self,
        eval: &(dyn AccuracyEval + Sync),
        key: u64,
        clean: &SparseModel,
        deltas: &[Vec<WeightDelta>],
    ) -> f64 {
        let mut scratch = self.scratches.lock().pop().unwrap_or_default();
        scratch.set_gemm_parallel(Some(Arc::clone(&self.parallel)));
        let error = eval.eval_deltas_sparse(key, clean, deltas, &mut scratch);
        self.scratches.lock().push(scratch);
        error
    }
}

/// Parses a `MAXNVM_THREADS` override: any value that is not a positive
/// integer (after trimming whitespace) is a typed error, never a silent
/// default.
fn parse_workers(raw: &str) -> Result<usize, EngineError> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(EngineError::InvalidWorkerConfig {
            value: raw.to_string(),
        }),
    }
}

/// The validated worker-thread override from the environment:
/// `Ok(None)` when `MAXNVM_THREADS` is unset,
/// [`EngineError::InvalidWorkerConfig`] when it is set but malformed.
pub fn env_workers() -> Result<Option<usize>, EngineError> {
    match std::env::var("MAXNVM_THREADS") {
        Ok(raw) => parse_workers(&raw).map(Some),
        Err(_) => Ok(None),
    }
}

/// The worker count the process-wide pool is built with:
/// `MAXNVM_THREADS` when set to a positive integer, otherwise
/// `std::thread::available_parallelism()`. A malformed override cannot
/// be reported here, so it falls back to the default with a one-time
/// warning on stderr; [`EvalContext::new`] additionally surfaces the
/// typed error at the API boundary.
pub fn default_workers() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    };
    match env_workers() {
        Ok(Some(n)) => n,
        Ok(None) => fallback(),
        Err(e) => {
            static WARN_ONCE: Once = Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("maxnvm: warning: {e}; falling back to available parallelism");
            });
            fallback()
        }
    }
}

/// The process-wide evaluation pool, created on first use.
pub fn global_pool() -> &'static Arc<WorkerPool> {
    static POOL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(WorkerPool::new(default_workers())))
}

/// Stringifies a caught panic payload for [`TrialOutcome::Failed`].
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Adaptive early stopping: end a scheme's trials once the Wilson
/// interval on its mean classification error is *decisively* inside or
/// outside the iso-training-noise acceptance threshold
/// `baseline + itn_bound`.
///
/// The rule is sequential but deterministic: it is evaluated only at
/// multiples of `batch` completed trials, over the trial-ordered prefix
/// of results, so a run stops at the same trial count at any worker
/// count and across checkpoint/resume cycles. It is opt-in — with no
/// `EarlyStop` configured, fixed-budget runs remain byte-identical to
/// the pre-resilience engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EarlyStop {
    /// The model's clean classification error.
    pub baseline: f64,
    /// Iso-training-noise bound (absolute headroom over baseline).
    pub itn_bound: f64,
    /// Critical value for the Wilson interval (default 2.576 ≈ 99%,
    /// deliberately conservative for a repeatedly-peeked sequential
    /// test).
    pub z: f64,
    /// Never decide before this many trials have completed.
    pub min_trials: usize,
    /// Evaluate the rule every `batch` trials (also the scheduling
    /// granularity of an early-stopping run).
    pub batch: usize,
}

impl EarlyStop {
    /// A rule for the given acceptance test with conservative defaults
    /// (`z = 2.576`, `min_trials = 8`, `batch = 8`).
    pub fn new(baseline: f64, itn_bound: f64) -> Self {
        Self {
            baseline,
            itn_bound,
            z: 2.576,
            min_trials: 8,
            batch: 8,
        }
    }

    /// Whether `n` completed trials with mean error `mean` decide the
    /// acceptance test either way.
    pub fn decided(&self, mean: f64, n: usize) -> bool {
        if n < self.min_trials.max(1) {
            return false;
        }
        let (lo, hi) = wilson_interval(mean, n, self.z);
        let threshold = self.baseline + self.itn_bound;
        hi <= threshold || lo > threshold
    }
}

/// How a `*_controlled` run behaves beyond the plain trial budget:
/// cooperative cancellation, checkpoint/resume, and adaptive early
/// stopping. `RunControl::default()` is the plain fixed-budget run.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Checked between trials; firing it (or passing its deadline)
    /// yields a partial result with `cancelled = true`.
    pub cancel: CancelToken,
    /// When set, the run writes atomic snapshots at the configured
    /// cadence and resumes from an existing snapshot whose fingerprint
    /// matches (a mismatch is [`EngineError::CheckpointMismatch`]).
    pub checkpoint: Option<CheckpointConfig>,
    /// When set, trials run in `batch`-sized rounds and stop once the
    /// Wilson interval decides the acceptance test.
    pub early_stop: Option<EarlyStop>,
    /// Fault-injection hook for testing the resilience layer itself:
    /// these trial indices panic instead of evaluating. Folded into the
    /// checkpoint fingerprint so hooked and unhooked runs never mix.
    pub panic_trials: Vec<usize>,
    /// Which slice of the sweep this process runs. The default is the
    /// unsharded layout (everything); shard workers set `index` of
    /// `count` and execute only the (group, trial) pairs the pure
    /// assignment function gives them — with RNG streams identical to
    /// the unsharded run's, so shard outputs merge byte-identically.
    /// The layout is folded into the checkpoint fingerprint, so
    /// resuming a snapshot under a different layout is a typed
    /// [`EngineError::CheckpointMismatch`].
    pub shard: ShardSpec,
    /// Shard checkpoints to preseed this run with before executing
    /// anything: each is loaded, verified against this sweep's base
    /// fingerprint folded with the *snapshot's own* recorded shard
    /// layout, and its completed trials absorbed. Running an unsharded
    /// layout over the sources of a complete N-shard sweep is the merge
    /// operation — no trials re-run, early stopping replays its
    /// decisions over the merged prefix, and the output is
    /// byte-identical to the 1-shard run.
    pub merge_sources: Vec<PathBuf>,
    /// When set, prepared-layer encode/decode artifacts are shared
    /// through this cache (optionally disk-backed for cross-process
    /// sharing between shards); its disk counters are surfaced on the
    /// run's results.
    pub encode_cache: Option<Arc<EncodeCache>>,
}

impl RunControl {
    /// A control that only carries a cancellation token.
    pub fn with_cancel(cancel: CancelToken) -> Self {
        Self {
            cancel,
            ..Self::default()
        }
    }

    /// The disk-layer counters of this control's encode cache (all zero
    /// without one).
    fn cache_stats(&self) -> EncodeCacheStats {
        self.encode_cache
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }
}

/// Per-trial outcomes of one driven run, plus how the run ended.
struct DrivenTrials {
    outcomes: Vec<(usize, TrialOutcome)>,
    stopped_early: bool,
    cancelled: bool,
}

/// The generic resilient trial driver behind every `*_controlled`
/// entry point: runs `group_trials` trials per group (campaigns have
/// one group; a DSE has one per scheme) on `pool`, isolating per-trial
/// panics, honouring `control.cancel`, checkpointing at the configured
/// cadence, and applying the early-stop rule per group at fixed batch
/// boundaries. `trial_fn(group, trial)` must be a pure function of its
/// arguments.
///
/// `fingerprint` is the shard-independent base digest of the run
/// configuration: trial assignment hashes against it, and the
/// checkpoint fingerprint is it with `control.shard` folded on top.
#[allow(clippy::too_many_arguments)]
fn drive_trials(
    pool: &WorkerPool,
    groups: usize,
    group_trials: usize,
    seed: u64,
    control: &RunControl,
    fingerprint: u64,
    label: &str,
    trial_fn: impl Fn(usize, usize) -> (f64, DecodeStats) + Sync,
) -> Result<Vec<DrivenTrials>, EngineError> {
    control.shard.validate()?;
    let shard = control.shard;
    let ckpt_fingerprint = shard.fold_fingerprint(fingerprint);
    // Completed outcomes per group, keyed by trial index so prefix
    // statistics (for the early-stop rule) are well-defined.
    let mut done: Vec<BTreeMap<usize, TrialOutcome>> = vec![BTreeMap::new(); groups];
    if let Some(cp) = &control.checkpoint {
        if cp.store.exists(&cp.path) {
            let snapshot = cp.load_snapshot()?;
            snapshot.verify(ckpt_fingerprint)?;
            for (group, trial, outcome) in snapshot.entries {
                if group < groups && trial < group_trials {
                    done[group].insert(trial, outcome);
                }
            }
        }
    }
    // Preseed with completed shard snapshots: each source is verified
    // against the base fingerprint folded with *its own* recorded
    // layout, so a snapshot from a different configuration — or a
    // mangled shard header — is a typed mismatch, never silently-wrong
    // trials. Duplicate (group, trial) pairs across sources are
    // harmless: trials are pure functions of their index, so any
    // overwrite is byte-identical.
    for source in &control.merge_sources {
        let snapshot = match &control.checkpoint {
            Some(cp) => {
                let mut src = cp.clone();
                src.path = source.clone();
                src.load_snapshot()?
            }
            None => CampaignCheckpoint::load(source)?,
        };
        let src_shard = ShardSpec::of(snapshot.shard_index, snapshot.shard_count);
        src_shard.validate()?;
        snapshot.verify(src_shard.fold_fingerprint(fingerprint))?;
        for (group, trial, outcome) in snapshot.entries {
            if group < groups && trial < group_trials {
                done[group].insert(trial, outcome);
            }
        }
    }
    let batch = match &control.early_stop {
        Some(es) => es.batch.max(1),
        None => match &control.checkpoint {
            Some(cp) => cp.every,
            None => group_trials,
        },
    };
    let outcome_fn = |group: usize, trial: usize| -> TrialOutcome {
        let panic_hook = control.panic_trials.contains(&trial);
        match panic::catch_unwind(AssertUnwindSafe(|| {
            if panic_hook {
                // maxnvm-lint: allow(D2/panic): deliberate test hook — RunControl::panic_trials exists to exercise per-trial panic isolation, and this panic is caught by the catch_unwind just above.
                panic!("injected panic (RunControl::panic_trials test hook) in trial {trial}");
            }
            trial_fn(group, trial)
        })) {
            Ok((error, stats)) => TrialOutcome::Ok { error, stats },
            Err(payload) => TrialOutcome::Failed {
                seed: seed.wrapping_add(trial as u64),
                message: panic_message(payload),
            },
        }
    };
    // Per-group scheduling state: the next batch boundary and whether
    // the early-stop rule has decided the group.
    let mut cursor = vec![0usize; groups];
    let mut group_stopped = vec![false; groups];
    let mut cancelled = false;
    let mut dirty = false; // outcomes not yet flushed to the checkpoint
    let mut since_flush = 0usize;
    loop {
        if control.cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        // Apply the early-stop rule at each group's current boundary,
        // over the trial-ordered prefix below it. Shard workers
        // (count > 1) never decide: their prefix is missing the other
        // shards' trials, so any decision would diverge from the
        // unsharded run's. The merge run — unsharded over the preseeded
        // union — replays the rule over complete prefixes and stops at
        // exactly the trial counts the 1-shard run would have.
        if shard.count == 1 {
            if let Some(es) = &control.early_stop {
                for g in 0..groups {
                    if group_stopped[g] || cursor[g] == 0 {
                        continue;
                    }
                    let (mut sum, mut n) = (0.0f64, 0usize);
                    for (_, outcome) in done[g].range(..cursor[g]) {
                        if let TrialOutcome::Ok { error, .. } = outcome {
                            sum += error;
                            n += 1;
                        }
                    }
                    if n > 0 && es.decided(sum / n as f64, n) {
                        group_stopped[g] = true;
                    }
                }
            }
        }
        // Next round: one batch per still-active group, minus trials a
        // checkpoint already covers and pairs other shards own.
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        for g in 0..groups {
            if group_stopped[g] || cursor[g] >= group_trials {
                continue;
            }
            let end = (cursor[g] + batch).min(group_trials);
            jobs.extend(
                (cursor[g]..end)
                    .filter(|t| !done[g].contains_key(t) && shard.owns(fingerprint, g, *t))
                    .map(|t| (g, t)),
            );
            cursor[g] = end;
        }
        if jobs.is_empty() {
            if (0..groups).all(|g| group_stopped[g] || cursor[g] >= group_trials) {
                break;
            }
            continue; // checkpoint covered the whole round; advance
        }
        let round = pool.scope_map_cancellable(jobs.len(), &control.cancel, |j| {
            let (g, t) = jobs[j];
            outcome_fn(g, t)
        });
        let mut ran = 0usize;
        for (j, slot) in round.into_iter().enumerate() {
            match slot {
                Some(outcome) => {
                    let (g, t) = jobs[j];
                    done[g].insert(t, outcome);
                    ran += 1;
                }
                None => cancelled = true,
            }
        }
        dirty |= ran > 0;
        since_flush += ran;
        if let Some(cp) = &control.checkpoint {
            if dirty && (since_flush >= cp.every || cancelled) {
                save_checkpoint(
                    cp,
                    ckpt_fingerprint,
                    label,
                    groups,
                    group_trials,
                    seed,
                    shard,
                    &done,
                )?;
                dirty = false;
                since_flush = 0;
            }
        }
        if cancelled {
            break;
        }
    }
    if !cancelled {
        // An early-stopped group keeps only the trials below its stop
        // boundary: preseeded sources (a merge, or a resumed snapshot
        // that outran the decision point before being killed) may hold
        // outcomes past it, and an uninterrupted run would never have
        // executed those.
        for g in 0..groups {
            if group_stopped[g] {
                let keep = cursor[g];
                done[g].retain(|t, _| *t < keep);
            }
        }
    }
    if let Some(cp) = &control.checkpoint {
        if cancelled {
            if dirty {
                save_checkpoint(
                    cp,
                    ckpt_fingerprint,
                    label,
                    groups,
                    group_trials,
                    seed,
                    shard,
                    &done,
                )?;
            }
        } else if cp.keep_on_success {
            // Leave a complete snapshot behind: resuming it reproduces
            // the finished result without rerunning anything.
            save_checkpoint(
                cp,
                ckpt_fingerprint,
                label,
                groups,
                group_trials,
                seed,
                shard,
                &done,
            )?;
        } else {
            // A finished campaign must not be accidentally "resumed".
            let _ = cp.store.remove(&cp.path);
        }
    }
    Ok((0..groups)
        .map(|g| DrivenTrials {
            outcomes: std::mem::take(&mut done[g]).into_iter().collect(),
            stopped_early: group_stopped[g],
            cancelled,
        })
        .collect())
}

#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    cp: &CheckpointConfig,
    fingerprint: u64,
    label: &str,
    groups: usize,
    trials: usize,
    seed: u64,
    shard: ShardSpec,
    done: &[BTreeMap<usize, TrialOutcome>],
) -> Result<(), EngineError> {
    let mut snapshot = CampaignCheckpoint::new(fingerprint, label, groups, trials, seed)
        .with_shard(shard.index, shard.count);
    for (g, group) in done.iter().enumerate() {
        for (t, outcome) in group {
            snapshot.record(g, *t, outcome.clone());
        }
    }
    cp.save_snapshot(&snapshot)
}

/// Shared evaluation state for one (technology, sense-amp, rate-scale)
/// configuration: the per-bits-per-cell fault maps (pre-scaled, behind
/// `Arc` so trials share them without copying), the cell models for
/// chip-instance campaigns, and the worker pool evaluations run on.
pub struct EvalContext {
    tech: CellTechnology,
    rate_scale: f64,
    fault_maps: Vec<Arc<FaultMap>>,
    cell_models: Vec<CellModel>,
    pool: Arc<WorkerPool>,
}

impl EvalContext {
    /// A context running on the process-wide pool.
    ///
    /// Errors with [`EngineError::InvalidWorkerConfig`] if
    /// `MAXNVM_THREADS` is set but not a positive integer, with
    /// [`EngineError::InvalidSimdConfig`] if `MAXNVM_FORCE_SCALAR` is
    /// set but not a recognized boolean, and with
    /// [`EngineError::InvalidConfig`] if `MAXNVM_CHECKPOINT_RETRIES` is
    /// set but not a non-negative integer — the bare-library paths
    /// (kernel dispatch, [`crate::checkpoint::RetryPolicy::from_env`])
    /// would fall back with a one-time warning, but the engine boundary
    /// surfaces the typo as a typed error instead.
    pub fn new(tech: CellTechnology, sa: &SenseAmp, rate_scale: f64) -> Result<Self, EngineError> {
        env_workers()?;
        maxnvm_dnn::env_force_scalar()
            .map_err(|e| EngineError::InvalidSimdConfig { value: e.value })?;
        crate::checkpoint::env_checkpoint_retries()?;
        Self::with_pool(tech, sa, rate_scale, Arc::clone(global_pool()))
    }

    /// A context with its own pool of exactly `workers` threads —
    /// mostly for determinism tests pinning the worker count.
    pub fn with_workers(
        tech: CellTechnology,
        sa: &SenseAmp,
        rate_scale: f64,
        workers: usize,
    ) -> Result<Self, EngineError> {
        if workers == 0 {
            return Err(EngineError::NoWorkers);
        }
        Self::with_pool(tech, sa, rate_scale, Arc::new(WorkerPool::new(workers)))
    }

    fn with_pool(
        tech: CellTechnology,
        sa: &SenseAmp,
        rate_scale: f64,
        pool: Arc<WorkerPool>,
    ) -> Result<Self, EngineError> {
        if !rate_scale.is_finite() || rate_scale <= 0.0 {
            return Err(EngineError::InvalidRateScale(rate_scale));
        }
        let mut fault_maps = Vec::with_capacity(3);
        let mut cell_models = Vec::with_capacity(3);
        for cfg in MlcConfig::ALL {
            let b = cfg.bits();
            if b <= tech.max_bits_per_cell() {
                let cell = tech.cell_model(cfg).with_sense_amp(sa);
                fault_maps.push(Arc::new(cell.fault_map().scaled(rate_scale)));
                cell_models.push(cell);
            } else {
                // Storage is validated against the technology, so these
                // entries are never exercised; they keep indexing total.
                fault_maps.push(Arc::new(FaultMap::perfect(cfg.levels())));
                cell_models.push(tech.cell_model(MlcConfig::SLC).with_sense_amp(sa));
            }
        }
        Ok(Self {
            tech,
            rate_scale,
            fault_maps,
            cell_models,
            pool,
        })
    }

    /// The technology this context models.
    pub fn tech(&self) -> CellTechnology {
        self.tech
    }

    /// The fault-rate multiplier the fault maps were scaled with.
    pub fn rate_scale(&self) -> f64 {
        self.rate_scale
    }

    /// Worker threads in this context's pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The per-bits-per-cell fault-map provider (already rate-scaled).
    // maxnvm-lint: allow(R1/index-arith): fault_maps is built over MlcConfig::ALL in bits order, so (bits()-1) indexes the matching slot and bits() >= 1 by construction.
    pub fn fault_for(&self) -> impl Fn(MlcConfig) -> Arc<FaultMap> + '_ {
        move |cfg: MlcConfig| Arc::clone(&self.fault_maps[(cfg.bits() - 1) as usize])
    }

    /// Configuration fingerprint for a run on this context: covers the
    /// run kind, technology, rate scale, trial budget, base seed,
    /// injection target, every stored layer's scheme and cell count,
    /// the evaluator's baseline error, and — because they change what a
    /// resumed trial would produce or when a run stops — the early-stop
    /// parameters and the panic-injection test hook. The trial-semantics
    /// version is folded in by [`Fingerprint::new`].
    #[allow(clippy::too_many_arguments)]
    fn run_fingerprint(
        &self,
        kind: &str,
        trials: usize,
        seed: u64,
        stored: &[StoredLayer],
        target: Option<StructureKind>,
        baseline: f64,
        control: &RunControl,
    ) -> u64 {
        let mut f = Fingerprint::new();
        f.push_str(kind)
            .push_str(self.tech.name())
            .push_f64(self.rate_scale)
            .push_u64(trials as u64)
            .push_u64(seed)
            .push_str(target.map_or("all", |k| k.name()))
            .push_f64(baseline)
            .push_u64(stored.len() as u64);
        for layer in stored {
            f.push_str(&layer.scheme.label());
            f.push_u64(layer.total_cells());
        }
        match &control.early_stop {
            Some(es) => {
                f.push_str("early-stop")
                    .push_f64(es.baseline)
                    .push_f64(es.itn_bound)
                    .push_f64(es.z)
                    .push_u64(es.min_trials as u64)
                    .push_u64(es.batch as u64);
            }
            None => {
                f.push_str("fixed-budget");
            }
        }
        f.push_u64(control.panic_trials.len() as u64);
        for &t in &control.panic_trials {
            f.push_u64(t as u64);
        }
        f.finish()
    }

    /// Runs a full-injection campaign: `trials` seeded trials, each
    /// injecting every structure of every layer, in parallel on the
    /// pool. Trial `t` seeds `seed.wrapping_add(t)`; results are in
    /// trial order, identical at any worker count.
    ///
    /// # Errors
    ///
    /// Never fails under the default [`RunControl`] today; the `Result`
    /// keeps the signature aligned with the controlled variants so the
    /// engine surface stays panic-free (lint rule D2).
    pub fn run_campaign(
        &self,
        trials: usize,
        seed: u64,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
    ) -> Result<CampaignResult, EngineError> {
        self.run_trials(trials, seed, stored, eval, None, &RunControl::default())
    }

    /// [`Self::run_campaign`] under a [`RunControl`]: per-trial panic
    /// isolation, cooperative cancellation, checkpoint/resume, and
    /// optional early stopping.
    pub fn run_campaign_controlled(
        &self,
        trials: usize,
        seed: u64,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
        control: &RunControl,
    ) -> Result<CampaignResult, EngineError> {
        self.run_trials(trials, seed, stored, eval, None, control)
    }

    /// Runs a campaign injecting faults only into structures of
    /// `target` kind — Fig. 5's isolation methodology.
    ///
    /// # Errors
    ///
    /// Never fails under the default [`RunControl`] today; see
    /// [`Self::run_campaign`].
    pub fn run_isolated(
        &self,
        trials: usize,
        seed: u64,
        target: StructureKind,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
    ) -> Result<CampaignResult, EngineError> {
        self.run_trials(
            trials,
            seed,
            stored,
            eval,
            Some(target),
            &RunControl::default(),
        )
    }

    /// [`Self::run_isolated`] under a [`RunControl`].
    pub fn run_isolated_controlled(
        &self,
        trials: usize,
        seed: u64,
        target: StructureKind,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
        control: &RunControl,
    ) -> Result<CampaignResult, EngineError> {
        self.run_trials(trials, seed, stored, eval, Some(target), control)
    }

    fn run_trials(
        &self,
        trials: usize,
        seed: u64,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
        target: Option<StructureKind>,
        control: &RunControl,
    ) -> Result<CampaignResult, EngineError> {
        let fault_for = self.fault_for();
        // Clean decodes and level partitions are trial-invariant: prepare
        // them once so every trial costs O(expected faults), not O(cells).
        // A control-supplied encode cache shares the clean decodes across
        // runs (and, disk-backed, across shard processes).
        let prepared: Vec<PreparedLayer> = match &control.encode_cache {
            Some(cache) => self.pool.scope_map(stored.len(), |i| {
                PreparedLayer::new(&stored[i], cache.clean_decode(i, &stored[i]))
            }),
            None => self
                .pool
                .scope_map(stored.len(), |i| PreparedLayer::prepare(&stored[i])),
        };
        let expected: f64 = prepared
            .iter()
            .map(|p| p.expected_faults(target, &fault_for))
            .sum();
        // Trials never materialize faulty matrices: each samples sparse
        // deltas against these shared clean decodes and evaluates them
        // through the evaluator's O(deltas) path, with the clean model
        // also in the compute-side sparse format.
        let clean: Vec<LayerMatrix> = prepared.iter().map(|p| p.clean().matrix.clone()).collect();
        let sparse: Vec<Arc<SparseMatrix>> = prepared
            .iter()
            .map(|p| Arc::new(p.clean().sparse.clone()))
            .collect();
        let model = SparseModel {
            dense: &clean,
            sparse: &sparse,
        };
        let scratch = ScratchPool::new(&self.pool);
        let kind = match target {
            Some(_) => "isolated",
            None => "campaign",
        };
        let fingerprint = self.run_fingerprint(
            kind,
            trials,
            seed,
            stored,
            target,
            eval.baseline_error(),
            control,
        );
        let label = stored
            .first()
            .map(|l| l.scheme.label())
            .unwrap_or_else(|| "empty".to_string());
        let mut driven = drive_trials(
            &self.pool,
            1,
            trials,
            seed,
            control,
            fingerprint,
            &label,
            |_, trial| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(trial as u64));
                let mut stats = DecodeStats::default();
                let deltas: Vec<Vec<WeightDelta>> = prepared
                    .iter()
                    .map(|layer| {
                        let (d, s) = match target {
                            Some(kind) => {
                                layer.deltas_with_isolated_faults(kind, &fault_for, &mut rng)
                            }
                            None => layer.deltas_with_faults(&fault_for, &mut rng),
                        };
                        stats.absorb(s);
                        d
                    })
                    .collect();
                (scratch.eval_deltas_sparse(eval, 0, &model, &deltas), stats)
            },
        )?;
        let group = driven.pop().ok_or_else(|| EngineError::Internal {
            detail: "drive_trials returned no trial group".into(),
        })?;
        Ok(CampaignResult::from_outcomes(trials, group.outcomes)
            .with_termination(group.stopped_early, group.cancelled)
            .with_expected_faults(expected)
            .with_density(model.layer_nnz(), model.density())
            .with_encode_cache(control.cache_stats()))
    }

    /// Runs a campaign with the paper's exact chip semantics: each
    /// trial programs a chip instance (every cell's analog outcome
    /// drawn once, §4.1) and decodes it deterministically. Errors with
    /// [`EngineError::ChipRateScale`] unless the context uses physical
    /// rates (`rate_scale == 1.0`), since analog programming outcomes
    /// cannot be rate-scaled.
    ///
    /// Trials never materialize the chip: only the mis-programmed cells
    /// are recorded (`StoredLayer::sample_chip_flips`, drawing the RNG
    /// exactly as programming the full chip would), reduced to sparse
    /// [`WeightDelta`]s, and evaluated through the sparse path — bit-
    /// identical to programming, decoding, and evaluating every cell.
    pub fn run_chips(
        &self,
        trials: usize,
        seed: u64,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
    ) -> Result<CampaignResult, EngineError> {
        self.run_chips_controlled(trials, seed, stored, eval, &RunControl::default())
    }

    /// [`Self::run_chips`] under a [`RunControl`].
    // maxnvm-lint: allow(R1/index-arith): cell_models is built over MlcConfig::ALL in bits order, so (bits()-1) indexes the matching slot and bits() >= 1 by construction.
    pub fn run_chips_controlled(
        &self,
        trials: usize,
        seed: u64,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
        control: &RunControl,
    ) -> Result<CampaignResult, EngineError> {
        if (self.rate_scale - 1.0).abs() > 1e-12 {
            return Err(EngineError::ChipRateScale(self.rate_scale));
        }
        let cell_for = |cfg: MlcConfig| self.cell_models[(cfg.bits() - 1) as usize].clone();
        let fault_for = self.fault_for();
        let expected: f64 = stored
            .iter()
            .map(|l| l.expected_faults_in(None, &fault_for))
            .sum();
        let prepared: Vec<PreparedLayer> = self
            .pool
            .scope_map(stored.len(), |i| PreparedLayer::prepare(&stored[i]));
        let clean: Vec<LayerMatrix> = prepared.iter().map(|p| p.clean().matrix.clone()).collect();
        let sparse: Vec<Arc<SparseMatrix>> = prepared
            .iter()
            .map(|p| Arc::new(p.clean().sparse.clone()))
            .collect();
        let model = SparseModel {
            dense: &clean,
            sparse: &sparse,
        };
        let scratch = ScratchPool::new(&self.pool);
        let fingerprint = self.run_fingerprint(
            "chips",
            trials,
            seed,
            stored,
            None,
            eval.baseline_error(),
            control,
        );
        let label = stored
            .first()
            .map(|l| l.scheme.label())
            .unwrap_or_else(|| "empty".to_string());
        let mut driven = drive_trials(
            &self.pool,
            1,
            trials,
            seed,
            control,
            fingerprint,
            &label,
            |_, trial| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(trial as u64));
                let mut stats = DecodeStats::default();
                let deltas: Vec<Vec<WeightDelta>> = prepared
                    .iter()
                    .map(|layer| {
                        let flips = layer.stored().sample_chip_flips(&cell_for, &mut rng);
                        let (d, s) = layer.deltas_flips(&flips);
                        stats.absorb(s);
                        d
                    })
                    .collect();
                (scratch.eval_deltas_sparse(eval, 0, &model, &deltas), stats)
            },
        )?;
        let group = driven.pop().ok_or_else(|| EngineError::Internal {
            detail: "drive_trials returned no trial group".into(),
        })?;
        Ok(CampaignResult::from_outcomes(trials, group.outcomes)
            .with_termination(group.stopped_early, group.cancelled)
            .with_expected_faults(expected)
            .with_density(model.layer_nnz(), model.density())
            .with_encode_cache(control.cache_stats()))
    }

    /// Concrete design-space exploration on the engine: every candidate
    /// scheme of the context's technology is stored (raw encodes and
    /// clean decodes shared through an [`EncodeCache`]) and evaluated
    /// with a Monte-Carlo campaign over [`PreparedLayer`]s. The work is
    /// flattened to (scheme, trial) granularity so the pool
    /// load-balances across the whole sweep rather than one scheme at a
    /// time.
    ///
    /// Seeding is per-(scheme, trial) — trial `t` of every scheme uses
    /// `seed.wrapping_add(t)` — so the returned points are identical at
    /// any worker count. Against
    /// [`crate::dse::explore_concrete_reference`] the schemes and cell
    /// counts match exactly, while errors agree statistically: sparse
    /// fault sampling draws a different RNG stream with the same
    /// per-cell marginals.
    ///
    /// Errors with [`EngineError::RateScaleMismatch`] if
    /// `cfg.campaign.rate_scale` differs from this context's.
    pub fn run_dse(
        &self,
        layers: &[ClusteredLayer],
        eval: &(dyn AccuracyEval + Sync),
        cfg: &DseConfig,
    ) -> Result<Vec<DsePoint>, EngineError> {
        self.run_dse_controlled(layers, eval, cfg, &RunControl::default())
    }

    /// [`Self::run_dse`] under a [`RunControl`]: per-trial panic
    /// isolation, cooperative cancellation, whole-sweep
    /// checkpoint/resume (one checkpoint group per candidate scheme),
    /// and optional per-scheme adaptive early stopping — each scheme's
    /// campaign halts as soon as its Wilson interval decides the ITN
    /// acceptance test, so decisively-passing and decisively-failing
    /// schemes stop paying trials the moment the data suffices.
    pub fn run_dse_controlled(
        &self,
        layers: &[ClusteredLayer],
        eval: &(dyn AccuracyEval + Sync),
        cfg: &DseConfig,
        control: &RunControl,
    ) -> Result<Vec<DsePoint>, EngineError> {
        if (cfg.campaign.rate_scale - self.rate_scale).abs() > 1e-12 {
            return Err(EngineError::RateScaleMismatch {
                campaign: cfg.campaign.rate_scale,
                context: self.rate_scale,
            });
        }
        let schemes = candidate_schemes(self.tech);
        // A control-supplied cache (possibly disk-backed and shared
        // between shard processes) takes precedence over the sweep's
        // own in-memory one.
        let owned_cache;
        let cache: &EncodeCache = match &control.encode_cache {
            Some(shared) => shared.as_ref(),
            None => {
                owned_cache = EncodeCache::new();
                &owned_cache
            }
        };
        let stored: Vec<(Vec<StoredLayer>, u64)> = self.pool.scope_map(schemes.len(), |s| {
            let layers: Vec<StoredLayer> = layers
                .iter()
                .enumerate()
                .map(|(i, l)| cache.store_layer(i, l, &schemes[s]))
                .collect();
            let cells = layers.iter().map(StoredLayer::total_cells).sum();
            (layers, cells)
        });
        let trials = cfg.campaign.trials;
        let seed = cfg.campaign.seed;
        let baseline = eval.baseline_error();
        let fault_for = self.fault_for();
        // Clean decodes depend only on the raw encoded streams, so the
        // cache shares one CleanLayerDecode across every scheme that
        // differs only in bits-per-cell or protection.
        let prepared: Vec<Vec<PreparedLayer>> = self.pool.scope_map(schemes.len(), |s| {
            stored[s]
                .0
                .iter()
                .enumerate()
                .map(|(i, l)| PreparedLayer::new(l, cache.clean_decode_cached(i, &layers[i], l)))
                .collect()
        });
        // All encode/decode work is done; snapshot the disk-layer
        // counters once so every point of the sweep reports the same
        // observation.
        let cache_stats = cache.stats();
        // Per-scheme clean matrices for the sparse-delta trial path,
        // plus their compute-side sparse twins.
        let clean: Vec<Vec<LayerMatrix>> = prepared
            .iter()
            .map(|ps| ps.iter().map(|p| p.clean().matrix.clone()).collect())
            .collect();
        let sparse: Vec<Vec<Arc<SparseMatrix>>> = prepared
            .iter()
            .map(|ps| {
                ps.iter()
                    .map(|p| Arc::new(p.clean().sparse.clone()))
                    .collect()
            })
            .collect();
        // Fingerprint the whole sweep: every scheme's identity and cell
        // count participates, so adding/removing candidates invalidates
        // old checkpoints.
        let fingerprint = {
            let mut f = Fingerprint::new();
            f.push_str("dse")
                .push_str(self.tech.name())
                .push_f64(self.rate_scale)
                .push_u64(trials as u64)
                .push_u64(seed)
                .push_f64(baseline)
                .push_f64(cfg.itn_bound)
                .push_u64(schemes.len() as u64);
            for (s, scheme) in schemes.iter().enumerate() {
                f.push_str(&scheme.label());
                f.push_u64(stored[s].1);
            }
            match &control.early_stop {
                Some(es) => {
                    f.push_str("early-stop")
                        .push_f64(es.baseline)
                        .push_f64(es.itn_bound)
                        .push_f64(es.z)
                        .push_u64(es.min_trials as u64)
                        .push_u64(es.batch as u64);
                }
                None => {
                    f.push_str("fixed-budget");
                }
            }
            f.push_u64(control.panic_trials.len() as u64);
            for &t in &control.panic_trials {
                f.push_u64(t as u64);
            }
            f.finish()
        };
        let scratch = ScratchPool::new(&self.pool);
        let driven = drive_trials(
            &self.pool,
            schemes.len(),
            trials,
            seed,
            control,
            fingerprint,
            "dse-sweep",
            |s, trial| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(trial as u64));
                let mut stats = DecodeStats::default();
                let deltas: Vec<Vec<WeightDelta>> = prepared[s]
                    .iter()
                    .map(|layer| {
                        let (d, st) = layer.deltas_with_faults(&fault_for, &mut rng);
                        stats.absorb(st);
                        d
                    })
                    .collect();
                let model = SparseModel {
                    dense: &clean[s],
                    sparse: &sparse[s],
                };
                (
                    scratch.eval_deltas_sparse(eval, s as u64, &model, &deltas),
                    stats,
                )
            },
        )?;
        Ok(schemes
            .into_iter()
            .zip(driven)
            .enumerate()
            .map(|(s, (scheme, group))| {
                let expected: f64 = prepared[s]
                    .iter()
                    .map(|p| p.expected_faults(None, &fault_for))
                    .sum();
                let result = CampaignResult::from_outcomes(trials, group.outcomes)
                    .with_termination(group.stopped_early, group.cancelled)
                    .with_expected_faults(expected);
                let model = SparseModel {
                    dense: &clean[s],
                    sparse: &sparse[s],
                };
                DsePoint {
                    scheme,
                    cells: stored[s].1,
                    mean_error: result.mean_error,
                    passes: result.within_itn(baseline, cfg.itn_bound),
                    trials_run: result.completed_trials,
                    layer_nnz: model.layer_nnz(),
                    density: model.density(),
                    encode_cache: cache_stats,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rate_scales() {
        let sa = SenseAmp::paper_default();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = EvalContext::new(CellTechnology::MlcCtt, &sa, bad)
                .err()
                .expect("must reject");
            assert!(matches!(err, EngineError::InvalidRateScale(_)));
        }
    }

    #[test]
    fn rejects_zero_workers() {
        let sa = SenseAmp::paper_default();
        let err = EvalContext::with_workers(CellTechnology::MlcCtt, &sa, 1.0, 0)
            .err()
            .expect("must reject");
        assert_eq!(err, EngineError::NoWorkers);
    }

    #[test]
    fn fault_maps_are_shared_not_cloned() {
        let sa = SenseAmp::paper_default();
        let ctx = EvalContext::with_workers(CellTechnology::MlcCtt, &sa, 1.0, 1).unwrap();
        let fault_for = ctx.fault_for();
        let a = fault_for(MlcConfig::MLC3);
        let b = fault_for(MlcConfig::MLC3);
        assert!(Arc::ptr_eq(&a, &b), "providers must hand out the same map");
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn worker_overrides_parse_strictly() {
        assert_eq!(parse_workers("4"), Ok(4));
        assert_eq!(parse_workers("  16 "), Ok(16));
        for bad in ["0", "-2", "", "  ", "four", "1.5", "8x"] {
            let err = parse_workers(bad).expect_err(bad);
            assert_eq!(
                err,
                EngineError::InvalidWorkerConfig {
                    value: bad.to_string()
                },
                "{bad:?}"
            );
        }
    }

    #[test]
    fn sparse_campaign_is_bit_exact_and_worker_invariant() {
        // Full-chain lock on the sparse trial path: a network campaign
        // over encoded pruned layers must reproduce the materializing
        // reference (decode every trial's faulty matrices in full,
        // evaluate end to end) bit for bit, at any worker count —
        // including trials whose faults span multiple layers.
        use crate::evaluate::NetworkEval;
        use maxnvm_dnn::data::gaussian_clusters;
        use maxnvm_dnn::zoo::mlp_mini;
        use maxnvm_encoding::storage::StorageScheme;
        use maxnvm_encoding::EncodingKind;
        let net = mlp_mini(8, 3, 16, 1);
        let test = gaussian_clusters(8, 3, 60, 2.5, 7);
        let eval = NetworkEval::new(net.clone(), test);
        let clustered: Vec<ClusteredLayer> = net
            .weight_matrices()
            .iter()
            .map(|m| {
                let mut pruned = m.clone();
                let mut mags: Vec<f32> = pruned.data.iter().map(|v| v.abs()).collect();
                mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let t = mags[((mags.len() - 1) as f64 * 0.6) as usize];
                for v in &mut pruned.data {
                    if v.abs() <= t {
                        *v = 0.0;
                    }
                }
                ClusteredLayer::from_matrix(&pruned, 4, 9)
            })
            .collect();
        let scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3);
        let stored: Vec<StoredLayer> = clustered
            .iter()
            .map(|c| StoredLayer::store(c, &scheme))
            .collect();
        let sa = SenseAmp::paper_default();
        let (trials, seed, scale) = (24usize, 5u64, 3000.0);
        let run = |workers| {
            EvalContext::with_workers(CellTechnology::MlcCtt, &sa, scale, workers)
                .unwrap()
                .run_campaign(trials, seed, &stored, &eval)
                .unwrap()
        };
        let w1 = run(1);
        // Materializing reference over the identical RNG stream (the
        // sparse sampler and the full decoder consume it identically).
        let ctx = EvalContext::with_workers(CellTechnology::MlcCtt, &sa, scale, 1).unwrap();
        let fault_for = ctx.fault_for();
        let prepared: Vec<PreparedLayer> = stored.iter().map(PreparedLayer::prepare).collect();
        let mut multi_layer_trials = 0usize;
        let ref_errors: Vec<f64> = (0..trials)
            .map(|t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(t as u64));
                let mats: Vec<LayerMatrix> = prepared
                    .iter()
                    .map(|p| p.decode_with_faults(&fault_for, &mut rng).0)
                    .collect();
                let mut replay = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(t as u64));
                let faulted = prepared
                    .iter()
                    .filter(|p| !p.deltas_with_faults(&fault_for, &mut replay).0.is_empty())
                    .count();
                if faulted >= 2 {
                    multi_layer_trials += 1;
                }
                eval.eval(&mats)
            })
            .collect();
        assert!(
            multi_layer_trials > 0,
            "no multi-layer fault trials: raise the rate scale"
        );
        assert_eq!(w1.errors, ref_errors, "sparse campaign drifted");
        assert_eq!(w1.layer_nnz.len(), stored.len());
        assert!(w1.density > 0.0 && w1.density < 0.7, "{}", w1.density);
        for workers in [2, 4] {
            assert_eq!(run(workers).errors, w1.errors, "workers={workers}");
        }
    }

    #[test]
    fn early_stop_decides_only_decisive_intervals() {
        let es = EarlyStop::new(0.05, 0.01);
        // Too few trials: never decide.
        assert!(!es.decided(0.0, 4));
        // Mean far below the threshold with a large sample: decisively
        // inside.
        assert!(es.decided(0.05, 4000));
        // Mean far above: decisively outside.
        assert!(es.decided(0.5, 200));
        // Mean near the threshold at a modest sample: undecided.
        assert!(!es.decided(0.06, 16));
    }
}
