/root/repo/target/debug/deps/fig10-1420d1e7614d1b7e.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-1420d1e7614d1b7e.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
