/root/repo/target/debug/deps/fig2-13f80c3a27d10da7.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-13f80c3a27d10da7: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
