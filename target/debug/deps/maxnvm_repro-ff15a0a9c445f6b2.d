/root/repo/target/debug/deps/maxnvm_repro-ff15a0a9c445f6b2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_repro-ff15a0a9c445f6b2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
