//! A persistent worker pool for evaluation fan-out.
//!
//! Campaign trials and design-space sweeps are embarrassingly parallel
//! but were previously run on ad-hoc scoped threads spawned per call,
//! capped at eight. This pool spawns its workers once and serves every
//! evaluation in the process: jobs go into a shared queue that idle
//! workers steal from, which load-balances trials of very different
//! cost (a 105-scheme sweep mixes SLC layers that decode instantly with
//! ECC-protected MLC3 layers that dominate the wall-clock).
//!
//! The scheduling is cooperative: the thread that calls
//! [`WorkerPool::scope_map`] helps drain the queue while it waits, so a
//! pool works at any size (even zero workers degenerates to the caller
//! running everything serially) and nested scopes cannot deadlock — a
//! blocked scope always has at least its own caller making progress.
//! While waiting, a caller parks on the pool's `work_ready` condvar; it
//! is woken either by new work being queued (including nested work its
//! own jobs pushed) or by the completion of its scope's last job, so
//! there is no polling interval anywhere in the pool.
//!
//! Scopes can be made cancellable ([`WorkerPool::scope_map_cancellable`]):
//! each queued job checks a [`CancelToken`] just before running, so a
//! cancelled scope drains its queue near-instantly and reports which
//! indices actually ran.

use crate::cancel::CancelToken;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

// Under `--cfg loom` (cargo xtask loom) the pool's primitives swap to the
// vendored loom polyfill, which injects seeded schedule perturbations at
// every lock/wait/notify/atomic access so the model tests explore many
// interleavings of the enqueue/park/wake windows. Production builds use
// parking_lot and plain std atomics.
#[cfg(loom)]
use loom::sync::atomic::{AtomicBool, Ordering};
#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use parking_lot::{Condvar, Mutex};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, Ordering};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Wakes every parked thread — workers looking for jobs and scope
    /// callers waiting on completion. Taking (and immediately releasing)
    /// the queue lock first closes the race against a thread that has
    /// checked its predicate but not yet parked: the notifier serializes
    /// behind that thread's critical section, so the notify cannot land
    /// in the gap.
    fn wake_all(&self) {
        drop(self.queue.lock());
        self.work_ready.notify_all();
    }
}

/// A fixed set of persistent worker threads draining a shared job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `workers` persistent threads.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // If the OS refuses a thread, run with the workers that did
        // spawn: `scope_map` has the caller help drain the queue, so the
        // pool stays correct (just slower) even with zero workers.
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("maxnvm-eval-{i}"))
                .spawn(move || worker_loop(&shared))
            {
                Ok(h) => handles.push(h),
                Err(_) => break,
            }
        }
        Self {
            shared,
            workers,
            handles,
        }
    }

    /// Number of worker threads (the caller of [`Self::scope_map`] also
    /// contributes while it waits).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates `f(0..n)` across the pool, returning results in index
    /// order. Blocks until every job has finished; if any job panicked,
    /// the first panic is re-raised on the calling thread.
    ///
    /// Results are independent of the worker count and of scheduling:
    /// each index is computed by exactly one pure call of `f`, and the
    /// output vector is assembled by index, so a 1-worker and a
    /// 64-worker pool return byte-identical vectors.
    pub fn scope_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let never = CancelToken::new();
        self.scope_map_cancellable(n, &never, f)
            .into_iter()
            // maxnvm-lint: allow(D2/expect): a never-fired CancelToken cannot skip jobs, and job panics re-raise in finish() before results are read, so every slot is Some.
            .map(|slot| slot.expect("uncancellable scope job left no result"))
            .collect()
    }

    /// [`Self::scope_map`] with cooperative cancellation: each job
    /// checks `cancel` immediately before running `f`, so once the
    /// token fires the remaining queue drains without doing work.
    /// Returns `Some(result)` for indices that ran, `None` for indices
    /// skipped after cancellation. Panics from `f` are still re-raised
    /// (first one wins) after all jobs have settled.
    pub fn scope_map_cancellable<T, F>(
        &self,
        n: usize,
        cancel: &CancelToken,
        f: F,
    ) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let state = ScopeState::new(n);
        {
            let mut queue = self.shared.queue.lock();
            for i in 0..n {
                let state_ref = &state;
                let f_ref = &f;
                let cancel_ref = cancel;
                let shared_ref: &Shared = &self.shared;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let last = if cancel_ref.is_cancelled() {
                        state_ref.skip_one()
                    } else {
                        state_ref.run_one(i, f_ref)
                    };
                    if last {
                        // Wake the scope's caller (and any nested scope
                        // callers) parked on `work_ready`.
                        shared_ref.wake_all();
                    }
                });
                // SAFETY: this call does not return until `state.remaining`
                // reaches zero, i.e. every queued job has run to completion
                // (panics are caught and still count), so the borrows of
                // `state`, `f`, `cancel`, and `self.shared` smuggled past
                // the 'static bound outlive every job that uses them.
                let job: Job = unsafe { std::mem::transmute(job) };
                queue.push_back(job);
            }
        }
        self.shared.work_ready.notify_all();
        loop {
            let mut queue = self.shared.queue.lock();
            if let Some(job) = queue.pop_front() {
                drop(queue);
                job();
                continue;
            }
            if *state.remaining.lock() == 0 {
                break;
            }
            // Parked until either new work arrives (a job of ours running
            // on a worker may push nested work this caller should help
            // with) or our scope's last job completes and wakes us.
            self.shared.work_ready.wait(&mut queue);
        }
        state.finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Adapter exposing the pool to the GEMM kernels as a
/// [`maxnvm_dnn::GemmParallel`] fan-out, so one large multiply inside a
/// trial can split its column bands across the whole machine.
///
/// Band↔job ownership is fixed by the kernel (job `j` owns band `j`),
/// so the pool's dynamic scheduling — which thread runs which job, in
/// what order — cannot affect results; `scope_map` only decides *when*
/// each band is computed. Nested fan-out (a GEMM inside a trial that is
/// itself a pool job) is safe because scope callers help drain the
/// queue.
pub struct PoolParallel(Arc<WorkerPool>);

impl PoolParallel {
    /// Wraps a shared pool handle.
    pub fn new(pool: Arc<WorkerPool>) -> Self {
        Self(pool)
    }
}

impl std::fmt::Debug for PoolParallel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolParallel")
            .field("workers", &self.0.workers())
            .finish()
    }
}

impl maxnvm_dnn::GemmParallel for PoolParallel {
    fn max_jobs(&self) -> usize {
        // The scope caller helps drain the queue, so it counts as a slot.
        self.0.workers() + 1
    }

    fn run(&self, jobs: usize, task: &(dyn Fn(usize) + Sync)) {
        self.0.scope_map(jobs, task);
    }
}

fn worker_loop(shared: &Shared) {
    let mut queue = shared.queue.lock();
    loop {
        if let Some(job) = queue.pop_front() {
            drop(queue);
            job();
            queue = shared.queue.lock();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Woken by new work or (spuriously) by a scope completing; both
        // re-check the queue.
        shared.work_ready.wait(&mut queue);
    }
}

/// Completion tracking for one `scope_map` call: per-index result slots,
/// a countdown latch, and the first panic payload (if any).
struct ScopeState<T> {
    results: Mutex<Vec<Option<T>>>,
    remaining: Mutex<usize>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<T: Send> ScopeState<T> {
    fn new(n: usize) -> Self {
        Self {
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            panic: Mutex::new(None),
        }
    }

    /// Runs job `i`; returns whether it was the scope's last job.
    fn run_one<F: Fn(usize) -> T + Sync>(&self, i: usize, f: &F) -> bool {
        match panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(value) => self.results.lock()[i] = Some(value),
            Err(payload) => {
                let mut slot = self.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        self.count_down()
    }

    /// Marks a cancelled job complete without running it; returns
    /// whether it was the scope's last job.
    fn skip_one(&self) -> bool {
        self.count_down()
    }

    fn count_down(&self) -> bool {
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        *remaining == 0
    }

    fn finish(self) -> Vec<Option<T>> {
        if let Some(payload) = self.panic.into_inner() {
            panic::resume_unwind(payload);
        }
        self.results.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::{Duration, Instant};

    #[test]
    fn maps_in_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.scope_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_still_completes_via_the_caller() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.scope_map(10, |i| i + 1), (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = WorkerPool::new(2);
        assert!(pool.scope_map(0, |i| i).is_empty());
    }

    #[test]
    fn results_do_not_depend_on_worker_count() {
        let work = |i: usize| {
            // Uneven job costs exercise the dynamic scheduling.
            (0..(i % 7) * 1000).fold(i as u64, |acc, x| {
                acc.wrapping_mul(31).wrapping_add(x as u64)
            })
        };
        let serial = WorkerPool::new(0).scope_map(64, work);
        for workers in [1, 2, 8] {
            assert_eq!(WorkerPool::new(workers).scope_map(64, work), serial);
        }
    }

    #[test]
    fn borrows_caller_state() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..50).map(|i| i * 3).collect();
        let out = pool.scope_map(data.len(), |i| data[i] + 1);
        assert_eq!(out[49], 49 * 3 + 1);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_map(8, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "job 5 exploded");
        // The pool survives and keeps serving work.
        assert_eq!(pool.scope_map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn nested_scopes_make_progress() {
        let pool = WorkerPool::new(1);
        let out = pool.scope_map(4, |i| {
            pool.scope_map(4, |j| i * 4 + j).iter().sum::<usize>()
        });
        assert_eq!(out.iter().sum::<usize>(), (0..16).sum());
    }

    #[test]
    fn completion_wakes_the_caller_promptly() {
        // One slow job running on a worker while the caller has nothing
        // left to steal: the caller must park and be woken by the job's
        // completion, not by a polling interval. An end-to-end latency
        // far below the old 1 ms poll multiplied by the iteration count
        // would not prove much, so instead assert the scope returns
        // promptly after the job finishes.
        let pool = WorkerPool::new(2);
        let start = Instant::now();
        let out = pool.scope_map(1, |i| {
            std::thread::sleep(Duration::from_millis(30));
            i + 7
        });
        assert_eq!(out, vec![7]);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(300),
            "scope took {elapsed:?} for a 30 ms job"
        );
    }

    #[test]
    fn cancelled_scope_skips_remaining_jobs() {
        let pool = WorkerPool::new(0); // caller-only: deterministic order
        let cancel = CancelToken::new();
        let ran = AtomicUsize::new(0);
        let out = pool.scope_map_cancellable(10, &cancel, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 2 {
                cancel.cancel();
            }
            i
        });
        // Jobs 0..=2 ran (in order, caller-only); the rest were skipped.
        assert_eq!(ran.load(Ordering::Relaxed), 3);
        assert_eq!(
            out,
            vec![
                Some(0),
                Some(1),
                Some(2),
                None,
                None,
                None,
                None,
                None,
                None,
                None
            ]
        );
    }

    #[test]
    fn pre_cancelled_scope_runs_nothing() {
        let pool = WorkerPool::new(2);
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = pool.scope_map_cancellable(16, &cancel, |i| i);
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn transmute_job_borrows_stay_contained_in_the_scope() {
        // The Miri target for `cargo xtask miri` (matched by the
        // `engine::pool::tests::transmute_` filter): exercises the
        // lifetime-erasing transmute in `scope_map_cancellable` under
        // the borrow tracker. The jobs borrow caller-owned state, run on
        // pool workers and the caller, and one scope nests inside
        // another — if the SAFETY argument (no job outlives the scope
        // call) were wrong, Miri reports use-after-free on `data`,
        // `sums`, or the scope's own state.
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..24).map(|i| i * 7 + 1).collect();
        let sums = Mutex::new(0u64);
        let out = pool.scope_map(data.len(), |i| {
            let nested = pool.scope_map(2, |j| data[i] + j as u64);
            *sums.lock() += 1;
            nested[0] + nested[1]
        });
        assert_eq!(*sums.lock(), data.len() as u64);
        assert_eq!(out[3], 2 * data[3] + 1);
        // A cancelled scope drains through the same transmuted jobs.
        let cancel = CancelToken::new();
        cancel.cancel();
        let skipped = pool.scope_map_cancellable(8, &cancel, |i| data[i]);
        assert!(skipped.iter().all(Option::is_none));
    }

    #[test]
    fn cancellable_scope_without_cancellation_matches_scope_map() {
        let pool = WorkerPool::new(3);
        let cancel = CancelToken::new();
        let out = pool.scope_map_cancellable(32, &cancel, |i| i * 2);
        assert_eq!(out, (0..32).map(|i| Some(i * 2)).collect::<Vec<_>>());
    }
}
