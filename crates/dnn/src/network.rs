//! A runnable network: an ordered list of layers with weight-matrix
//! extraction for the storage pipeline.
//!
//! Forward passes are reproducible to the bit across hosts and runs: all
//! weight-layer arithmetic funnels into [`crate::gemm`], whose dispatch
//! tiers (scalar / AVX2 / AVX-512 / NEON) compute the identical
//! fused-multiply-add chains and are selected once per process from CPU
//! features alone, never from the data (DESIGN.md §14). The same logits
//! come back whether a batch runs serially, under the within-trial GEMM
//! fan-out, or pinned to the scalar tier via `MAXNVM_FORCE_SCALAR`.

use crate::layer::{ForwardScratch, Layer};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One faulty weight cell relative to the clean decode: `slot` indexes the
/// flattened row-major weight matrix, `value` is the decoded faulty value.
/// A trial's effect on a layer is a (usually tiny) slot-sorted list of
/// these, which the fault-delta forward applies and reverts in O(deltas).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightDelta {
    /// Flattened row-major index into the weight matrix.
    pub slot: u32,
    /// The faulty decoded value now stored at `slot`.
    pub value: f32,
}

/// A 2-D-mapped weight matrix extracted from (or written back to) a layer —
/// the unit of storage the paper's encodings operate on (§3.2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerMatrix {
    /// Originating layer name.
    pub name: String,
    /// Matrix rows (output channels / neurons).
    pub rows: usize,
    /// Matrix columns (fan-in).
    pub cols: usize,
    /// Row-major values, `rows * cols` long.
    pub data: Vec<f32>,
}

impl LayerMatrix {
    /// Creates a matrix, validating dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(name: &str, rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length");
        Self {
            name: name.to_string(),
            rows,
            cols,
            data,
        }
    }

    /// Fraction of zero-valued entries.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&v| v == 0.0).count() as f64 / self.data.len() as f64
    }

    /// Number of non-zero entries.
    pub fn nonzeros(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }
}

/// An ordered stack of layers forming a classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Model name.
    pub name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from layers.
    pub fn new(name: &str, layers: Vec<Layer>) -> Self {
        Self {
            name: name.to_string(),
            layers,
        }
    }

    /// The layers, in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Runs a single sample through the network, returning the logits.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for l in &self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    /// Runs a batch of same-shaped samples through the network, batching
    /// each weight layer into a single matrix multiply (see
    /// [`Layer::forward_batch`]). Per-sample results equal
    /// [`Network::forward`].
    pub fn forward_batch(&self, xs: &[Tensor]) -> Vec<Tensor> {
        self.forward_batch_scratch(xs, &mut ForwardScratch::default())
    }

    /// [`Network::forward_batch`] with caller-owned staging buffers — the
    /// allocation-free path the fault-simulation trial loop uses.
    pub fn forward_batch_scratch(
        &self,
        xs: &[Tensor],
        scratch: &mut ForwardScratch,
    ) -> Vec<Tensor> {
        self.forward_suffix(0, xs.to_vec(), scratch)
    }

    /// Runs only layers `start..` on already-computed activations `xs`
    /// (the batch entering layer `start`). The clean-prefix fault path
    /// resumes here after patching the first fault-touched layer's cached
    /// outputs.
    ///
    /// # Panics
    ///
    /// Panics if `start` exceeds the layer count.
    pub fn forward_suffix(
        &self,
        start: usize,
        xs: Vec<Tensor>,
        scratch: &mut ForwardScratch,
    ) -> Vec<Tensor> {
        let mut cur = xs;
        for l in &self.layers[start..] {
            cur = l.forward_batch_scratch(&cur, scratch);
        }
        cur
    }

    /// [`Network::forward_suffix`] with sparse-encoded weights: layer
    /// `i`'s weight matrix (in [`Network::weight_matrices`] order) is
    /// multiplied from `weights[i]` when present, falling back to the
    /// layer's dense tensor when `None` (or for residual blocks, whose
    /// nested matrices keep the dense path). Bit-identical to
    /// [`Network::forward_suffix`] when each present entry materializes
    /// to the layer's dense weights (see [`crate::gemm`]) — the caller
    /// keeps the dense tensors authoritative (e.g. fault deltas are
    /// applied to both representations).
    ///
    /// # Panics
    ///
    /// Panics if `start` exceeds the layer count or a sparse matrix
    /// disagrees with its layer's weight shape.
    pub fn forward_suffix_sparse(
        &self,
        start: usize,
        xs: Vec<Tensor>,
        weights: &[Option<&crate::sparse::SparseMatrix>],
        scratch: &mut ForwardScratch,
    ) -> Vec<Tensor> {
        let mut wi: usize = self.layers[..start]
            .iter()
            .map(Layer::weight_matrix_count)
            .sum();
        let mut cur = xs;
        for l in &self.layers[start..] {
            let nmat = l.weight_matrix_count();
            let sparse = if nmat == 1 {
                weights.get(wi).copied().flatten()
            } else {
                None // weightless, or residual (nested matrices stay dense)
            };
            cur = match sparse {
                Some(sp) if !cur.is_empty() => match l.weight_rhs_into(&cur, &mut scratch.cols) {
                    Some(meta) => l.forward_from_rhs_sparse(
                        sp,
                        &scratch.cols,
                        &meta,
                        cur.len(),
                        &mut scratch.out,
                        &mut scratch.gemm,
                    ),
                    None => l.forward_batch_scratch(&cur, scratch),
                },
                _ => l.forward_batch_scratch(&cur, scratch),
            };
            wi += nmat;
        }
        cur
    }

    /// Predicted class (argmax of logits).
    pub fn predict(&self, x: &Tensor) -> usize {
        argmax(&self.forward(x))
    }

    /// Predicted classes for a batch (batched forward, same tie-breaking
    /// as [`Network::predict`]).
    pub fn predict_batch(&self, xs: &[Tensor]) -> Vec<usize> {
        self.forward_batch(xs).iter().map(argmax).collect()
    }

    /// Classification error rate (fraction wrong) on labelled samples.
    /// Runs the whole set as one batch — one matmul per weight layer.
    pub fn error_rate(&self, samples: &[(Tensor, usize)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let xs: Vec<Tensor> = samples.iter().map(|(x, _)| x.clone()).collect();
        let wrong = self
            .predict_batch(&xs)
            .iter()
            .zip(samples)
            .filter(|(p, (_, y))| *p != y)
            .count();
        wrong as f64 / samples.len() as f64
    }

    /// Total stored weight count (conv + linear weights; the paper's
    /// "parameters" for storage purposes).
    pub fn weight_count(&self) -> usize {
        self.layers.iter().map(Layer::weight_count).sum()
    }

    /// Whether every layer supports the substrate's backprop (true for the
    /// small trainable models, false e.g. for residual networks).
    pub fn supports_backprop(&self) -> bool {
        self.layers.iter().all(Layer::supports_backprop)
    }

    /// Extracts every weight-bearing layer as a 2-D matrix, in order.
    pub fn weight_matrices(&self) -> Vec<LayerMatrix> {
        fn collect(layers: &[Layer], out: &mut Vec<LayerMatrix>) {
            for l in layers {
                match l {
                    Layer::Conv2d { name, weight, .. } | Layer::Linear { name, weight, .. } => {
                        out.push(LayerMatrix::new(
                            name,
                            weight.shape()[0],
                            weight.shape()[1],
                            weight.data().to_vec(),
                        ));
                    }
                    Layer::Residual { body, shortcut } => {
                        collect(body, out);
                        collect(shortcut, out);
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        collect(&self.layers, &mut out);
        out
    }

    /// Writes weight matrices back into the network (e.g. after an
    /// encode → store → fault → decode round trip).
    ///
    /// # Panics
    ///
    /// Panics if the count or shapes do not match
    /// [`Network::weight_matrices`].
    pub fn set_weight_matrices(&mut self, mats: &[LayerMatrix]) {
        fn apply(layers: &mut [Layer], mats: &[LayerMatrix], idx: &mut usize) {
            for l in layers {
                match l {
                    Layer::Conv2d { weight, .. } | Layer::Linear { weight, .. } => {
                        assert!(*idx < mats.len(), "matrix count mismatch");
                        let m = &mats[*idx];
                        assert_eq!(
                            weight.shape(),
                            &[m.rows, m.cols],
                            "matrix shape mismatch at index {}",
                            *idx
                        );
                        weight.data_mut().copy_from_slice(&m.data);
                        *idx += 1;
                    }
                    Layer::Residual { body, shortcut } => {
                        apply(body, mats, idx);
                        apply(shortcut, mats, idx);
                    }
                    _ => {}
                }
            }
        }
        let mut idx = 0;
        apply(&mut self.layers, mats, &mut idx);
        assert_eq!(idx, mats.len(), "matrix count mismatch");
    }

    /// Visits every weight-bearing layer's tensor mutably, in
    /// [`Network::weight_matrices`] order (residual bodies before
    /// shortcuts).
    pub fn for_each_weight_tensor_mut(&mut self, mut f: impl FnMut(usize, &mut Tensor)) {
        fn walk<F: FnMut(usize, &mut Tensor)>(layers: &mut [Layer], idx: &mut usize, f: &mut F) {
            for l in layers {
                match l {
                    Layer::Conv2d { weight, .. } | Layer::Linear { weight, .. } => {
                        f(*idx, weight);
                        *idx += 1;
                    }
                    Layer::Residual { body, shortcut } => {
                        walk(body, idx, f);
                        walk(shortcut, idx, f);
                    }
                    _ => {}
                }
            }
        }
        let mut idx = 0;
        walk(&mut self.layers, &mut idx, &mut f);
    }

    /// Overwrites the listed weight slots with their faulty values,
    /// recording `(matrix index, slot, previous value)` into `undo` so
    /// [`Network::revert_weight_deltas`] can restore the clean weights in
    /// O(deltas). `deltas[i]` addresses weight matrix `i` in
    /// [`Network::weight_matrices`] order; missing trailing entries mean
    /// "no faults in that layer".
    ///
    /// # Panics
    ///
    /// Panics if a slot is out of range for its matrix.
    pub fn apply_weight_deltas(
        &mut self,
        deltas: &[Vec<WeightDelta>],
        undo: &mut Vec<(usize, u32, f32)>,
    ) {
        undo.clear();
        self.for_each_weight_tensor_mut(|i, w| {
            let Some(ds) = deltas.get(i) else {
                return;
            };
            for d in ds {
                let slot = d.slot as usize;
                undo.push((i, d.slot, w.data()[slot]));
                w.data_mut()[slot] = d.value;
            }
        });
    }

    /// Restores weights overwritten by [`Network::apply_weight_deltas`].
    /// Entries are replayed in reverse so repeated slots unwind correctly.
    pub fn revert_weight_deltas(&mut self, undo: &[(usize, u32, f32)]) {
        self.for_each_weight_tensor_mut(|i, w| {
            for &(mi, slot, old) in undo.iter().rev() {
                if mi == i {
                    w.data_mut()[slot as usize] = old;
                }
            }
        });
    }
}

/// Argmax over logits; on ties the *last* maximum wins, matching the
/// historical `Iterator::max_by` behaviour every accuracy result was
/// produced with.
pub fn argmax(logits: &Tensor) -> usize {
    logits
        .data()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> Network {
        let mut fc1 = Layer::linear("fc1", 4, 3);
        if let Layer::Linear { weight, .. } = &mut fc1 {
            for (i, v) in weight.data_mut().iter_mut().enumerate() {
                *v = (i as f32 - 5.0) * 0.1;
            }
        }
        let fc2 = Layer::linear("fc2", 2, 4);
        Network::new("tiny", vec![fc1, Layer::ReLU, fc2])
    }

    #[test]
    fn forward_produces_logits() {
        let net = tiny_net();
        let y = net.forward(&Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]));
        assert_eq!(y.shape(), &[2]);
    }

    #[test]
    fn predict_is_argmax() {
        let mut net = tiny_net();
        if let Layer::Linear { bias, .. } = &mut net.layers_mut()[2] {
            bias[1] = 100.0;
        }
        assert_eq!(net.predict(&Tensor::from_vec(&[3], vec![0.0, 0.0, 0.0])), 1);
    }

    #[test]
    fn error_rate_counts_mistakes() {
        let mut net = tiny_net();
        if let Layer::Linear { bias, .. } = &mut net.layers_mut()[2] {
            bias[0] = 100.0;
        }
        let samples = vec![
            (Tensor::from_vec(&[3], vec![0.0; 3]), 0),
            (Tensor::from_vec(&[3], vec![0.0; 3]), 1),
        ];
        assert!((net.error_rate(&samples) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weight_matrix_round_trip() {
        let mut net = tiny_net();
        let mut mats = net.weight_matrices();
        assert_eq!(mats.len(), 2);
        assert_eq!(mats[0].rows, 4);
        assert_eq!(mats[0].cols, 3);
        mats[0].data[0] = 42.0;
        net.set_weight_matrices(&mats);
        assert_eq!(net.weight_matrices()[0].data[0], 42.0);
    }

    #[test]
    fn weight_count_sums_layers() {
        let net = tiny_net();
        assert_eq!(net.weight_count(), 4 * 3 + 2 * 4);
    }

    #[test]
    fn residual_matrices_are_collected() {
        let net = Network::new(
            "res",
            vec![Layer::Residual {
                body: vec![Layer::conv2d("c", 2, 2, 3, 1, 1)],
                shortcut: vec![Layer::conv2d("s", 2, 2, 1, 1, 0)],
            }],
        );
        let mats = net.weight_matrices();
        assert_eq!(mats.len(), 2);
        assert_eq!(mats[0].name, "c");
        assert_eq!(mats[1].name, "s");
        assert!(!net.supports_backprop());
    }

    #[test]
    fn layer_matrix_sparsity() {
        let m = LayerMatrix::new("x", 1, 4, vec![0.0, 1.0, 0.0, 2.0]);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
        assert_eq!(m.nonzeros(), 2);
    }

    #[test]
    #[should_panic(expected = "matrix count mismatch")]
    fn set_matrices_validates_count() {
        let mut net = tiny_net();
        net.set_weight_matrices(&[]);
    }

    fn conv_net() -> Network {
        let mut conv = Layer::conv2d("c1", 3, 1, 3, 1, 1);
        if let Layer::Conv2d { weight, bias, .. } = &mut conv {
            for (i, v) in weight.data_mut().iter_mut().enumerate() {
                *v = ((i % 7) as f32 - 3.0) * 0.21;
            }
            bias[1] = 0.3;
        }
        let mut fc = Layer::linear("fc", 4, 3 * 4 * 4);
        if let Layer::Linear { weight, .. } = &mut fc {
            for (i, v) in weight.data_mut().iter_mut().enumerate() {
                *v = ((i % 11) as f32 - 5.0) * 0.07;
            }
        }
        Network::new(
            "convnet",
            vec![conv, Layer::ReLU, Layer::MaxPool2, Layer::Flatten, fc],
        )
    }

    #[test]
    fn batched_forward_matches_per_sample() {
        let net = conv_net();
        let xs: Vec<Tensor> = (0..5)
            .map(|s| {
                let data = (0..64)
                    .map(|i| ((i * (s + 2)) % 9) as f32 * 0.11 - 0.4)
                    .collect();
                Tensor::from_vec(&[1, 8, 8], data)
            })
            .collect();
        let batched = net.forward_batch(&xs);
        for (x, b) in xs.iter().zip(&batched) {
            let single = net.forward(x);
            assert_eq!(single.shape(), b.shape());
            assert_eq!(single.data(), b.data(), "batched conv+linear must be exact");
        }
        let preds = net.predict_batch(&xs);
        for (x, p) in xs.iter().zip(&preds) {
            assert_eq!(net.predict(x), *p);
        }
    }

    #[test]
    fn sparse_suffix_matches_dense_bitwise() {
        use crate::sparse::SparseMatrix;
        let mut net = conv_net();
        // Prune some weights to exact zero so the sparse path has work
        // to skip.
        let mut mats = net.weight_matrices();
        for m in &mut mats {
            for (i, v) in m.data.iter_mut().enumerate() {
                if i % 3 == 0 {
                    *v = 0.0;
                }
            }
        }
        net.set_weight_matrices(&mats);
        let sparse: Vec<SparseMatrix> = mats.iter().map(SparseMatrix::from_matrix).collect();
        let xs: Vec<Tensor> = (0..4)
            .map(|s| {
                let data = (0..64)
                    .map(|i| ((i * (s + 3)) % 13) as f32 * 0.09 - 0.5)
                    .collect();
                Tensor::from_vec(&[1, 8, 8], data)
            })
            .collect();
        let mut scratch = ForwardScratch::default();
        let dense = net.forward_suffix(0, xs.clone(), &mut scratch);
        // Full overlay, partial overlay, and all-None must all agree.
        let full: Vec<Option<&SparseMatrix>> = sparse.iter().map(Some).collect();
        let partial: Vec<Option<&SparseMatrix>> = vec![Some(&sparse[0]), None];
        for table in [&full[..], &partial[..], &[][..]] {
            let got = net.forward_suffix_sparse(0, xs.clone(), table, &mut scratch);
            assert_eq!(dense.len(), got.len());
            for (a, b) in dense.iter().zip(&got) {
                assert_eq!(a.data(), b.data(), "sparse suffix must be bit-exact");
            }
        }
    }

    #[test]
    fn batched_forward_handles_empty_batch() {
        assert!(conv_net().forward_batch(&[]).is_empty());
        assert_eq!(conv_net().error_rate(&[]), 0.0);
    }
}
