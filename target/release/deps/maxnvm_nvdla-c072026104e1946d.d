/root/repo/target/release/deps/maxnvm_nvdla-c072026104e1946d.d: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

/root/repo/target/release/deps/libmaxnvm_nvdla-c072026104e1946d.rlib: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

/root/repo/target/release/deps/libmaxnvm_nvdla-c072026104e1946d.rmeta: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

crates/nvdla/src/lib.rs:
crates/nvdla/src/config.rs:
crates/nvdla/src/hybrid.rs:
crates/nvdla/src/nonvolatility.rs:
crates/nvdla/src/perf.rs:
crates/nvdla/src/source.rs:
