/root/repo/target/debug/deps/maxnvm-e06418b768365c5d.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm-e06418b768365c5d.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
