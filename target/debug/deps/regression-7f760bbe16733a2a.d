/root/repo/target/debug/deps/regression-7f760bbe16733a2a.d: tests/regression.rs Cargo.toml

/root/repo/target/debug/deps/libregression-7f760bbe16733a2a.rmeta: tests/regression.rs Cargo.toml

tests/regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
