//! O(expected faults) trial decoding.
//!
//! A Monte-Carlo campaign decodes the same [`StoredLayer`] thousands of
//! times, and at the paper's ~1e-5 fault rates almost every trial differs
//! from the clean decode in a handful of cells. [`PreparedLayer`] caches
//! the clean decode once ([`CleanLayerDecode`]) and, per trial, samples
//! only the faulted cells (via [`SparseFaultSampler`]) and re-decodes only
//! the regions they can reach:
//!
//! - **Values** faults are entry-local while the metadata is clean: the
//!   flipped cell's ECC words (or raw bits) are re-decoded, and only the
//!   touched entries are re-mapped through the centroid LUT into their
//!   cached output slots.
//! - **CSR column-gap** faults shift alignment within one row only; the
//!   dirty rows are re-walked from the patched gap stream.
//! - **BitMask mask** faults under IdxSync are confined to their sync
//!   block (Fig. 4); the dirty blocks are re-walked from the patched mask.
//! - **RowCounter / SyncCounter** faults (and mask faults without
//!   IdxSync) shift global alignment, so those rare trials fall back to a
//!   full re-parse — still from cached payload streams, skipping the
//!   per-cell unpack of every clean structure.
//!
//! Equivalence with [`StoredLayer::decode_with_codec`] under identical
//! flips is locked by the tests in `storage::tests`; only the fault
//! *sampling* differs from the per-cell reference path (statistically, not
//! bitwise — see `maxnvm_envm::sparse`).

use super::layer::StoredLayer;
use super::structure::DecodeStats;
use crate::{EncodingKind, StructureKind};
use maxnvm_bits::BitBuffer;
use maxnvm_dnn::network::{LayerMatrix, WeightDelta};
use maxnvm_dnn::sparse::SparseMatrix;
use maxnvm_ecc::{BlockCodec, Correction};
use maxnvm_envm::{FaultInjector, FaultMap, LevelPartition, MlcConfig, SparseFaultSampler};
use rand::Rng;
use std::sync::Arc;

/// The fault-free decode of a stored layer, computed once and shared by
/// every trial (and, via [`super::EncodeCache`], by every scheme that
/// differs only in bits-per-cell or protection — a clean decode is a
/// lossless round trip, so it depends only on the raw encoded streams).
#[derive(Debug, Clone, PartialEq)]
pub struct CleanLayerDecode {
    /// The clean weight matrix.
    pub matrix: LayerMatrix,
    /// Output slot each stored value entry writes under clean metadata
    /// (`u32::MAX` when an entry lands outside the matrix).
    pub value_slots: Vec<u32>,
    /// The clean weights as the compute-side sparse format, built
    /// straight from the encoding's run walk (no dense detour when the
    /// zero centroid holds) — what the sparse inference path multiplies
    /// from. Always equals `SparseMatrix::from_dense` of `matrix`.
    pub sparse: SparseMatrix,
}

impl CleanLayerDecode {
    /// Decodes `stored` with no faults and records the entry → slot map.
    pub fn of(stored: &StoredLayer) -> Self {
        let streams: Vec<(StructureKind, BitBuffer)> = stored
            .structures
            .iter()
            .map(|s| (s.kind, s.unpack_cells(&s.cells).0))
            .collect();
        let enc = stored.parse_streams(&streams);
        let indices = enc.reconstruct_indices();
        let matrix = stored.matrix_from_indices(&indices);
        let value_slots = enc.entry_slots();
        let zero_centroid = stored.centroids.first().map(|c| c.to_bits()) == Some(0f32.to_bits());
        let sparse = if zero_centroid {
            // Run-walk build: structurally skipped slots decode to
            // centroid 0 == exactly +0.0, and the builder drops any
            // stored entry mapping to 0.0, so this equals the
            // from_dense build without materializing anything extra.
            let top = (stored.centroids.len() - 1) as u16;
            let mut entries: Vec<(u32, f32)> = Vec::new();
            enc.for_each_nonzero(|r, c, v| {
                entries.push((
                    (r * stored.cols + c) as u32,
                    stored.centroids[v.min(top) as usize],
                ));
            });
            SparseMatrix::from_entries(stored.rows, stored.cols, entries)
        } else {
            // Centroid 0 decodes non-zero (never happens with the
            // clustering in this repo, which pins centroid 0 to 0.0):
            // the walk's zero-skip assumption fails, so build from the
            // dense matrix — always correct.
            SparseMatrix::from_dense(matrix.rows, matrix.cols, &matrix.data)
        };
        Self {
            matrix,
            value_slots,
            sparse,
        }
    }
}

/// A stored layer prepared for O(faults) Monte-Carlo trials: the clean
/// decode, per-structure level partitions for sparse fault sampling, and
/// the cached clean payload/stored bit streams dirty regions patch into.
#[derive(Debug, Clone)]
pub struct PreparedLayer<'a> {
    stored: &'a StoredLayer,
    clean: Arc<CleanLayerDecode>,
    /// Per structure: cells partitioned by programmed level.
    partitions: Vec<LevelPartition>,
    /// Per structure: the clean post-ECC payload stream.
    clean_payload: Vec<BitBuffer>,
    /// Per ECC-protected structure: the clean pre-ECC stored stream.
    clean_stored: Vec<Option<BitBuffer>>,
    /// CSR: entry index where each row's run starts (`rows + 1` long).
    row_starts: Option<Vec<usize>>,
    /// CSR: clean per-row entry counts.
    row_counts: Option<Vec<usize>>,
    /// BitMask + IdxSync: clean value-pointer base per sync block.
    block_bases: Option<Vec<usize>>,
}

impl<'a> PreparedLayer<'a> {
    /// Prepares `stored` around a (possibly cache-shared) clean decode.
    pub fn new(stored: &'a StoredLayer, clean: Arc<CleanLayerDecode>) -> Self {
        let partitions = stored
            .structures
            .iter()
            .map(|s| LevelPartition::new(&s.cells, s.bpc.levels()))
            .collect();
        let clean_payload: Vec<BitBuffer> = stored
            .structures
            .iter()
            .map(|s| s.unpack_cells(&s.cells).0)
            .collect();
        let clean_stored = stored
            .structures
            .iter()
            .map(|s| s.ecc.map(|_| s.unpack_stored_bits(&s.cells)))
            .collect();
        let find = |kind| stored.structures.iter().position(|s| s.kind == kind);
        // CSR always stores row counters, so `find` succeeds; if the
        // stream were ever absent the layer simply loses the patch fast
        // path and decodes via the full pass.
        let csr_counters = (stored.scheme.encoding == EncodingKind::Csr)
            .then(|| find(StructureKind::RowCounter))
            .flatten();
        let (row_starts, row_counts) = if let Some(ci) = csr_counters {
            let cb = stored.counter_bits as usize;
            let buf = &clean_payload[ci];
            let counts: Vec<usize> = (0..stored.rows)
                .map(|r| buf.read_at(r * cb, cb).unwrap_or(0) as usize)
                .collect();
            let mut starts = Vec::with_capacity(stored.rows + 1);
            let mut acc = 0usize;
            starts.push(0);
            for &c in &counts {
                acc += c;
                starts.push(acc);
            }
            (Some(starts), Some(counts))
        } else {
            (None, None)
        };
        // Same shape for IdxSync: a missing counter stream (impossible
        // by construction) just disables mask patching.
        let block_bases = (stored.scheme.encoding == EncodingKind::BitMask
            && stored.scheme.idx_sync)
            .then(|| find(StructureKind::SyncCounter))
            .flatten()
            .map(|si| {
                let cb =
                    crate::bitmask::sync_counter_bits_for(stored.scheme.sync_block_bits) as usize;
                let nblocks = (stored.rows * stored.cols).div_ceil(stored.scheme.sync_block_bits);
                let buf = &clean_payload[si];
                let mut bases = Vec::with_capacity(nblocks + 1);
                let mut acc = 0usize;
                bases.push(0);
                for b in 0..nblocks {
                    acc += buf.read_at(b * cb, cb).unwrap_or(0) as usize;
                    bases.push(acc);
                }
                bases
            });
        Self {
            stored,
            clean,
            partitions,
            clean_payload,
            clean_stored,
            row_starts,
            row_counts,
            block_bases,
        }
    }

    /// Prepares `stored` without a shared cache (computes its own clean
    /// decode).
    pub fn prepare(stored: &'a StoredLayer) -> Self {
        Self::new(stored, Arc::new(CleanLayerDecode::of(stored)))
    }

    /// The underlying stored layer.
    pub fn stored(&self) -> &StoredLayer {
        self.stored
    }

    /// The shared clean decode.
    pub fn clean(&self) -> &CleanLayerDecode {
        &self.clean
    }

    /// Exact expected faulted cells per trial (all structures, or only
    /// `target`), from the cached per-structure level histograms.
    pub fn expected_faults(
        &self,
        target: Option<StructureKind>,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
    ) -> f64 {
        self.stored
            .structures
            .iter()
            .zip(&self.partitions)
            .filter(|(s, _)| target.is_none_or(|t| t == s.kind))
            .map(|(s, part)| {
                FaultInjector::new((*fault_for(s.bpc)).clone())
                    .expected_faults_exact(&part.histogram())
            })
            .sum()
    }

    /// Sparse-sampled equivalent of [`StoredLayer::decode_with_faults`].
    pub fn decode_with_faults<R: Rng + ?Sized>(
        &self,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
        rng: &mut R,
    ) -> (LayerMatrix, DecodeStats) {
        self.decode_targeted(None, fault_for, rng)
    }

    /// Sparse-sampled equivalent of
    /// [`StoredLayer::decode_with_isolated_faults`] (Fig. 5 isolation).
    pub fn decode_with_isolated_faults<R: Rng + ?Sized>(
        &self,
        target: StructureKind,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
        rng: &mut R,
    ) -> (LayerMatrix, DecodeStats) {
        self.decode_targeted(Some(target), fault_for, rng)
    }

    fn decode_targeted<R: Rng + ?Sized>(
        &self,
        target: Option<StructureKind>,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
        rng: &mut R,
    ) -> (LayerMatrix, DecodeStats) {
        let flips = self.sample_flips(target, fault_for, rng);
        self.decode_flips(&flips)
    }

    /// Samples one trial's per-structure flip lists. Structures are
    /// sampled in storage order, so the RNG stream — and therefore the
    /// trial — is a pure function of the seed; the matrix- and
    /// delta-producing paths share this sampler and thus see *identical*
    /// faults for the same RNG state.
    fn sample_flips<R: Rng + ?Sized>(
        &self,
        target: Option<StructureKind>,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
        rng: &mut R,
    ) -> Vec<Vec<(u32, u8)>> {
        self.stored
            .structures
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if target.is_some_and(|t| t != s.kind) {
                    return Vec::new();
                }
                let sampler = SparseFaultSampler::new((*fault_for(s.bpc)).clone());
                sampler.sample_faults(&self.partitions[i], rng)
            })
            .collect()
    }

    /// Sparse-sampled trial decoded to a *sparse weight delta* instead of
    /// a materialized matrix: the slot-sorted list of weight cells whose
    /// decoded value differs bitwise from the clean decode. Consumes the
    /// RNG exactly like [`PreparedLayer::decode_with_faults`], and
    /// applying the deltas onto the clean matrix reproduces its result
    /// bit for bit (locked by the storage equivalence tests).
    pub fn deltas_with_faults<R: Rng + ?Sized>(
        &self,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
        rng: &mut R,
    ) -> (Vec<WeightDelta>, DecodeStats) {
        let flips = self.sample_flips(None, fault_for, rng);
        self.deltas_flips(&flips)
    }

    /// Delta form of [`PreparedLayer::decode_with_isolated_faults`].
    pub fn deltas_with_isolated_faults<R: Rng + ?Sized>(
        &self,
        target: StructureKind,
        fault_for: &dyn Fn(MlcConfig) -> Arc<FaultMap>,
        rng: &mut R,
    ) -> (Vec<WeightDelta>, DecodeStats) {
        let flips = self.sample_flips(Some(target), fault_for, rng);
        self.deltas_flips(&flips)
    }

    /// Delta form of [`PreparedLayer::decode_flips`]: the same flips, but
    /// reported as the slot-sorted set of weight cells that end up
    /// differing bitwise from the clean matrix (possibly empty — e.g. an
    /// ECC-corrected flip or one that re-decodes to the clean centroid).
    pub fn deltas_flips(&self, flips: &[Vec<(u32, u8)>]) -> (Vec<WeightDelta>, DecodeStats) {
        let stats = DecodeStats {
            cell_faults: flips.iter().map(Vec::len).sum(),
            ..DecodeStats::default()
        };
        if stats.cell_faults == 0 {
            return (Vec::new(), stats);
        }
        if self.patchable(flips) {
            self.deltas_patch(flips, stats)
        } else {
            let (m, stats) = self.decode_full(flips, stats);
            (diff_deltas(&self.clean.matrix.data, &m.data), stats)
        }
    }

    /// Decodes under an explicit per-structure flip list (`(cell, new
    /// level)` pairs) — the seam the equivalence tests drive with the same
    /// flips applied to the full per-cell decoder.
    pub fn decode_flips(&self, flips: &[Vec<(u32, u8)>]) -> (LayerMatrix, DecodeStats) {
        let stats = DecodeStats {
            cell_faults: flips.iter().map(Vec::len).sum(),
            ..DecodeStats::default()
        };
        if stats.cell_faults == 0 {
            return (self.clean.matrix.clone(), stats);
        }
        if self.patchable(flips) {
            self.decode_patch(flips, stats)
        } else {
            self.decode_full(flips, stats)
        }
    }

    /// A dirty structure admits an incremental re-decode when its fault
    /// blast radius is bounded: Values entries are slot-local, CSR gaps
    /// row-local, IdxSync mask bits block-local. Counter faults (and
    /// mask faults without IdxSync) shift global alignment → full pass.
    fn patchable(&self, flips: &[Vec<(u32, u8)>]) -> bool {
        self.stored.structures.iter().zip(flips).all(|(s, f)| {
            f.is_empty()
                || match s.kind {
                    StructureKind::Values => true,
                    StructureKind::ColIndex => {
                        self.row_starts.is_some() && self.row_counts.is_some()
                    }
                    StructureKind::Mask => self.block_bases.is_some(),
                    _ => false,
                }
        })
    }

    /// Splices `flips` into structure `i`'s streams, re-decoding only the
    /// ECC words a flipped cell touches. Returns the patched payload and
    /// the payload bit ranges that may differ from clean.
    fn patched_payload(
        &self,
        i: usize,
        flips: &[(u32, u8)],
        stats: &mut DecodeStats,
    ) -> (BitBuffer, Vec<(usize, usize)>) {
        let s = &self.stored.structures[i];
        let mut ranges = Vec::new();
        match &s.ecc {
            None => {
                let mut payload = self.clean_payload[i].clone();
                for &(c, new) in flips {
                    let (start, end) = s.cell_bit_range(c as usize);
                    let v = s.cell_bits(new);
                    for b in 0..(end - start) {
                        payload.set(start + b, (v >> b) & 1 == 1);
                    }
                    ranges.push((start, end));
                }
                (payload, ranges)
            }
            Some(code) => {
                let codec = BlockCodec::new(*code);
                // ECC streams are cached at prepare time; recomputing on
                // a (impossible) miss keeps this path total.
                let mut bits = match &self.clean_stored[i] {
                    Some(b) => b.clone(),
                    None => s.unpack_stored_bits(&s.cells),
                };
                let mut words: Vec<usize> = Vec::new();
                for &(c, new) in flips {
                    let (start, end) = s.cell_bit_range(c as usize);
                    let v = s.cell_bits(new);
                    for b in 0..(end - start) {
                        bits.set(start + b, (v >> b) & 1 == 1);
                        words.push(codec.word_of_encoded_bit(start + b, s.payload_bits));
                    }
                }
                words.sort_unstable();
                words.dedup();
                let mut payload = self.clean_payload[i].clone();
                for &w in &words {
                    // Clean words decode Clean, so counting only dirty
                    // words reproduces the full decoder's statistics.
                    let dec = codec.decode_word(&bits, w, s.payload_bits);
                    match dec.correction {
                        Correction::Clean => {}
                        Correction::CorrectedSingle(_) => stats.ecc_corrected += 1,
                        Correction::DetectedDouble => stats.ecc_uncorrectable += 1,
                    }
                    let (ds, de) = codec.word_data_range(w, s.payload_bits);
                    for (off, bit) in dec.data.iter().enumerate() {
                        payload.set(ds + off, bit);
                    }
                    ranges.push((ds, de));
                }
                (payload, ranges)
            }
        }
    }

    /// Incremental path: patch dirty streams, then re-map only the touched
    /// entries / rows / sync blocks onto a copy of the clean matrix.
    fn decode_patch(
        &self,
        flips: &[Vec<(u32, u8)>],
        mut stats: DecodeStats,
    ) -> (LayerMatrix, DecodeStats) {
        let mut matrix = self.clean.matrix.clone();
        self.patch_walk(flips, &mut stats, |slot, v| matrix.data[slot] = v);
        (matrix, stats)
    }

    /// Incremental path producing a sparse delta: replays the exact write
    /// sequence [`Self::decode_patch`] would perform, keeps the *last*
    /// write per slot (later region re-walks overwrite earlier entry
    /// patches, exactly as they do on the materialized matrix), and drops
    /// writes that land on the clean bit pattern.
    fn deltas_patch(
        &self,
        flips: &[Vec<(u32, u8)>],
        mut stats: DecodeStats,
    ) -> (Vec<WeightDelta>, DecodeStats) {
        let mut writes: Vec<(u32, u32, f32)> = Vec::new();
        let mut seq = 0u32;
        self.patch_walk(flips, &mut stats, |slot, v| {
            writes.push((slot as u32, seq, v));
            seq += 1;
        });
        writes.sort_unstable_by_key(|&(slot, s, _)| (slot, std::cmp::Reverse(s)));
        writes.dedup_by_key(|w| w.0);
        let clean = &self.clean.matrix.data;
        let deltas = writes
            .into_iter()
            .filter(|&(slot, _, v)| v.to_bits() != clean[slot as usize].to_bits())
            .map(|(slot, _, value)| WeightDelta { slot, value })
            .collect();
        (deltas, stats)
    }

    /// The shared patching walk behind [`Self::decode_patch`] and
    /// [`Self::deltas_patch`]: patches dirty streams, then emits
    /// `write(slot, value)` for every matrix position an incremental
    /// re-decode touches, in a fixed deterministic order (entry-local
    /// Values patches, then CSR dirty-row re-walks, then IdxSync dirty
    /// sync-block re-walks).
    fn patch_walk(
        &self,
        flips: &[Vec<(u32, u8)>],
        stats: &mut DecodeStats,
        mut write: impl FnMut(usize, f32),
    ) {
        let n = self.stored.structures.len();
        let mut patched: Vec<Option<BitBuffer>> = vec![None; n];
        let mut dirty: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for i in 0..n {
            if flips[i].is_empty() {
                continue;
            }
            let (p, r) = self.patched_payload(i, &flips[i], stats);
            patched[i] = Some(p);
            dirty[i] = r;
        }
        let payload = |i: usize| patched[i].as_ref().unwrap_or(&self.clean_payload[i]);
        let find = |kind| self.stored.structures.iter().position(|s| s.kind == kind);
        let ib = self.stored.index_bits as usize;
        let top = (self.stored.centroids.len() - 1) as u16;
        let cent = |v: u16| self.stored.centroids[v.min(top) as usize];
        let Some(vi) = find(StructureKind::Values) else {
            // Every encoding stores values; nothing to patch without them.
            return;
        };
        let values = payload(vi);
        let num_entries = self.stored.structures[vi].payload_bits / ib.max(1);

        // Entry-local Values patches (valid wherever metadata is clean;
        // dirty rows / blocks are wholly re-walked below and overwrite).
        if !dirty[vi].is_empty() {
            let mut entries = bits_to_units(&dirty[vi], ib, num_entries);
            entries.sort_unstable();
            entries.dedup();
            for j in entries {
                let v = values.read_at(j * ib, ib).unwrap_or(0) as u16;
                let slot = self.clean.value_slots.get(j).copied().unwrap_or(u32::MAX);
                if slot != u32::MAX {
                    write(slot as usize, cent(v));
                }
            }
        }

        // CSR: re-walk rows whose gap stream changed.
        if let (Some(gi), Some(starts), Some(counts)) = (
            find(StructureKind::ColIndex).filter(|&gi| !dirty[gi].is_empty()),
            self.row_starts.as_ref(),
            self.row_counts.as_ref(),
        ) {
            let gaps = payload(gi);
            let gb = self.stored.col_idx_bits as usize;
            let cols = self.stored.cols;
            let mut rows: Vec<usize> = bits_to_units(&dirty[gi], gb, num_entries)
                .into_iter()
                .filter_map(|e| {
                    let r = starts.partition_point(|&s| s <= e);
                    (r > 0 && r <= self.stored.rows).then(|| r - 1)
                })
                .collect();
            rows.sort_unstable();
            rows.dedup();
            for r in rows {
                for c in 0..cols {
                    write(r * cols + c, cent(0));
                }
                let mut pos = 0usize;
                for e in starts[r]..(starts[r] + counts[r]).min(num_entries) {
                    let gap = gaps.read_at(e * gb, gb).unwrap_or(0) as usize;
                    let v = values.read_at(e * ib, ib).unwrap_or(0) as u16;
                    pos += gap;
                    if pos < cols && v != 0 {
                        write(r * cols + pos, cent(v));
                    }
                    pos += 1;
                }
            }
        }

        // BitMask + IdxSync: re-walk sync blocks whose mask changed.
        if let (Some(mi), Some(bases)) = (
            find(StructureKind::Mask).filter(|&mi| !dirty[mi].is_empty()),
            self.block_bases.as_ref(),
        ) {
            let mask = payload(mi);
            let bb = self.stored.scheme.sync_block_bits;
            let total = self.stored.rows * self.stored.cols;
            let mut blocks = bits_to_units(&dirty[mi], bb, bases.len() - 1);
            blocks.sort_unstable();
            blocks.dedup();
            for b in blocks {
                let start = b * bb;
                let end = (start + bb).min(total);
                let mut ptr = bases[b];
                for i in start..end {
                    let v = if mask.get(i).unwrap_or(false) {
                        let v = values.read_at(ptr * ib, ib).unwrap_or(0) as u16;
                        ptr += 1;
                        cent(v)
                    } else {
                        cent(0)
                    };
                    write(i, v);
                }
            }
        }
    }

    /// Fallback for alignment-shifting faults: full re-parse, but from
    /// patched-or-cached payload streams (no per-cell unpack of clean
    /// structures).
    fn decode_full(
        &self,
        flips: &[Vec<(u32, u8)>],
        mut stats: DecodeStats,
    ) -> (LayerMatrix, DecodeStats) {
        let streams: Vec<(StructureKind, BitBuffer)> = self
            .stored
            .structures
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if flips[i].is_empty() {
                    (s.kind, self.clean_payload[i].clone())
                } else {
                    (s.kind, self.patched_payload(i, &flips[i], &mut stats).0)
                }
            })
            .collect();
        let indices = self.stored.parse_streams(&streams).reconstruct_indices();
        (self.stored.matrix_from_indices(&indices), stats)
    }
}

/// Slot-sorted bitwise diff of a faulty decode against the clean matrix —
/// the delta form of the full-decode fallback path.
fn diff_deltas(clean: &[f32], faulty: &[f32]) -> Vec<WeightDelta> {
    clean
        .iter()
        .zip(faulty)
        .enumerate()
        .filter(|(_, (c, f))| c.to_bits() != f.to_bits())
        .map(|(i, (_, f))| WeightDelta {
            slot: i as u32,
            value: *f,
        })
        .collect()
}

/// Fixed-width units (entries, gap fields, sync blocks) overlapping any of
/// the given bit ranges, clamped to `count` units. Unsorted, may repeat.
fn bits_to_units(ranges: &[(usize, usize)], width: usize, count: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if width == 0 || count == 0 {
        return out;
    }
    for &(a, b) in ranges {
        if b <= a {
            continue;
        }
        let first = a / width;
        let last = ((b - 1) / width).min(count - 1);
        out.extend(first..=last.min(count - 1));
    }
    out
}
