/root/repo/target/debug/deps/maxnvm_bits-c5453b7e135823f3.d: crates/bits/src/lib.rs

/root/repo/target/debug/deps/maxnvm_bits-c5453b7e135823f3: crates/bits/src/lib.rs

crates/bits/src/lib.rs:
