/root/repo/target/release/deps/maxnvm_repro-06c3e4d84b90dabb.d: src/lib.rs

/root/repo/target/release/deps/libmaxnvm_repro-06c3e4d84b90dabb.rlib: src/lib.rs

/root/repo/target/release/deps/libmaxnvm_repro-06c3e4d84b90dabb.rmeta: src/lib.rs

src/lib.rs:
