//! Monte-Carlo injection campaigns: repeat (inject → decode → evaluate)
//! over many seeded trials and aggregate, exactly the Ares flow of §4.1.
//!
//! The heavy lifting lives in [`crate::engine`]: `Campaign` is the
//! serializable configuration, and its `run*` methods build a transient
//! [`EvalContext`] on the process-wide worker pool. The pre-engine
//! scoped-thread implementation is retained as
//! [`Campaign::run_reference`] for parity tests and benchmarks.

use crate::checkpoint::CheckpointConfig;
use crate::engine::{EngineError, EvalContext, RunControl};
use crate::evaluate::AccuracyEval;
use maxnvm_encoding::storage::{DecodeStats, StoredLayer};
use maxnvm_encoding::StructureKind;
use maxnvm_envm::{CellTechnology, FaultMap, MlcConfig, SenseAmp};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Number of independent trials (unique fault maps, §4.1).
    pub trials: usize,
    /// Base RNG seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// Multiplier on every per-cell fault rate. Leave at 1.0 for faithful
    /// rates; small stand-in models use >1 so their *expected fault
    /// counts per structure* match a full-size deployment (the stand-ins
    /// have 100-1000x fewer cells than the paper's models).
    pub rate_scale: f64,
}

impl Default for Campaign {
    fn default() -> Self {
        Self {
            trials: 20,
            seed: 0,
            rate_scale: 1.0,
        }
    }
}

/// What one Monte-Carlo trial produced: its evaluation, or — when the
/// trial panicked and was isolated by the engine's per-trial
/// `catch_unwind` — the panic, recorded with the trial's seed so the
/// failure reproduces deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrialOutcome {
    /// The trial ran to completion.
    Ok {
        /// Classification error measured by the evaluator.
        error: f64,
        /// Injection/decode statistics.
        stats: DecodeStats,
    },
    /// The trial panicked; the campaign continued without it.
    Failed {
        /// The trial's RNG seed (`campaign.seed.wrapping_add(trial)`) —
        /// rerunning with this seed reproduces the panic.
        seed: u64,
        /// The panic payload, stringified.
        message: String,
    },
}

/// A trial that panicked, as reported on [`CampaignResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedTrial {
    /// Trial index within the campaign.
    pub trial: usize,
    /// The trial's RNG seed, for offline reproduction.
    pub seed: u64,
    /// The panic payload, stringified.
    pub message: String,
}

/// Wilson score interval for a proportion `p_hat` observed over `n`
/// samples at critical value `z` (e.g. 1.96 for 95%).
///
/// Per-trial classification errors live in `[0, 1]`; among all such
/// variables with a given mean, the Bernoulli maximizes variance, so
/// treating the mean trial error as a binomial proportion over the
/// completed trials gives a conservative interval. Returns `(0, 1)`
/// when `n == 0`.
pub fn wilson_interval(p_hat: f64, n: usize, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n = n as f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p_hat + z2 / (2.0 * n)) / denom;
    let half = z * (p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Aggregated campaign outcome.
///
/// All statistics aggregate over the *completed* trials: a cancelled
/// run reports what it finished (`cancelled = true`), and trials that
/// panicked are listed in `failed_trials` rather than silently dropped
/// or allowed to unwind the sweep. `error_ci` quantifies what the
/// reduced sample supports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Per-trial classification error (completed trials, trial order).
    pub errors: Vec<f64>,
    /// Mean classification error over completed trials.
    pub mean_error: f64,
    /// Worst completed trial.
    pub max_error: f64,
    /// 95% Wilson confidence interval on the mean classification error
    /// (see [`wilson_interval`] for the conservativeness argument).
    pub error_ci: (f64, f64),
    /// Trials the caller asked for.
    pub requested_trials: usize,
    /// Trials that ran to completion (`errors.len()`).
    pub completed_trials: usize,
    /// Trials that panicked and were isolated, with seeds for
    /// reproduction.
    pub failed_trials: Vec<FailedTrial>,
    /// Whether adaptive early stopping ended the campaign before the
    /// full budget.
    pub stopped_early: bool,
    /// Whether a [`crate::cancel::CancelToken`] (or its deadline) ended
    /// the campaign before the full budget.
    pub cancelled: bool,
    /// Mean injected cell faults per trial.
    pub mean_cell_faults: f64,
    /// Exact expected cell faults per trial (sum of per-cell fault
    /// probabilities over every stored structure's level histogram).
    /// Engine-run campaigns report it; the pre-engine reference arm
    /// leaves it at `0.0`.
    pub expected_cell_faults: f64,
    /// Mean ECC-corrected codewords per trial.
    pub mean_ecc_corrected: f64,
    /// Mean uncorrectable codewords per trial.
    pub mean_ecc_uncorrectable: f64,
    /// Non-zero weights per stored layer (clean decode). Engine-run
    /// campaigns report it; older serialized results and the pre-engine
    /// reference arm leave it empty.
    #[serde(default)]
    pub layer_nnz: Vec<u64>,
    /// Achieved model density: total non-zeros over total weights
    /// (`0.0` when unreported).
    #[serde(default)]
    pub density: f64,
    /// Disk-layer counters of the run's shared encode cache (all zero
    /// when the run had none; serde-defaulted so older serialized
    /// results still load).
    #[serde(default)]
    pub encode_cache: maxnvm_encoding::storage::EncodeCacheStats,
}

impl CampaignResult {
    pub(crate) fn from_trials(trials: Vec<(f64, DecodeStats)>) -> Self {
        let requested = trials.len();
        let outcomes: Vec<(usize, TrialOutcome)> = trials
            .into_iter()
            .enumerate()
            .map(|(t, (error, stats))| (t, TrialOutcome::Ok { error, stats }))
            .collect();
        Self::from_outcomes(requested, outcomes)
    }

    /// Builds a result from per-trial outcomes (`(trial index, outcome)`;
    /// indices need not be contiguous — trials missing entirely were
    /// cancelled before running). Statistics aggregate over the `Ok`
    /// outcomes; failures are carried on `failed_trials`.
    pub(crate) fn from_outcomes(
        requested: usize,
        mut outcomes: Vec<(usize, TrialOutcome)>,
    ) -> Self {
        outcomes.sort_by_key(|(t, _)| *t);
        let mut errors = Vec::with_capacity(outcomes.len());
        let mut failed_trials = Vec::new();
        let mut stats_sum = DecodeStats::default();
        for (trial, outcome) in outcomes {
            match outcome {
                TrialOutcome::Ok { error, stats } => {
                    errors.push(error);
                    stats_sum.absorb(stats);
                }
                TrialOutcome::Failed { seed, message } => failed_trials.push(FailedTrial {
                    trial,
                    seed,
                    message,
                }),
            }
        }
        let completed = errors.len();
        let n = completed.max(1) as f64;
        let mean_error = errors.iter().sum::<f64>() / n;
        let max_error = errors.iter().cloned().fold(0.0, f64::max);
        Self {
            mean_error,
            max_error,
            error_ci: wilson_interval(mean_error, completed, 1.96),
            requested_trials: requested,
            completed_trials: completed,
            failed_trials,
            stopped_early: false,
            cancelled: false,
            mean_cell_faults: stats_sum.cell_faults as f64 / n,
            expected_cell_faults: 0.0,
            mean_ecc_corrected: stats_sum.ecc_corrected as f64 / n,
            mean_ecc_uncorrectable: stats_sum.ecc_uncorrectable as f64 / n,
            layer_nnz: Vec::new(),
            density: 0.0,
            encode_cache: maxnvm_encoding::storage::EncodeCacheStats::default(),
            errors,
        }
    }

    /// Attaches the run's encode-cache disk counters.
    pub(crate) fn with_encode_cache(
        mut self,
        stats: maxnvm_encoding::storage::EncodeCacheStats,
    ) -> Self {
        self.encode_cache = stats;
        self
    }

    /// Attaches the clean model's per-layer non-zero counts and achieved
    /// density (see [`crate::evaluate::SparseModel`]).
    pub(crate) fn with_density(mut self, layer_nnz: Vec<u64>, density: f64) -> Self {
        self.layer_nnz = layer_nnz;
        self.density = density;
        self
    }

    /// Attaches the analytically exact expected fault count per trial
    /// (from [`maxnvm_envm::FaultInjector::expected_faults_exact`]).
    pub(crate) fn with_expected_faults(mut self, expected: f64) -> Self {
        self.expected_cell_faults = expected;
        self
    }

    /// Marks how the run ended (early-stopped and/or cancelled).
    pub(crate) fn with_termination(mut self, stopped_early: bool, cancelled: bool) -> Self {
        self.stopped_early = stopped_early;
        self.cancelled = cancelled;
        self
    }

    /// Whether the mean error stays within `bound` of `baseline` — the
    /// paper's iso-training-noise acceptance test (§3.1.1).
    pub fn within_itn(&self, baseline: f64, bound: f64) -> bool {
        self.mean_error <= baseline + bound
    }

    /// Wilson interval on the mean error at critical value `z`, over
    /// the completed trials (the stored `error_ci` uses `z = 1.96`).
    pub fn wilson_ci(&self, z: f64) -> (f64, f64) {
        wilson_interval(self.mean_error, self.completed_trials, z)
    }
}

/// Builds the per-bits-per-cell fault maps for a technology (including the
/// sense-amp offset, §2.3). The maps are built once and handed out by
/// `Arc`, so a hot per-cell lookup loop never copies probability tables.
// maxnvm-lint: allow(R1/index-arith): maps is built over MlcConfig::ALL in bits order, so (bits()-1) indexes the matching slot and bits() >= 1 by construction.
pub fn fault_maps(tech: CellTechnology, sa: &SenseAmp) -> impl Fn(MlcConfig) -> Arc<FaultMap> + '_ {
    let maps: Vec<Arc<FaultMap>> = MlcConfig::ALL
        .iter()
        .map(|&cfg| {
            Arc::new(if cfg.bits() <= tech.max_bits_per_cell() {
                tech.cell_model(cfg).with_sense_amp(sa).fault_map()
            } else {
                FaultMap::perfect(cfg.levels())
            })
        })
        .collect();
    move |cfg: MlcConfig| Arc::clone(&maps[(cfg.bits() - 1) as usize])
}

impl Campaign {
    /// Runs the full campaign: all structures of every layer are injected
    /// each trial. Trials run in parallel on the engine's worker pool;
    /// results are deterministic per seed at any worker count.
    ///
    /// Errors with [`EngineError::InvalidRateScale`] if `rate_scale` is
    /// not a positive finite number.
    pub fn run(
        &self,
        stored: &[StoredLayer],
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
    ) -> Result<CampaignResult, EngineError> {
        let ctx = EvalContext::new(tech, sa, self.rate_scale)?;
        ctx.run_campaign(self.trials, self.seed, stored, eval)
    }

    /// Runs a campaign injecting faults *only* into structures of `target`
    /// kind (others stored perfectly) — Fig. 5's isolation methodology.
    pub fn run_isolated(
        &self,
        stored: &[StoredLayer],
        target: StructureKind,
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
    ) -> Result<CampaignResult, EngineError> {
        let ctx = EvalContext::new(tech, sa, self.rate_scale)?;
        ctx.run_isolated(self.trials, self.seed, target, stored, eval)
    }

    /// [`Campaign::run`] under a [`RunControl`]: per-trial panic
    /// isolation, cooperative cancellation (flag or deadline),
    /// checkpointing at the configured cadence, and optional Wilson
    /// early stopping. With `RunControl::default()` this is exactly
    /// [`Campaign::run`].
    pub fn run_controlled(
        &self,
        stored: &[StoredLayer],
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
        control: &RunControl,
    ) -> Result<CampaignResult, EngineError> {
        let ctx = EvalContext::new(tech, sa, self.rate_scale)?;
        ctx.run_campaign_controlled(self.trials, self.seed, stored, eval, control)
    }

    /// Resumes a checkpointed campaign from `path`: trials the snapshot
    /// already covers are not rerun, the remainder executes under
    /// `control`, and the final result is byte-identical to an
    /// uninterrupted [`Campaign::run_controlled`] at any worker count.
    ///
    /// Errors with [`EngineError::CheckpointIo`] if no checkpoint exists
    /// at `path` (nothing to resume), and with
    /// [`EngineError::CheckpointMismatch`] if the snapshot was written
    /// by a different configuration (trials, seed, rate scale, schemes,
    /// evaluator baseline, early-stop rule, …).
    pub fn resume_from(
        &self,
        path: impl Into<std::path::PathBuf>,
        stored: &[StoredLayer],
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
        control: &RunControl,
    ) -> Result<CampaignResult, EngineError> {
        let path = path.into();
        if !path.exists() {
            return Err(EngineError::CheckpointIo {
                path: path.display().to_string(),
                detail: "no checkpoint to resume from".to_string(),
            });
        }
        let mut control = control.clone();
        control.checkpoint = Some(match control.checkpoint.take() {
            Some(mut cp) => {
                cp.path = path;
                cp
            }
            None => CheckpointConfig::new(path),
        });
        self.run_controlled(stored, tech, sa, eval, &control)
    }

    /// Merges the checkpoints of a sharded run: each `sources` path
    /// holds one shard's complete (or partial) snapshot, written by a
    /// worker running this same campaign under a
    /// [`crate::engine::ShardSpec`]. The merge preseeds an *unsharded*
    /// run with every source's trials — verified against this
    /// configuration's fingerprint folded with each snapshot's own
    /// recorded shard layout — then executes whatever is missing, so
    /// the output is byte-identical to the uninterrupted 1-shard
    /// [`Campaign::run_controlled`]: same trials, same early-stopping
    /// decisions, same `failed_trials` replay seeds, same Wilson CIs.
    /// Sources from killed shards merely leave more trials to run here.
    ///
    /// Errors with [`EngineError::CheckpointIo`] if a source is missing,
    /// and with [`EngineError::CheckpointMismatch`] if one was written
    /// by a different configuration or under a mangled shard layout.
    pub fn merge(
        &self,
        sources: &[std::path::PathBuf],
        stored: &[StoredLayer],
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
        control: &RunControl,
    ) -> Result<CampaignResult, EngineError> {
        for source in sources {
            if !source.exists() {
                return Err(EngineError::CheckpointIo {
                    path: source.display().to_string(),
                    detail: "no checkpoint to merge from".to_string(),
                });
            }
        }
        let mut control = control.clone();
        control.shard = crate::engine::ShardSpec::unsharded();
        control.merge_sources = sources.to_vec();
        self.run_controlled(stored, tech, sa, eval, &control)
    }

    /// Runs the campaign with the paper's exact chip semantics: each
    /// trial *programs a chip instance* (every cell's analog outcome drawn
    /// once from its level distribution, §4.1) and decodes it
    /// deterministically. Statistically this matches [`Campaign::run`] for
    /// single decodes, but it also produces the rare non-adjacent misreads
    /// and models faults as permanent.
    ///
    /// Errors with [`EngineError::ChipRateScale`] if `rate_scale != 1.0`
    /// — analog programming outcomes cannot be rate-scaled; use the
    /// fault-map path for scaled studies.
    pub fn run_chips(
        &self,
        stored: &[StoredLayer],
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
    ) -> Result<CampaignResult, EngineError> {
        if (self.rate_scale - 1.0).abs() > 1e-12 {
            return Err(EngineError::ChipRateScale(self.rate_scale));
        }
        let ctx = EvalContext::new(tech, sa, self.rate_scale)?;
        ctx.run_chips(self.trials, self.seed, stored, eval)
    }

    /// The pre-engine implementation: scoped threads spawned per call,
    /// hard-capped at eight, fault maps rebuilt (and re-scaled per
    /// lookup) on every thread, and every trial paying a full per-cell
    /// inject + decode pass. Retained unchanged as the reference arm for
    /// parity tests and the speedup benchmark. [`Campaign::run`] now
    /// samples faults sparsely (a different RNG stream with the same
    /// per-cell marginals), so the two arms agree statistically rather
    /// than bit for bit.
    pub fn run_reference(
        &self,
        stored: &[StoredLayer],
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
    ) -> CampaignResult {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(self.trials.max(1))
            .min(8);
        let mut results: Vec<(f64, DecodeStats)> = Vec::with_capacity(self.trials);
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let trial_ids: Vec<usize> = (0..self.trials).filter(|i| i % threads == t).collect();
                let seed = self.seed;
                let rate_scale = self.rate_scale;
                handles.push(scope.spawn(move |_| {
                    let base_maps = fault_maps(tech, sa);
                    let fault_for =
                        move |cfg: MlcConfig| Arc::new(base_maps(cfg).scaled(rate_scale));
                    let mut out = Vec::with_capacity(trial_ids.len());
                    for trial in trial_ids {
                        let mut rng =
                            rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(trial as u64));
                        let mut stats = DecodeStats::default();
                        let mats: Vec<_> = stored
                            .iter()
                            .map(|layer| {
                                let (m, s) = layer.decode_with_faults(&fault_for, &mut rng);
                                stats.absorb(s);
                                m
                            })
                            .collect();
                        out.push((trial, eval.eval(&mats), stats));
                    }
                    out
                }));
            }
            let mut all: Vec<(usize, f64, DecodeStats)> = handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(v) => v,
                    // The reference arm has no per-trial isolation by
                    // design; propagate the worker's panic verbatim.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect();
            all.sort_by_key(|(t, _, _)| *t);
            results = all.into_iter().map(|(_, e, s)| (e, s)).collect();
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        CampaignResult::from_trials(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::ProxyEval;
    use maxnvm_dnn::network::LayerMatrix;
    use maxnvm_encoding::cluster::ClusteredLayer;
    use maxnvm_encoding::storage::StorageScheme;
    use maxnvm_encoding::EncodingKind;
    use rand::Rng;

    fn stored_layer(scale: f64, bpc: MlcConfig) -> (ClusteredLayer, StoredLayer) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let data: Vec<f32> = (0..64 * 128)
            .map(|_| {
                if rng.gen::<f64>() < 0.5 {
                    0.0
                } else {
                    rng.gen::<f32>() + 0.1
                }
            })
            .collect();
        let m = LayerMatrix::new("l", 64, 128, data);
        let c = ClusteredLayer::from_matrix(&m, 4, 3);
        let stored = StoredLayer::store(&c, &StorageScheme::uniform(EncodingKind::BitMask, bpc));
        let _ = scale;
        (c, stored)
    }

    #[test]
    fn zero_fault_technology_reproduces_baseline() {
        let (c, stored) = stored_layer(1.0, MlcConfig::SLC);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        // SLC RRAM fault rates are below 1e-10: effectively no faults.
        let result = Campaign {
            trials: 5,
            seed: 1,
            rate_scale: 1.0,
        }
        .run(
            std::slice::from_ref(&stored),
            CellTechnology::SlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect("campaign");
        assert!((result.mean_error - 0.05).abs() < 1e-9);
        assert_eq!(result.mean_cell_faults, 0.0);
    }

    #[test]
    fn mlc3_bitmask_without_protection_raises_error() {
        // Mask faults propagate: a campaign on an unprotected MLC3 bitmask
        // layer must show error above baseline. RRAM MLC3 mean rate ~1e-5;
        // ~2700 mask cells -> use many trials and check the mean moved.
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let result = Campaign {
            trials: 60,
            seed: 2,
            rate_scale: 1.0,
        }
        .run(
            std::slice::from_ref(&stored),
            CellTechnology::MlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect("campaign");
        // With per-cell rates ~1e-5 and ~15k cells total, a fair share of
        // trials see at least one fault; the worst trial must degrade.
        assert!(result.mean_cell_faults > 0.0, "no faults injected");
        assert!(result.max_error > 0.05, "max {}", result.max_error);
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let run = |seed| {
            Campaign {
                trials: 8,
                seed,
                rate_scale: 1.0,
            }
            .run(
                std::slice::from_ref(&stored),
                CellTechnology::MlcRram,
                &SenseAmp::paper_default(),
                &eval,
            )
            .expect("campaign")
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.errors, b.errors);
    }

    #[test]
    fn engine_run_agrees_with_the_reference_implementation() {
        // The engine samples faults sparsely (geometric skips), drawing a
        // different RNG stream than the reference's per-cell injector, so
        // the arms agree statistically — same Binomial marginals — not
        // bitwise.
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let campaign = Campaign {
            trials: 200,
            seed: 21,
            rate_scale: 40.0,
        };
        let engine = campaign
            .run(
                std::slice::from_ref(&stored),
                CellTechnology::MlcRram,
                &SenseAmp::paper_default(),
                &eval,
            )
            .expect("campaign");
        let reference = campaign.run_reference(
            std::slice::from_ref(&stored),
            CellTechnology::MlcRram,
            &SenseAmp::paper_default(),
            &eval,
        );
        assert_eq!(engine.errors.len(), reference.errors.len());
        // The engine reports the analytically exact expectation, and both
        // arms' empirical fault means must sit near it.
        assert!(
            engine.expected_cell_faults > 0.5,
            "{}",
            engine.expected_cell_faults
        );
        for (arm, mean) in [
            ("engine", engine.mean_cell_faults),
            ("reference", reference.mean_cell_faults),
        ] {
            let rel = (mean / engine.expected_cell_faults - 1.0).abs();
            assert!(
                rel < 0.25,
                "{arm} mean {mean} vs expected {} (rel {rel})",
                engine.expected_cell_faults
            );
        }
        assert!(
            (engine.mean_error - reference.mean_error).abs() < 0.1,
            "engine {} vs reference {}",
            engine.mean_error,
            reference.mean_error
        );
    }

    #[test]
    fn invalid_rate_scale_is_a_typed_error() {
        let (c, stored) = stored_layer(1.0, MlcConfig::SLC);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let err = Campaign {
            trials: 1,
            seed: 0,
            rate_scale: -3.0,
        }
        .run(
            std::slice::from_ref(&stored),
            CellTechnology::SlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect_err("negative rate_scale must be rejected");
        assert_eq!(err, EngineError::InvalidRateScale(-3.0));
    }

    #[test]
    fn chip_campaign_matches_fault_map_campaign_statistically() {
        // On an SLC layer both paths see (essentially) zero faults and
        // agree exactly; on MLC3 their mean fault counts must agree.
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let campaign = Campaign {
            trials: 40,
            seed: 7,
            rate_scale: 1.0,
        };
        let maps = campaign
            .run(
                std::slice::from_ref(&stored),
                CellTechnology::MlcRram,
                &SenseAmp::paper_default(),
                &eval,
            )
            .expect("campaign");
        let chips = campaign
            .run_chips(
                std::slice::from_ref(&stored),
                CellTechnology::MlcRram,
                &SenseAmp::paper_default(),
                &eval,
            )
            .expect("chip campaign");
        // Expected faults per trial are fractions of a fault at these
        // rates; mean counts must be within a fault of each other.
        assert!(
            (maps.mean_cell_faults - chips.mean_cell_faults).abs() < 1.0,
            "maps {} vs chips {}",
            maps.mean_cell_faults,
            chips.mean_cell_faults
        );
    }

    #[test]
    fn chip_campaign_is_bit_exact_with_materialized_reference() {
        // The engine's chip path no longer materializes anything: it
        // samples only the mis-programmed cells and evaluates sparse
        // deltas through the sparse inference path. It must reproduce
        // the old materializing semantics — program every cell, decode
        // the chip, evaluate the matrices — bit for bit, trial by trial.
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let (trials, seed) = (48usize, 13u64);
        let chips = Campaign {
            trials,
            seed,
            rate_scale: 1.0,
        }
        .run_chips(
            std::slice::from_ref(&stored),
            CellTechnology::MlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect("chip campaign");
        let sa = SenseAmp::paper_default();
        let cell_for = |cfg: MlcConfig| CellTechnology::MlcRram.cell_model(cfg).with_sense_amp(&sa);
        let mut ref_errors = Vec::with_capacity(trials);
        let mut total_faults = 0usize;
        for t in 0..trials {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(t as u64));
            let mut stats = DecodeStats::default();
            let chip = stored.program_chip(&cell_for, &mut rng);
            let (m, s) = chip.decode();
            stats.absorb(s);
            total_faults += stats.cell_faults;
            ref_errors.push(eval.eval(std::slice::from_ref(&m)));
        }
        assert!(total_faults > 0, "no chip faults: the lock is vacuous");
        assert_eq!(chips.errors, ref_errors, "chip trials drifted");
        assert!((chips.mean_cell_faults - total_faults as f64 / trials as f64).abs() < 1e-12);
        // The sparse path also reports the clean model's density.
        assert_eq!(chips.layer_nnz, vec![c.nonzeros() as u64]);
        assert!(chips.density > 0.0 && chips.density < 1.0);
    }

    #[test]
    fn chip_campaign_rejects_rate_scaling() {
        let (c, stored) = stored_layer(1.0, MlcConfig::SLC);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let err = Campaign {
            trials: 1,
            seed: 0,
            rate_scale: 2.0,
        }
        .run_chips(
            std::slice::from_ref(&stored),
            CellTechnology::SlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect_err("scaled chip campaign must be rejected");
        assert_eq!(err, EngineError::ChipRateScale(2.0));
    }

    #[test]
    fn within_itn_uses_mean() {
        let r = CampaignResult::from_trials(vec![
            (0.1, DecodeStats::default()),
            (0.2, DecodeStats::default()),
        ]);
        assert!((r.mean_error - 0.15).abs() < 1e-12);
        assert!(r.within_itn(0.1, 0.06));
        assert!(!r.within_itn(0.1, 0.04));
    }

    #[test]
    fn wilson_interval_is_sane() {
        // n = 0: no information.
        assert_eq!(wilson_interval(0.5, 0, 1.96), (0.0, 1.0));
        // The interval brackets the point estimate and tightens with n.
        let (lo_s, hi_s) = wilson_interval(0.2, 10, 1.96);
        let (lo_l, hi_l) = wilson_interval(0.2, 1000, 1.96);
        assert!(lo_s < 0.2 && 0.2 < hi_s);
        assert!(lo_l < 0.2 && 0.2 < hi_l);
        assert!(hi_l - lo_l < hi_s - lo_s, "more trials must tighten the CI");
        // Extremes stay clamped to [0, 1] and never collapse to a point
        // at finite n.
        let (lo0, hi0) = wilson_interval(0.0, 20, 1.96);
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 1.0);
        let (lo1, hi1) = wilson_interval(1.0, 20, 1.96);
        assert!(lo1 < 1.0 && lo1 > 0.0);
        assert_eq!(hi1, 1.0);
    }

    #[test]
    fn from_outcomes_reports_failures_and_reduced_sample() {
        let outcomes = vec![
            (
                0,
                TrialOutcome::Ok {
                    error: 0.1,
                    stats: DecodeStats::default(),
                },
            ),
            (
                1,
                TrialOutcome::Failed {
                    seed: 99,
                    message: "boom".into(),
                },
            ),
            (
                2,
                TrialOutcome::Ok {
                    error: 0.3,
                    stats: DecodeStats::default(),
                },
            ),
        ];
        let r = CampaignResult::from_outcomes(4, outcomes);
        assert_eq!(r.requested_trials, 4);
        assert_eq!(r.completed_trials, 2);
        assert_eq!(r.errors, vec![0.1, 0.3]);
        assert!((r.mean_error - 0.2).abs() < 1e-12);
        assert_eq!(r.failed_trials.len(), 1);
        assert_eq!(r.failed_trials[0].trial, 1);
        assert_eq!(r.failed_trials[0].seed, 99);
        assert_eq!(r.failed_trials[0].message, "boom");
        // The CI reflects the reduced sample (n = 2, very wide).
        assert_eq!(r.error_ci, wilson_interval(0.2, 2, 1.96));
        assert!(r.error_ci.1 - r.error_ci.0 > 0.5);
    }

    #[test]
    fn isolated_run_only_faults_target() {
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        // Isolate the (tiny) sync-counter structure of a non-IdxSync
        // layer: it does not exist, so no faults at all.
        let result = Campaign {
            trials: 4,
            seed: 5,
            rate_scale: 1.0,
        }
        .run_isolated(
            std::slice::from_ref(&stored),
            StructureKind::SyncCounter,
            CellTechnology::MlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect("campaign");
        assert_eq!(result.mean_cell_faults, 0.0);
        assert!((result.mean_error - 0.05).abs() < 1e-9);
    }
}
