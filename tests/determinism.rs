//! Determinism guarantees: every stochastic stage is seeded, so the whole
//! pipeline — training, clustering, storage, injection, DSE, system
//! evaluation — must be bit-reproducible run to run. This is what makes
//! the regression locks and `EXPERIMENTS.md` meaningful.

use maxnvm::{optimal_design, CellTechnology};
use maxnvm_dnn::data::SyntheticDigits;
use maxnvm_dnn::train::{sgd_train, TrainConfig};
use maxnvm_dnn::zoo::{self, lenet_mini};
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{MlcConfig, SenseAmp};
use maxnvm_faultsim::campaign::Campaign;
use maxnvm_faultsim::evaluate::ProxyEval;

#[test]
fn training_is_deterministic() {
    let data = SyntheticDigits::generate(300, 42);
    let run = || {
        let mut net = lenet_mini(7);
        sgd_train(
            &mut net,
            &data.train,
            &TrainConfig {
                epochs: 2,
                lr: 0.005,
                momentum: 0.9,
                seed: 1,
            },
        )
        .unwrap();
        net
    };
    assert_eq!(run(), run());
}

#[test]
fn clustering_and_storage_are_deterministic() {
    let spec = zoo::vgg12();
    let m = spec.layers[3].sample_matrix(spec.paper.sparsity, 9, 64, 256);
    let run = || {
        let c = ClusteredLayer::from_matrix(&m, 4, 5);
        StoredLayer::store(
            &c,
            &StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn campaigns_are_deterministic_across_thread_schedules() {
    // Trials are seeded per trial id, so the parallel campaign's result
    // must not depend on thread interleaving.
    let spec = zoo::vgg12();
    let m = spec.layers[5].sample_matrix(spec.paper.sparsity, 11, 64, 256);
    let c = ClusteredLayer::from_matrix(&m, 4, 5);
    let stored = StoredLayer::store(
        &c,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3),
    );
    let eval = ProxyEval::new(vec![c.reconstruct()], 0.1, 0.9);
    let campaign = Campaign {
        trials: 16,
        seed: 3,
        rate_scale: 100.0,
    };
    let run = || {
        campaign
            .run(
                std::slice::from_ref(&stored),
                CellTechnology::MlcCtt,
                &SenseAmp::paper_default(),
                &eval,
            )
            .expect("campaign")
    };
    let a = run();
    let b = run();
    assert_eq!(a.errors, b.errors);
    assert_eq!(a.mean_cell_faults, b.mean_cell_faults);
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = optimal_design(&zoo::resnet50(), CellTechnology::MlcCtt).expect("design");
    let b = optimal_design(&zoo::resnet50(), CellTechnology::MlcCtt).expect("design");
    assert_eq!(a, b);
}

/// A small but non-trivial DSE setup: one sparse layer, a handful of
/// trials, exaggerated rates so faults actually land.
fn dse_fixture() -> (Vec<ClusteredLayer>, ProxyEval, maxnvm_faultsim::DseConfig) {
    let spec = zoo::vgg12();
    let m = spec.layers[4].sample_matrix(spec.paper.sparsity, 17, 48, 160);
    let c = ClusteredLayer::from_matrix(&m, 4, 5);
    let eval = ProxyEval::new(vec![c.reconstruct()], 0.1, 0.9);
    let cfg = maxnvm_faultsim::DseConfig {
        campaign: Campaign {
            trials: 4,
            seed: 13,
            rate_scale: 120.0,
        },
        itn_bound: 0.02,
    };
    (vec![c], eval, cfg)
}

#[test]
fn engine_dse_is_identical_at_any_worker_count() {
    // The engine seeds per (scheme, trial) and assembles results by
    // index, so the point vector must be byte-identical whether one
    // worker or every core runs the sweep.
    use maxnvm_faultsim::engine::EvalContext;
    let (layers, eval, cfg) = dse_fixture();
    let sa = SenseAmp::paper_default();
    let run = |workers| {
        EvalContext::with_workers(
            CellTechnology::MlcCtt,
            &sa,
            cfg.campaign.rate_scale,
            workers,
        )
        .expect("context")
        .run_dse(&layers, &eval, &cfg)
        .expect("dse")
    };
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let one = run(1);
    assert_eq!(one, run(2));
    assert_eq!(one, run(max));
}

#[test]
fn engine_dse_agrees_with_the_reference_sweep() {
    // The engine samples faults sparsely, drawing a different RNG stream
    // than the pre-engine per-cell sweep, so per-point errors differ
    // within Monte-Carlo noise; everything deterministic — the candidate
    // schemes and their cell counts — must match exactly.
    use maxnvm_faultsim::dse::{explore_concrete, explore_concrete_reference, DsePoint};
    let (layers, eval, mut cfg) = dse_fixture();
    cfg.campaign.trials = 24;
    let sa = SenseAmp::paper_default();
    let engine = explore_concrete(&layers, CellTechnology::MlcCtt, &sa, &eval, &cfg).expect("dse");
    let reference = explore_concrete_reference(&layers, CellTechnology::MlcCtt, &sa, &eval, &cfg);
    assert_eq!(engine.len(), reference.len());
    for (e, r) in engine.iter().zip(&reference) {
        assert_eq!(e.scheme, r.scheme);
        assert_eq!(e.cells, r.cells);
    }
    // Sweep-wide mean error aggregates 105 schemes x 24 trials per arm;
    // the two samplers must land on the same value within noise.
    let sweep_mean =
        |pts: &[DsePoint]| pts.iter().map(|p| p.mean_error).sum::<f64>() / pts.len() as f64;
    let (me, mr) = (sweep_mean(&engine), sweep_mean(&reference));
    assert!((me - mr).abs() < 0.03, "engine {me} vs reference {mr}");
}
