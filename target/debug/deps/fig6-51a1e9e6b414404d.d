/root/repo/target/debug/deps/fig6-51a1e9e6b414404d.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-51a1e9e6b414404d: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
