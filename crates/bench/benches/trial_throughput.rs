//! Trial throughput: per-cell injection with a full decode (the
//! pre-`PreparedLayer` path, still used by the reference arms) vs sparse
//! fault sampling with dirty-region incremental decode, on LeNet5-scale
//! layers at physical (~1e-5) MLC-CTT fault rates.
//!
//! Run with `cargo bench -p maxnvm-bench --bench trial_throughput`.
//! Besides the stdout summary, emits `BENCH_trial_throughput.json` at
//! the workspace root with before/after trials-per-second and the
//! speedup, for CI and regression tracking.

use maxnvm_dnn::gemm::{self, gemm_into, sparse_gemm_into, GemmScratch};
use maxnvm_dnn::layer::Layer;
use maxnvm_dnn::network::{LayerMatrix, Network, WeightDelta};
use maxnvm_dnn::sparse::SparseMatrix;
use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{
    EncodeCache, EncodeDiskCache, PreparedLayer, StorageScheme, StoredLayer,
};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::campaign::fault_maps;
use maxnvm_faultsim::dse::{minimal_cells, DseConfig, DsePoint};
use maxnvm_faultsim::evaluate::{EvalScratch, SparseModel};
use maxnvm_faultsim::{
    AccuracyEval, Campaign, CheckpointConfig, EarlyStop, EvalContext, NetworkEval, ProxyEval,
    RunControl, ShardSpec,
};
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Trials per second of `trial` over a ~2 s measurement window (one
/// untimed warmup call first).
fn throughput(mut trial: impl FnMut(u64)) -> f64 {
    trial(u64::MAX);
    let start = Instant::now();
    let mut n = 0u64;
    while start.elapsed().as_secs_f64() < 2.0 {
        trial(n);
        n += 1;
    }
    n as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    // Re-executed as a shard worker by the sharded-DSE arm: run this
    // process's slice of the sweep and exit (server kill-resume tests
    // use the same self-re-exec pattern).
    if let Ok(layout) = std::env::var(SHARD_CHILD_ENV) {
        run_shard_child(&layout);
        return;
    }
    let spec = zoo::lenet5();
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync();
    let stored: Vec<StoredLayer> = spec
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let m = l.sample_matrix(spec.paper.sparsity, 40 + i as u64, 1024, 1024);
            StoredLayer::store(
                &ClusteredLayer::from_matrix(&m, spec.paper.cluster_index_bits, 2),
                &scheme,
            )
        })
        .collect();
    let cells: u64 = stored.iter().map(StoredLayer::total_cells).sum();
    let sa = SenseAmp::paper_default();
    let fault_for = fault_maps(CellTechnology::MlcCtt, &sa);

    let prepared: Vec<PreparedLayer> = stored.iter().map(PreparedLayer::prepare).collect();
    let expected: f64 = prepared
        .iter()
        .map(|p| p.expected_faults(None, &fault_for))
        .sum();

    let before = throughput(|t| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(t);
        for layer in &stored {
            let _ = layer.decode_with_faults(&fault_for, &mut rng);
        }
    });
    let after = throughput(|t| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(t);
        for layer in &prepared {
            let _ = layer.decode_with_faults(&fault_for, &mut rng);
        }
    });
    let speedup = after / before;

    // Full sparse trials, end to end: sample fault deltas against the
    // shared clean decodes and evaluate them through the incremental
    // `eval_deltas` path — the engine's actual per-trial work since the
    // fault-delta forward landed (no faulty matrix is ever materialized).
    let clean: Vec<LayerMatrix> = prepared.iter().map(|p| p.clean().matrix.clone()).collect();
    let eval = ProxyEval::new(clean.clone(), 0.1, 0.9);
    let mut scratch = EvalScratch::default();
    let trials_per_sec = throughput(|t| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(t);
        let deltas: Vec<Vec<WeightDelta>> = prepared
            .iter()
            .map(|layer| layer.deltas_with_faults(&fault_for, &mut rng).0)
            .collect();
        std::hint::black_box(eval.eval_deltas(0, &clean, &deltas, &mut scratch));
    });

    // How much of the forward pass the clean-prefix cache skips: the mean
    // (over sampled trials) of the fraction of layers strictly before the
    // first fault-touched one (1.0 for an entirely clean trial).
    let prefix_skip_rate = {
        const SKIP_TRIALS: usize = 2000;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut sum = 0.0f64;
        for _ in 0..SKIP_TRIALS {
            let deltas: Vec<Vec<WeightDelta>> = prepared
                .iter()
                .map(|layer| layer.deltas_with_faults(&fault_for, &mut rng).0)
                .collect();
            sum += match deltas.iter().position(|d| !d.is_empty()) {
                Some(first) => first as f64 / prepared.len() as f64,
                None => 1.0,
            };
        }
        sum / SKIP_TRIALS as f64
    };

    // Kernel arms: the headline numbers run on whatever tier runtime
    // dispatch selected for this host (`simd_tier`); the per-tier table
    // pins each supported tier in turn so the cost of every rung is on
    // record alongside the bit-identity the tests lock.
    let simd_tier = gemm::active_tier().name();
    let gemm_gflops = gemm_gflops(1.0);
    let sparse_gemm_gflops = sparse_gemm_gflops(zoo::vgg12().paper.sparsity, 1.0);
    let tier_table = per_tier_gflops();
    let (crossover_sweep, crossover_density) = density_crossover(gemm_gflops);
    let vgg = vgg12_scale_arm();

    println!(
        "trial_throughput: {} / {}, {cells} cells, {expected:.3} expected faults/trial",
        spec.name,
        scheme.label()
    );
    println!("  before (per-cell inject + full decode):   {before:>10.1} trials/s");
    println!("  after  (sparse sample + dirty re-decode): {after:>10.1} trials/s");
    println!("  speedup: {speedup:.1}x");
    println!("  full trial (deltas + incremental eval):   {trials_per_sec:>10.1} trials/s");
    println!("  prefix skip rate: {prefix_skip_rate:.4} of layers clean before first fault");
    println!("  simd tier: {simd_tier}");
    println!("  gemm: {gemm_gflops:.2} GFLOP/s (256x256x256 blocked kernel)");
    println!(
        "  sparse gemm: {sparse_gemm_gflops:.2} dense-equivalent GFLOP/s \
         (256x256x256, {:.1}% pruned lhs)",
        zoo::vgg12().paper.sparsity * 100.0
    );
    for (name, dense, sparse) in &tier_table {
        println!("  tier {name:<7} gemm {dense:>8.2} GFLOP/s   sparse gemm {sparse:>8.2} GFLOP/s");
    }
    println!(
        "  sparse/dense crossover: sparse walk wins up to density {crossover_density:.2} \
         (routing cutover fixed at {:.2})",
        gemm::SPARSE_DENSE_CUTOVER
    );
    for (d, ratio) in &crossover_sweep {
        println!("    density {d:.2}: sparse/dense throughput ratio {ratio:.2}");
    }
    println!(
        "vgg12_scale: {} weights, {:.3} density, {:.3} expected faults/trial",
        vgg.weights, vgg.density, vgg.expected_faults
    );
    println!(
        "  dense (materialize + full dense forward):  {:>10.1} trials/s",
        vgg.dense_trials_per_sec
    );
    println!(
        "  sparse (deltas + prefix + sparse suffix):  {:>10.1} trials/s",
        vgg.sparse_trials_per_sec
    );
    println!("  sparse speedup: {:.1}x", vgg.speedup);

    let es = early_stopping_arm();
    let shard = shard_arm();
    let srv = server_arm();

    // Provenance: which revision produced the row, which lint-pass rule
    // set it was checked under (the `version` in lint-allow.toml), which
    // TRIAL_SEMANTICS_VERSION the S1 fingerprint gate had locked, and
    // the per-rule violation/allow counts of the last lint report — so
    // regression rows stay attributable after the rules evolve.
    let git_sha = git_sha().unwrap_or_else(|| "unknown".to_string());
    let lint_pass_version = lint_pass_version().unwrap_or(0);
    let semantics_lock_version = semantics_lock_version().unwrap_or(0);
    let lint_rule_counts = lint_rule_counts();

    // Hand-rolled nested objects for the per-tier table and the
    // crossover sweep (the bench stays dependency-free).
    let gemm_by_tier = tier_table
        .iter()
        .map(|(name, dense, _)| format!("\"{name}\": {dense:.2}"))
        .collect::<Vec<_>>()
        .join(", ");
    let sparse_by_tier = tier_table
        .iter()
        .map(|(name, _, sparse)| format!("\"{name}\": {sparse:.2}"))
        .collect::<Vec<_>>()
        .join(", ");
    let sweep_json = crossover_sweep
        .iter()
        .map(|(d, ratio)| format!("\"{d:.2}\": {ratio:.3}"))
        .collect::<Vec<_>>()
        .join(", ");

    let json = format!(
        "{{\n  \"benchmark\": \"trial_throughput\",\n  \"git_sha\": \"{git_sha}\",\n  \"lint_pass_version\": {lint_pass_version},\n  \"semantics_lock_version\": {semantics_lock_version},\n  \"lint_rule_counts\": {lint_rule_counts},\n  \"model\": \"{}\",\n  \"scheme\": \"{}\",\n  \"total_cells\": {cells},\n  \"expected_faults_per_trial\": {expected:.6},\n  \"before_trials_per_sec\": {before:.3},\n  \"after_trials_per_sec\": {after:.3},\n  \"speedup\": {speedup:.3},\n  \"trials_per_sec\": {trials_per_sec:.3},\n  \"prefix_skip_rate\": {prefix_skip_rate:.4},\n  \"simd_tier\": \"{simd_tier}\",\n  \"gemm_gflops\": {gemm_gflops:.2},\n  \"sparse_gemm_gflops\": {sparse_gemm_gflops:.2},\n  \"gemm_gflops_by_tier\": {{{gemm_by_tier}}},\n  \"sparse_gemm_gflops_by_tier\": {{{sparse_by_tier}}},\n  \"sparse_dense_cutover_density\": {:.2},\n  \"sparse_dense_crossover_density\": {crossover_density:.2},\n  \"sparse_dense_crossover_sweep\": {{{sweep_json}}},\n  \"vgg12_weights\": {},\n  \"vgg12_density\": {:.4},\n  \"vgg12_expected_faults_per_trial\": {:.3},\n  \"vgg12_dense_trials_per_sec\": {:.3},\n  \"vgg12_sparse_trials_per_sec\": {:.3},\n  \"vgg12_sparse_speedup\": {:.3},\n  \"dse_fixed_trials\": {},\n  \"dse_early_stop_trials\": {},\n  \"dse_trial_savings\": {:.3},\n  \"dse_same_optimal\": {},\n  \"dse_shard_speedup_2\": {:.3},\n  \"dse_shard_speedup_4\": {:.3},\n  \"dse_shard_same_optimal\": {},\n  \"encode_cache_hit_rate\": {:.3},\n  \"server_streams\": {},\n  \"server_p99_ms\": {:.3},\n  \"server_trials_per_sec\": {:.3}\n}}\n",
        spec.name,
        scheme.label(),
        gemm::SPARSE_DENSE_CUTOVER,
        vgg.weights,
        vgg.density,
        vgg.expected_faults,
        vgg.dense_trials_per_sec,
        vgg.sparse_trials_per_sec,
        vgg.speedup,
        es.fixed_trials,
        es.early_trials,
        es.savings,
        es.same_optimal,
        shard.speedup_2,
        shard.speedup_4,
        shard.same_optimal,
        shard.cache_hit_rate,
        srv.streams,
        srv.p99_ms,
        srv.trials_per_sec,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trial_throughput.json"
    );
    std::fs::write(path, &json).expect("write benchmark JSON");
    println!("wrote {path}");
}

/// Sustained arithmetic throughput of the blocked GEMM microkernel on a
/// square 256×256×256 multiply (~33 MFLOP per call) over a ~`secs`
/// window, on whichever dispatch tier is currently active.
fn gemm_gflops(secs: f64) -> f64 {
    const N: usize = 256;
    let a: Vec<f32> = (0..N * N).map(|i| (i % 17) as f32 * 0.25 - 2.0).collect();
    let b: Vec<f32> = (0..N * N).map(|i| (i % 13) as f32 * 0.5 - 3.0).collect();
    let mut c = vec![0.0f32; N * N];
    let mut scratch = GemmScratch::default();
    gemm_into(&mut c, &a, &b, N, N, N, &mut scratch); // warmup
    let start = Instant::now();
    let mut reps = 0u64;
    while start.elapsed().as_secs_f64() < secs {
        gemm_into(&mut c, &a, &b, N, N, N, &mut scratch);
        std::hint::black_box(&mut c);
        reps += 1;
    }
    2.0 * (N as f64).powi(3) * reps as f64 / start.elapsed().as_secs_f64() / 1e9
}

/// Dense-equivalent arithmetic throughput of the sparse GEMM on the same
/// 256×256×256 multiply with the left operand magnitude-pruned to
/// `sparsity`. FLOPs are counted as if the skipped zero terms were
/// performed (2N³ per call), so this number is directly comparable to
/// `gemm_gflops`: the ratio is the effective speedup the compute format
/// buys at that density. Above `SPARSE_DENSE_CUTOVER` the kernel routes
/// through the dense path (materializing into scratch), which this arm
/// measures as-is — that *is* the shipped behavior.
fn sparse_gemm_gflops(sparsity: f64, secs: f64) -> f64 {
    const N: usize = 256;
    // Continuous random magnitudes: the periodic pattern the dense arm
    // uses has only 17 distinct |values|, so magnitude pruning it to a
    // target sparsity collapses onto whole residue classes and the
    // realized density bears no relation to the request.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let mut a: Vec<f32> = (0..N * N)
        .map(|_| rand::Rng::gen::<f32>(&mut rng) * 2.0 - 1.0)
        .collect();
    zoo::prune_to_sparsity(&mut a, sparsity);
    let sa = SparseMatrix::from_dense(N, N, &a);
    let b: Vec<f32> = (0..N * N).map(|i| (i % 13) as f32 * 0.5 - 3.0).collect();
    let mut c = vec![0.0f32; N * N];
    let mut scratch = GemmScratch::default();
    sparse_gemm_into(&mut c, &sa, &b, N, &mut scratch); // warmup
    let start = Instant::now();
    let mut reps = 0u64;
    while start.elapsed().as_secs_f64() < secs {
        sparse_gemm_into(&mut c, &sa, &b, N, &mut scratch);
        std::hint::black_box(&mut c);
        reps += 1;
    }
    2.0 * (N as f64).powi(3) * reps as f64 / start.elapsed().as_secs_f64() / 1e9
}

/// Per-tier kernel throughput: `(tier name, dense GFLOP/s, sparse
/// dense-equivalent GFLOP/s at the VGG12 Table-2 sparsity)` for every
/// tier this host supports, measured by pinning the dispatch override.
/// All tiers produce identical bits (DESIGN.md §14); this records what
/// each one costs.
fn per_tier_gflops() -> Vec<(&'static str, f64, f64)> {
    let vgg_sparsity = zoo::vgg12().paper.sparsity;
    let out = gemm::supported_tiers()
        .into_iter()
        .map(|tier| {
            gemm::force_tier_for_tests(Some(tier));
            let dense = gemm_gflops(1.0);
            let sparse = sparse_gemm_gflops(vgg_sparsity, 1.0);
            (tier.name(), dense, sparse)
        })
        .collect();
    gemm::force_tier_for_tests(None);
    out
}

/// The sparse/dense crossover on the active tier: sweeps stored density
/// and reports each density's sparse-to-dense throughput ratio plus the
/// highest swept density at which the sparse walk still wins — the
/// empirical justification for the fixed `SPARSE_DENSE_CUTOVER` routing
/// constant (densities above it run the dense kernel on a materialized
/// copy, so their ratio reads ≈ 1).
fn density_crossover(dense_gflops: f64) -> (Vec<(f64, f64)>, f64) {
    let densities = [0.05, 0.1, 0.2, 0.3, 0.35, 0.45, 0.6];
    let sweep: Vec<(f64, f64)> = densities
        .iter()
        .map(|&d| (d, sparse_gemm_gflops(1.0 - d, 0.4) / dense_gflops))
        .collect();
    let crossover = sweep
        .iter()
        .filter(|&&(d, ratio)| d <= gemm::SPARSE_DENSE_CUTOVER && ratio >= 1.0)
        .map(|&(d, _)| d)
        .fold(0.0f64, f64::max);
    (sweep, crossover)
}

struct Vgg12ScaleArm {
    weights: u64,
    density: f64,
    expected_faults: f64,
    dense_trials_per_sec: f64,
    sparse_trials_per_sec: f64,
    speedup: f64,
}

/// VGG12-scale end-to-end trials at the Table-2 sparsity (0.409): a
/// ~2.2M-weight fully-connected stack, magnitude-pruned, clustered and
/// stored under the paper scheme. The dense arm is the fully
/// materializing reference path (per-cell fault injection, full decode
/// of every layer, full dense forward over the test batch — what
/// `run_reference` does and `run_chips` used to do); the sparse arm is
/// the engine's actual trial since this refactor (sparse-sampled fault
/// deltas against the shared clean decode, clean-prefix reuse, sparse
/// suffix forward). Both draw the identical fault stream per trial, and
/// the evaluator parity tests pin their results bit-for-bit equal — the
/// speedup is pure storage-format-as-compute-format.
fn vgg12_scale_arm() -> Vgg12ScaleArm {
    let paper = zoo::vgg12().paper;
    let mut net = Network::new(
        "vgg12-scale",
        vec![
            Layer::linear("fc1", 1024, 512),
            Layer::ReLU,
            Layer::linear("fc2", 1024, 1024),
            Layer::ReLU,
            Layer::linear("fc3", 512, 1024),
            Layer::ReLU,
            Layer::linear("fc4", 256, 512),
            Layer::ReLU,
            Layer::linear("fc5", 10, 256),
        ],
    );
    maxnvm_dnn::train::he_init(&mut net, 17);
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync();
    let stored: Vec<StoredLayer> = net
        .weight_matrices()
        .iter()
        .map(|m| {
            let mut pruned = m.clone();
            zoo::prune_to_sparsity(&mut pruned.data, paper.sparsity);
            StoredLayer::store(
                &ClusteredLayer::from_matrix(&pruned, paper.cluster_index_bits, 21),
                &scheme,
            )
        })
        .collect();
    let sa = SenseAmp::paper_default();
    let fault_for = fault_maps(CellTechnology::MlcCtt, &sa);
    let prepared: Vec<PreparedLayer> = stored.iter().map(PreparedLayer::prepare).collect();
    let expected_faults: f64 = prepared
        .iter()
        .map(|p| p.expected_faults(None, &fault_for))
        .sum();
    let clean: Vec<LayerMatrix> = prepared.iter().map(|p| p.clean().matrix.clone()).collect();
    let sparse: Vec<Arc<SparseMatrix>> = prepared
        .iter()
        .map(|p| Arc::new(p.clean().sparse.clone()))
        .collect();
    let weights: u64 = clean.iter().map(|m| (m.rows * m.cols) as u64).sum();
    let model = SparseModel {
        dense: &clean,
        sparse: &sparse,
    };
    let density = model.density();
    let eval = NetworkEval::new(
        net,
        maxnvm_dnn::data::gaussian_clusters(512, 10, 16, 2.5, 9),
    );

    let dense_trials_per_sec = throughput(|t| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(t);
        let mats: Vec<LayerMatrix> = stored
            .iter()
            .map(|l| l.decode_with_faults(&fault_for, &mut rng).0)
            .collect();
        std::hint::black_box(eval.eval(&mats));
    });
    let mut scratch = EvalScratch::default();
    let sparse_trials_per_sec = throughput(|t| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(t);
        let deltas: Vec<Vec<WeightDelta>> = prepared
            .iter()
            .map(|layer| layer.deltas_with_faults(&fault_for, &mut rng).0)
            .collect();
        std::hint::black_box(eval.eval_deltas_sparse(0, &model, &deltas, &mut scratch));
    });
    let speedup = sparse_trials_per_sec / dense_trials_per_sec;
    assert!(
        speedup >= 2.0,
        "sparse trials under 2x the materializing path: {speedup:.2}"
    );
    Vgg12ScaleArm {
        weights,
        density,
        expected_faults,
        dense_trials_per_sec,
        sparse_trials_per_sec,
        speedup,
    }
}

/// Short revision hash of the workspace, if `git` is available and the
/// bench runs inside a checkout (a tarball build reports "unknown").
fn git_sha() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let sha = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!sha.is_empty()).then_some(sha)
}

/// The `version = N` line of the workspace's `lint-allow.toml` — the
/// lint-pass version this build was checked against (DESIGN.md §11).
fn lint_pass_version() -> Option<u64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../lint-allow.toml");
    let text = std::fs::read_to_string(path).ok()?;
    text.lines().find_map(|line| {
        let rest = line.trim().strip_prefix("version")?.trim_start();
        rest.strip_prefix('=')?.trim().parse().ok()
    })
}

/// The `trial_semantics_version = N` line of the workspace's
/// `semantics.lock` — the S1 fingerprint-gate version the
/// semantics-critical modules were locked at (DESIGN.md §16).
fn semantics_lock_version() -> Option<u64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../semantics.lock");
    let text = std::fs::read_to_string(path).ok()?;
    text.lines().find_map(|line| {
        let rest = line
            .trim()
            .strip_prefix("trial_semantics_version")?
            .trim_start();
        rest.strip_prefix('=')?.trim().parse().ok()
    })
}

/// Per-rule violation/allow counts compacted out of the last
/// `cargo xtask lint --json` report at the workspace root, or `{}` when
/// no report has been generated in this checkout. The report writes the
/// `rule_counts` object one entry per line with the closing brace on its
/// own line, so a line-wise scan recovers it without a JSON parser.
fn lint_rule_counts() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../maxnvm-lint-report.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        return "{}".to_string();
    };
    let mut out = String::from("{");
    let mut in_counts = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"rule_counts\"") {
            in_counts = true;
            continue;
        }
        if in_counts {
            if t == "}," || t == "}" {
                break;
            }
            out.push_str(t);
        }
    }
    out.push('}');
    out
}

struct EarlyStoppingArm {
    fixed_trials: usize,
    early_trials: usize,
    savings: f64,
    same_optimal: bool,
}

/// The adaptive early-stopping arm: the same LeNet5-scale concrete DSE
/// sweep run twice — once with the fixed per-scheme trial budget, once
/// with the Wilson-interval stopping rule — comparing the trial spend
/// and checking both sweeps crown the same minimal-cell design.
fn early_stopping_arm() -> EarlyStoppingArm {
    let spec = zoo::lenet5();
    let m = spec.layers[2].sample_matrix(spec.paper.sparsity, 40, 64, 256);
    let layer = ClusteredLayer::from_matrix(&m, spec.paper.cluster_index_bits, 5);
    let eval = ProxyEval::new(vec![layer.reconstruct()], 0.1, 0.9);
    let cfg = DseConfig {
        campaign: Campaign {
            trials: 48,
            seed: 40,
            rate_scale: 120.0,
        },
        itn_bound: spec.paper.itn_bound,
    };
    let ctx = EvalContext::new(CellTechnology::MlcCtt, &SenseAmp::paper_default(), 120.0)
        .expect("context");
    let layers = [layer];

    let start = Instant::now();
    let fixed = ctx
        .run_dse_controlled(&layers, &eval, &cfg, &RunControl::default())
        .expect("fixed-budget sweep");
    let fixed_secs = start.elapsed().as_secs_f64();

    let control = RunControl {
        early_stop: Some(EarlyStop::new(eval.baseline_error(), cfg.itn_bound)),
        ..RunControl::default()
    };
    let start = Instant::now();
    let early = ctx
        .run_dse_controlled(&layers, &eval, &cfg, &control)
        .expect("early-stopping sweep");
    let early_secs = start.elapsed().as_secs_f64();

    let fixed_trials: usize = fixed.iter().map(|p| p.trials_run).sum();
    let early_trials: usize = early.iter().map(|p| p.trials_run).sum();
    let savings = 1.0 - early_trials as f64 / fixed_trials as f64;
    let best_fixed = minimal_cells(&fixed).expect("fixed sweep has a winner");
    let best_early = minimal_cells(&early).expect("early sweep has a winner");
    let same_optimal = best_fixed.scheme == best_early.scheme;
    assert!(
        same_optimal,
        "early stopping changed the optimal design: {} vs {}",
        best_fixed.scheme.label(),
        best_early.scheme.label()
    );

    println!(
        "early_stopping_dse: {} schemes, {} winner",
        fixed.len(),
        best_fixed.scheme.label()
    );
    println!("  fixed budget:   {fixed_trials:>6} trials in {fixed_secs:>6.2} s");
    println!("  early stopping: {early_trials:>6} trials in {early_secs:>6.2} s");
    println!("  trials saved: {:.0}%", savings * 100.0);

    EarlyStoppingArm {
        fixed_trials,
        early_trials,
        savings,
        same_optimal,
    }
}

const SHARD_CHILD_ENV: &str = "MAXNVM_BENCH_SHARD_CHILD";
const SHARD_DIR_ENV: &str = "MAXNVM_BENCH_SHARD_DIR";

/// The sweep the sharded arm measures, reconstructed identically by the
/// parent and every worker process: the early-stopping arm's LeNet5
/// layer, full MLC-CTT candidate space, fixed budget.
fn shard_fixture() -> (Vec<ClusteredLayer>, ProxyEval, DseConfig) {
    let spec = zoo::lenet5();
    let m = spec.layers[2].sample_matrix(spec.paper.sparsity, 40, 64, 256);
    let layer = ClusteredLayer::from_matrix(&m, spec.paper.cluster_index_bits, 5);
    let eval = ProxyEval::new(vec![layer.reconstruct()], 0.1, 0.9);
    let cfg = DseConfig {
        campaign: Campaign {
            trials: 24,
            seed: 40,
            rate_scale: 120.0,
        },
        itn_bound: spec.paper.itn_bound,
    };
    (vec![layer], eval, cfg)
}

fn shard_ckpt(dir: &std::path::Path, index: usize, count: usize) -> PathBuf {
    dir.join(format!("shard-{index}-of-{count}.ckpt"))
}

/// Worker half of the sharded arm: run shard `index` of `count` with a
/// checkpoint and the shared disk-backed encode cache, then exit.
fn run_shard_child(layout: &str) {
    let (index, count) = layout.split_once(':').expect("layout index:count");
    let index: usize = index.parse().expect("shard index");
    let count: usize = count.parse().expect("shard count");
    let dir = PathBuf::from(std::env::var(SHARD_DIR_ENV).expect("shard dir env"));
    let (layers, eval, cfg) = shard_fixture();
    let ctx = EvalContext::new(CellTechnology::MlcCtt, &SenseAmp::paper_default(), 120.0)
        .expect("context");
    let control = RunControl {
        shard: ShardSpec::of(index, count),
        checkpoint: Some(CheckpointConfig::new(shard_ckpt(&dir, index, count)).keep_on_success()),
        encode_cache: Some(Arc::new(
            EncodeCache::new().with_disk(EncodeDiskCache::new(dir.join("cache"))),
        )),
        ..RunControl::default()
    };
    ctx.run_dse_controlled(&layers, &eval, &cfg, &control)
        .expect("shard worker sweep");
}

/// One full N-process sharded sweep from a cold cache: spawn the worker
/// fleet (self-re-exec), wait, merge the shard checkpoints. Returns the
/// end-to-end wall time and the merged points.
fn sharded_sweep_secs(count: usize) -> (f64, Vec<DsePoint>) {
    let dir =
        std::env::temp_dir().join(format!("maxnvm-bench-shard-{count}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("shard workdir");
    let exe = std::env::current_exe().expect("bench binary path");
    let start = Instant::now();
    let children: Vec<_> = (0..count)
        .map(|i| {
            std::process::Command::new(&exe)
                .env(SHARD_CHILD_ENV, format!("{i}:{count}"))
                .env(SHARD_DIR_ENV, &dir)
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn shard worker")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("wait shard worker");
        assert!(status.success(), "shard worker failed: {status}");
    }
    let (layers, eval, cfg) = shard_fixture();
    let ctx = EvalContext::new(CellTechnology::MlcCtt, &SenseAmp::paper_default(), 120.0)
        .expect("context");
    let control = RunControl {
        merge_sources: (0..count).map(|i| shard_ckpt(&dir, i, count)).collect(),
        encode_cache: Some(Arc::new(
            EncodeCache::new().with_disk(EncodeDiskCache::new(dir.join("cache"))),
        )),
        ..RunControl::default()
    };
    let merged = ctx
        .run_dse_controlled(&layers, &eval, &cfg, &control)
        .expect("merge");
    let secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    (secs, merged)
}

struct ShardArm {
    speedup_2: f64,
    speedup_4: f64,
    same_optimal: bool,
    cache_hit_rate: f64,
}

/// The sharded-DSE arm: the identical sweep run as 1, 2, and 4 real
/// worker processes (cold shared cache each time, merge included in the
/// wall clock), asserting all three merges agree byte-for-byte on trial
/// results and on the optimal design. Speedups are recorded as
/// measured: on a box with fewer cores than workers they dip below the
/// process count (workers time-slice), which is the honest number.
/// The cache hit rate is the cold-then-warm single-process observation.
fn shard_arm() -> ShardArm {
    let (t1, p1) = sharded_sweep_secs(1);
    let (t2, p2) = sharded_sweep_secs(2);
    let (t4, p4) = sharded_sweep_secs(4);
    let strip = |points: &[DsePoint]| -> Vec<DsePoint> {
        points
            .iter()
            .cloned()
            .map(|mut p| {
                p.encode_cache = Default::default();
                p
            })
            .collect()
    };
    assert!(
        strip(&p1) == strip(&p2) && strip(&p1) == strip(&p4),
        "sharded merges must be byte-identical to the 1-process run"
    );
    let best = minimal_cells(&p1).expect("sweep has a winner");
    let same_optimal = [&p2, &p4]
        .iter()
        .all(|p| minimal_cells(p).expect("sweep has a winner").scheme == best.scheme);
    assert!(same_optimal, "sharding changed the optimal design");

    // Cold-then-warm against one disk cache: the warm run's hit rate is
    // what a worker joining an already-swept design space observes.
    let dir = std::env::temp_dir().join(format!("maxnvm-bench-cachewarm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (layers, eval, cfg) = shard_fixture();
    let ctx = EvalContext::new(CellTechnology::MlcCtt, &SenseAmp::paper_default(), 120.0)
        .expect("context");
    let mut warm_rate = 0.0;
    for round in 0..2 {
        let control = RunControl {
            encode_cache: Some(Arc::new(
                EncodeCache::new().with_disk(EncodeDiskCache::new(&dir)),
            )),
            ..RunControl::default()
        };
        let points = ctx
            .run_dse_controlled(&layers, &eval, &cfg, &control)
            .expect("cache-warm sweep");
        let stats = points.first().map(|p| p.encode_cache).unwrap_or_default();
        if round == 1 {
            warm_rate = stats.hit_rate();
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "sharded_dse: {} schemes x {} trials, winner {}",
        p1.len(),
        24,
        best.scheme.label()
    );
    println!("  1 process:  {t1:>6.2} s");
    println!("  2 processes: {t2:>6.2} s ({:.2}x)", t1 / t2);
    println!("  4 processes: {t4:>6.2} s ({:.2}x)", t1 / t4);
    println!("  warm encode-cache hit rate: {warm_rate:.3}");

    ShardArm {
        speedup_2: t1 / t2,
        speedup_4: t1 / t4,
        same_optimal,
        cache_hit_rate: warm_rate,
    }
}

struct ServerArm {
    streams: usize,
    p99_ms: f64,
    trials_per_sec: f64,
}

/// The supervisor under a burst load: 100 concurrent small campaign
/// streams submitted at once against the service's default concurrency,
/// each spooling per-trial checkpoints through the real filesystem
/// store. Reports the p99 submit-to-terminal stream latency and the
/// aggregate trial throughput the multiplexed service sustains — the
/// serving-path numbers the robustness layer must not regress.
fn server_arm() -> ServerArm {
    use maxnvm_server::{Supervisor, SupervisorConfig};

    const STREAMS: usize = 100;
    let spec = zoo::lenet5();
    let m = spec.layers[2].sample_matrix(spec.paper.sparsity, 40, 64, 256);
    let layer = ClusteredLayer::from_matrix(&m, spec.paper.cluster_index_bits, 5);
    let stored = vec![StoredLayer::store(
        &layer,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3),
    )];
    let eval: Arc<ProxyEval> = Arc::new(ProxyEval::new(vec![layer.reconstruct()], 0.1, 0.9));
    let spool = std::env::temp_dir().join(format!("maxnvm-bench-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let sup = Supervisor::start(
        SupervisorConfig::new(&spool)
            .max_running(workers)
            .max_inflight(STREAMS)
            .checkpoint_every(1)
            .watchdog(std::time::Duration::from_secs(120)),
    )
    .expect("bench supervisor");
    let trials_per_stream = 16usize;
    let start = Instant::now();
    let ids: Vec<_> = (0..STREAMS)
        .map(|i| {
            let job = maxnvm_server::CampaignJob {
                campaign: Campaign {
                    trials: trials_per_stream,
                    seed: 1000 + i as u64,
                    rate_scale: 120.0,
                },
                stored: stored.clone(),
                tech: CellTechnology::MlcCtt,
                sa: SenseAmp::paper_default(),
                eval: eval.clone(),
            };
            let submitted = Instant::now();
            let id = sup.submit(format!("bench-{i}"), job).expect("bench submit");
            (id, submitted)
        })
        .collect();
    let mut latencies_ms: Vec<f64> = ids
        .iter()
        .map(|(id, submitted)| {
            let status = sup.wait(id).expect("bench stream");
            assert!(
                status.state == maxnvm_server::StreamState::Done,
                "bench stream failed: {:?}",
                status.error
            );
            submitted.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let wall = start.elapsed().as_secs_f64();
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let p99_ms = latencies_ms[(STREAMS * 99).div_ceil(100).min(STREAMS) - 1];
    let trials_per_sec = (STREAMS * trials_per_stream) as f64 / wall;

    println!("server: {STREAMS} concurrent streams x {trials_per_stream} trials");
    println!("  p99 stream latency: {p99_ms:>8.1} ms");
    println!("  aggregate:          {trials_per_sec:>8.1} trials/s");

    ServerArm {
        streams: STREAMS,
        p99_ms,
        trials_per_sec,
    }
}
