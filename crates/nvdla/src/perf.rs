//! Per-layer roofline and whole-model system evaluation (§3.5, §5.2).
//!
//! Each layer runs at the slowest of three rates: MAC throughput,
//! weight-fetch bandwidth (DRAM or eNVM), and activation traffic through
//! the SRAM (spilling to DRAM when the working set does not fit). Energy
//! sums MAC switching (folded into datapath power × time), weight-fetch
//! energy per source, activation movement, and background power of every
//! powered interface.

use crate::config::{NvdlaConfig, DRAM_ENERGY_PJ_PER_BYTE, SRAM_ENERGY_PJ_PER_BYTE};
use crate::source::WeightSource;
use maxnvm_dnn::zoo::ModelSpec;
use maxnvm_encoding::estimate::{encoded_bits, LayerGeometry};
use maxnvm_encoding::EncodingKind;
use serde::{Deserialize, Serialize};

/// Cycle breakdown for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerPerf {
    /// Cycles the MAC array needs.
    pub compute_cycles: u64,
    /// Cycles to stream the (encoded) weights.
    pub weight_cycles: u64,
    /// Cycles to move activations in/out.
    pub activation_cycles: u64,
    /// The layer's execution time: the bottleneck of the three.
    pub cycles: u64,
}

impl LayerPerf {
    /// Whether the layer is weight-fetch bound.
    pub fn is_weight_bound(&self) -> bool {
        self.weight_cycles >= self.compute_cycles && self.weight_cycles >= self.activation_cycles
    }
}

/// System-level evaluation result (the quantities of Fig. 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Configuration name.
    pub config: String,
    /// Cycles per inference.
    pub cycles_per_inference: u64,
    /// Frames (inferences) per second at full tilt.
    pub fps: f64,
    /// Energy per inference (mJ).
    pub energy_per_inference_mj: f64,
    /// Average power while running back-to-back inferences (mW).
    pub avg_power_mw: f64,
    /// Weight-fetch energy share (mJ).
    pub weight_energy_mj: f64,
    /// Activation-movement energy share (mJ).
    pub activation_energy_mj: f64,
    /// Datapath energy share (mJ).
    pub datapath_energy_mj: f64,
    /// Background (DRAM interface + eNVM leakage) energy share (mJ).
    pub background_energy_mj: f64,
}

/// Computes one layer's cycle breakdown.
///
/// `weight_cycles` is the (source-dependent) time to stream the layer's
/// *encoded* weights — the accelerator reads the compressed format and
/// decodes on the fly (§3.2.2); `act_spill_bytes` is any activation
/// traffic that overflows SRAM to DRAM.
pub fn layer_perf(
    layer_macs: u64,
    weight_cycles: u64,
    in_elems: u64,
    out_elems: u64,
    act_spill_bytes: u64,
    cfg: &NvdlaConfig,
) -> LayerPerf {
    let compute_cycles = (layer_macs as f64 / cfg.effective_macs_per_cycle()).ceil() as u64;
    // 8-bit activations through SRAM; spills traverse DRAM at its
    // bandwidth (shared with weights, modeled as serialized worst case).
    let sram_traffic = in_elems + out_elems;
    let act_cycles_sram = (sram_traffic as f64 / cfg.bytes_per_cycle(cfg.sram_bw_gbps)).ceil();
    let act_cycles_dram = (act_spill_bytes as f64 / cfg.bytes_per_cycle(cfg.dram_bw_gbps)).ceil();
    let activation_cycles = (act_cycles_sram + act_cycles_dram) as u64;
    let cycles = compute_cycles.max(weight_cycles).max(activation_cycles);
    LayerPerf {
        compute_cycles,
        weight_cycles,
        activation_cycles,
        cycles,
    }
}

/// Activation bytes that do not fit on-chip and must round-trip DRAM for a
/// layer with the given activation footprint (8-bit activations).
pub fn activation_spill_bytes(in_elems: u64, out_elems: u64, sram_bytes: u64) -> u64 {
    (in_elems + out_elems).saturating_sub(sram_bytes)
}

/// Evaluates a model on a configuration with a weight source.
///
/// `weight_bytes` gives each layer's encoded weight footprint, in layer
/// order (use `maxnvm_encoding::estimate` to size an encoding).
///
/// # Panics
///
/// Panics if `weight_bytes.len() != model.layers.len()`.
pub fn evaluate(
    model: &ModelSpec,
    cfg: &NvdlaConfig,
    source: &WeightSource,
    weight_bytes: &[u64],
) -> SystemReport {
    assert_eq!(
        weight_bytes.len(),
        model.layers.len(),
        "one weight footprint per layer"
    );
    let sram_bytes = cfg.sram_kb as u64 * 1024;
    let mut total_cycles = 0u64;
    let mut weight_energy_pj = 0.0f64;
    let mut act_energy_pj = 0.0f64;
    for (idx, (layer, &wbytes)) in model.layers.iter().zip(weight_bytes).enumerate() {
        let spill = activation_spill_bytes(layer.in_elems, layer.out_elems, sram_bytes);
        // Off-chip weight traffic and activation spills share the single
        // DRAM interface (Fig. 7): serialize them on its bandwidth. The
        // on-chip eNVM stream is an independent port.
        let f = source.on_chip_fraction(idx);
        // Recurrent layers stream their weights once per timestep.
        let passes = layer.fetch_passes.max(1) as u64;
        let on_bytes = (wbytes as f64 * f).round() as u64 * passes;
        let off_bytes = (wbytes - (wbytes as f64 * f).round() as u64) * passes;
        let compute_cycles = (layer.macs as f64 / cfg.effective_macs_per_cycle()).ceil() as u64;
        let envm_cycles = if on_bytes > 0 {
            // weight_cycles() with a fully-on-chip request yields the eNVM
            // stream time for the on-chip share.
            source.weight_cycles(idx, wbytes, cfg).min(
                (on_bytes as f64
                    / cfg.bytes_per_cycle(match source {
                        WeightSource::Dram => cfg.dram_bw_gbps,
                        WeightSource::Envm(d) | WeightSource::Hybrid { envm: d, .. } => {
                            d.read_bandwidth_gbps
                        }
                    }))
                .ceil() as u64,
            )
        } else {
            0
        };
        let dram_cycles =
            ((off_bytes + spill) as f64 / cfg.bytes_per_cycle(cfg.dram_bw_gbps)).ceil() as u64;
        let sram_cycles = ((layer.in_elems + layer.out_elems) as f64
            / cfg.bytes_per_cycle(cfg.sram_bw_gbps))
        .ceil() as u64;
        let cycles = compute_cycles
            .max(envm_cycles)
            .max(dram_cycles)
            .max(sram_cycles);
        total_cycles += cycles;
        weight_energy_pj += source.fetch_energy_pj(idx, wbytes) * passes as f64;
        act_energy_pj += (layer.in_elems + layer.out_elems) as f64 * SRAM_ENERGY_PJ_PER_BYTE
            + spill as f64 * DRAM_ENERGY_PJ_PER_BYTE;
    }
    let time_s = total_cycles as f64 / (cfg.freq_ghz * 1e9);
    let fps = 1.0 / time_s;
    let datapath_energy_pj = cfg.datapath_power_mw * 1e9 * time_s; // mW·s = 1e9 pJ
    let background_mw = if source.needs_dram() {
        cfg.dram_power_mw
    } else {
        0.0
    } + source.store_leakage_mw();
    let background_energy_pj = background_mw * 1e9 * time_s;
    let total_pj = weight_energy_pj + act_energy_pj + datapath_energy_pj + background_energy_pj;
    SystemReport {
        config: cfg.name.clone(),
        cycles_per_inference: total_cycles,
        fps,
        energy_per_inference_mj: total_pj * 1e-9,
        avg_power_mw: total_pj * 1e-9 / time_s * 1e-3 * 1e3, // mJ / s = mW
        weight_energy_mj: weight_energy_pj * 1e-9,
        activation_energy_mj: act_energy_pj * 1e-9,
        datapath_energy_mj: datapath_energy_pj * 1e-9,
        background_energy_mj: background_energy_pj * 1e-9,
    }
}

/// What limits a layer's execution rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bottleneck {
    /// MAC-array throughput.
    Compute,
    /// On-chip eNVM weight streaming.
    EnvmWeights,
    /// The shared DRAM interface (off-chip weights + activation spills).
    Dram,
    /// SRAM activation traffic.
    Sram,
}

/// Per-layer diagnosis: where the cycles go (the evidence behind the §6
/// greedy placement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Execution cycles (the max of the four streams).
    pub cycles: u64,
    /// The limiting stream.
    pub bottleneck: Bottleneck,
    /// Cycle demand per stream: compute, eNVM, DRAM, SRAM.
    pub demands: [u64; 4],
}

/// Produces the per-layer bottleneck breakdown for a model on a
/// configuration and weight source.
///
/// # Panics
///
/// Panics if `weight_bytes.len() != model.layers.len()`.
pub fn per_layer_report(
    model: &ModelSpec,
    cfg: &NvdlaConfig,
    source: &WeightSource,
    weight_bytes: &[u64],
) -> Vec<LayerReport> {
    assert_eq!(
        weight_bytes.len(),
        model.layers.len(),
        "one entry per layer"
    );
    let sram_bytes = cfg.sram_kb as u64 * 1024;
    model
        .layers
        .iter()
        .zip(weight_bytes)
        .enumerate()
        .map(|(idx, (layer, &wbytes))| {
            let spill = activation_spill_bytes(layer.in_elems, layer.out_elems, sram_bytes);
            let f = source.on_chip_fraction(idx);
            let passes = layer.fetch_passes.max(1) as u64;
            let on_bytes = (wbytes as f64 * f).round() as u64 * passes;
            let off_bytes = (wbytes - (wbytes as f64 * f).round() as u64) * passes;
            let compute = (layer.macs as f64 / cfg.effective_macs_per_cycle()).ceil() as u64;
            let envm = if on_bytes > 0 {
                let bw = match source {
                    WeightSource::Dram => cfg.dram_bw_gbps,
                    WeightSource::Envm(d) | WeightSource::Hybrid { envm: d, .. } => {
                        d.read_bandwidth_gbps
                    }
                };
                (on_bytes as f64 / cfg.bytes_per_cycle(bw)).ceil() as u64
            } else {
                0
            };
            let dram =
                ((off_bytes + spill) as f64 / cfg.bytes_per_cycle(cfg.dram_bw_gbps)).ceil() as u64;
            let sram = ((layer.in_elems + layer.out_elems) as f64
                / cfg.bytes_per_cycle(cfg.sram_bw_gbps))
            .ceil() as u64;
            let demands = [compute, envm, dram, sram];
            // Four fixed demands; `max_by_key` keeps the *last* maximum,
            // so fold with `>=` to preserve the historical tie-break.
            let (winner, cycles) =
                demands
                    .iter()
                    .copied()
                    .enumerate()
                    .fold(
                        (0, compute),
                        |best, (i, c)| {
                            if c >= best.1 {
                                (i, c)
                            } else {
                                best
                            }
                        },
                    );
            let bottleneck = [
                Bottleneck::Compute,
                Bottleneck::EnvmWeights,
                Bottleneck::Dram,
                Bottleneck::Sram,
            ][winner];
            LayerReport {
                name: layer.name.clone(),
                cycles,
                bottleneck,
                demands,
            }
        })
        .collect()
}

/// Encoded weight footprints (bytes per layer) for a model under an
/// encoding, from the analytic size estimators.
pub fn encoded_weight_bytes(model: &ModelSpec, encoding: EncodingKind, idx_sync: bool) -> Vec<u64> {
    model
        .layers
        .iter()
        .map(|l| {
            let geom =
                LayerGeometry::from_sparsity(l.rows as u64, l.cols as u64, model.paper.sparsity);
            encoded_bits(geom, model.paper.cluster_index_bits, encoding, idx_sync)
                .total_bits()
                .div_ceil(8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_dnn::zoo;
    use maxnvm_envm::CellTechnology;
    use maxnvm_nvsim::{characterize, ArrayRequest, OptTarget};

    fn resnet_bytes() -> Vec<u64> {
        encoded_weight_bytes(&zoo::resnet50(), EncodingKind::BitMask, true)
    }

    fn ctt_source() -> WeightSource {
        WeightSource::Envm(
            characterize(
                &ArrayRequest::new(CellTechnology::MlcCtt, 50_000_000, 2),
                OptTarget::ReadEdp,
            )
            .expect("feasible organization"),
        )
    }

    #[test]
    fn resnet50_is_compute_bound_on_1024_macs() {
        // ~4.1 GMACs on ~1638 effective int8 MACs/cycle -> ~2.5M cycles
        // -> hundreds of FPS (paper Table 4: ~220 on its arrays).
        let model = zoo::resnet50();
        let report = evaluate(
            &model,
            &NvdlaConfig::nvdla_1024(),
            &WeightSource::Dram,
            &resnet_bytes(),
        );
        assert!(
            (150.0..600.0).contains(&report.fps),
            "baseline FPS {}",
            report.fps
        );
    }

    #[test]
    fn nvdla_64_is_an_order_slower() {
        let model = zoo::resnet50();
        let big = evaluate(
            &model,
            &NvdlaConfig::nvdla_1024(),
            &WeightSource::Dram,
            &resnet_bytes(),
        );
        let small = evaluate(
            &model,
            &NvdlaConfig::nvdla_64(),
            &WeightSource::Dram,
            &resnet_bytes(),
        );
        assert!(big.fps > 8.0 * small.fps, "{} vs {}", big.fps, small.fps);
    }

    #[test]
    fn ctt_envm_cuts_power_3x_on_nvdla64() {
        // §5.2: overall average system power reduction of 3.2x (NVDLA-64).
        let model = zoo::resnet50();
        let bytes = resnet_bytes();
        let cfg = NvdlaConfig::nvdla_64();
        let base = evaluate(&model, &cfg, &WeightSource::Dram, &bytes);
        let envm = evaluate(&model, &cfg, &ctt_source(), &bytes);
        let ratio = base.avg_power_mw / envm.avg_power_mw;
        assert!(
            (2.2..4.5).contains(&ratio),
            "power ratio {ratio} (paper 3.2x): base {} envm {}",
            base.avg_power_mw,
            envm.avg_power_mw
        );
    }

    #[test]
    fn ctt_envm_cuts_energy_per_inference() {
        // §1/§9: up to 3.5x lower energy per inference at max frame rate.
        let model = zoo::resnet50();
        let bytes = resnet_bytes();
        let cfg = NvdlaConfig::nvdla_64();
        let base = evaluate(&model, &cfg, &WeightSource::Dram, &bytes);
        let envm = evaluate(&model, &cfg, &ctt_source(), &bytes);
        let ratio = base.energy_per_inference_mj / envm.energy_per_inference_mj;
        assert!((2.2..4.5).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn envm_keeps_performance_competitive() {
        // §5.1: CTT maintains performance within ~10% of the baseline.
        let model = zoo::resnet50();
        let bytes = resnet_bytes();
        let cfg = NvdlaConfig::nvdla_1024();
        let base = evaluate(&model, &cfg, &WeightSource::Dram, &bytes);
        let envm = evaluate(&model, &cfg, &ctt_source(), &bytes);
        assert!(
            envm.fps > 0.7 * base.fps,
            "envm {} vs base {}",
            envm.fps,
            base.fps
        );
    }

    #[test]
    fn weight_bound_detection() {
        let cfg = NvdlaConfig::nvdla_64();
        // Tiny compute, huge weight stream: weight bound.
        let p = layer_perf(1_000, 10_000_000, 100, 100, 0, &cfg);
        assert!(p.is_weight_bound());
        // Huge compute, trivial weights: compute bound.
        let p = layer_perf(1_000_000_000, 10, 100, 100, 0, &cfg);
        assert!(!p.is_weight_bound());
        assert_eq!(p.cycles, p.compute_cycles);
    }

    #[test]
    fn spill_accounting() {
        assert_eq!(activation_spill_bytes(1000, 1000, 1500), 500);
        assert_eq!(activation_spill_bytes(100, 100, 1500), 0);
    }

    #[test]
    fn recurrent_workloads_benefit_more_from_envm() {
        // §5.2: "energy reduction due to memory fetches would be
        // increasingly beneficial in contexts that exhibit less re-use of
        // fetched parameters (e.g., recurrent neural networks)".
        let cfg = NvdlaConfig::nvdla_64();
        let eval_ratio = |model: &maxnvm_dnn::zoo::ModelSpec| {
            let bytes = encoded_weight_bytes(model, EncodingKind::BitMask, true);
            let cells: u64 = bytes.iter().map(|b| b * 8 / 2).sum();
            let envm = WeightSource::Envm(
                characterize(
                    &ArrayRequest::new(CellTechnology::MlcCtt, cells.max(1_000_000), 2),
                    OptTarget::ReadEdp,
                )
                .expect("feasible organization"),
            );
            let base = evaluate(model, &cfg, &WeightSource::Dram, &bytes);
            let ours = evaluate(model, &cfg, &envm, &bytes);
            base.weight_energy_mj / ours.weight_energy_mj.max(1e-12)
        };
        let cnn = eval_ratio(&zoo::resnet50());
        let rnn = eval_ratio(&zoo::keyword_lstm());
        // Per-inference *weight-fetch* energy saving is similar per byte,
        // but the RNN refetches 16x, so its absolute saving per inference
        // dominates its energy budget.
        let rnn_model = zoo::keyword_lstm();
        let bytes = encoded_weight_bytes(&rnn_model, EncodingKind::BitMask, true);
        let base_rnn = evaluate(&rnn_model, &cfg, &WeightSource::Dram, &bytes);
        let cnn_model = zoo::resnet50();
        let bytes_c = encoded_weight_bytes(&cnn_model, EncodingKind::BitMask, true);
        let base_cnn = evaluate(&cnn_model, &cfg, &WeightSource::Dram, &bytes_c);
        let rnn_share = base_rnn.weight_energy_mj / base_rnn.energy_per_inference_mj;
        let cnn_share = base_cnn.weight_energy_mj / base_cnn.energy_per_inference_mj;
        assert!(
            rnn_share > 2.0 * cnn_share,
            "weight-fetch share: RNN {rnn_share:.3} vs CNN {cnn_share:.3}"
        );
        let _ = (cnn, rnn);
    }

    #[test]
    fn fetch_passes_multiply_weight_traffic() {
        let mut model = zoo::resnet50();
        let bytes = encoded_weight_bytes(&model, EncodingKind::BitMask, false);
        let cfg = NvdlaConfig::nvdla_64();
        let once = evaluate(&model, &cfg, &WeightSource::Dram, &bytes);
        for l in &mut model.layers {
            l.fetch_passes = 4;
        }
        let four = evaluate(&model, &cfg, &WeightSource::Dram, &bytes);
        let ratio = four.weight_energy_mj / once.weight_energy_mj;
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn per_layer_report_finds_vgg16s_fc_bottleneck() {
        // The §6 motivation: VGG16's fat FC layers are DRAM-bound on the
        // baseline while early convs are compute/SRAM-bound.
        let model = zoo::vgg16();
        let bytes = encoded_weight_bytes(&model, EncodingKind::Csr, false);
        let reports = per_layer_report(
            &model,
            &NvdlaConfig::nvdla_1024(),
            &WeightSource::Dram,
            &bytes,
        );
        assert_eq!(reports.len(), model.layers.len());
        let fc6 = reports.iter().find(|r| r.name == "fc6").unwrap();
        assert_eq!(fc6.bottleneck, Bottleneck::Dram, "{fc6:?}");
        let conv3 = reports.iter().find(|r| r.name == "conv3").unwrap();
        assert_ne!(conv3.bottleneck, Bottleneck::Dram, "{conv3:?}");
        // Report cycles equal the evaluate() totals.
        let total: u64 = reports.iter().map(|r| r.cycles).sum();
        let sys = evaluate(
            &model,
            &NvdlaConfig::nvdla_1024(),
            &WeightSource::Dram,
            &bytes,
        );
        assert_eq!(total, sys.cycles_per_inference);
    }

    #[test]
    fn energy_shares_sum_to_total() {
        let model = zoo::vgg16();
        let bytes = encoded_weight_bytes(&model, EncodingKind::Csr, false);
        let r = evaluate(
            &model,
            &NvdlaConfig::nvdla_1024(),
            &WeightSource::Dram,
            &bytes,
        );
        let sum = r.weight_energy_mj
            + r.activation_energy_mj
            + r.datapath_energy_mj
            + r.background_energy_mj;
        assert!((sum / r.energy_per_inference_mj - 1.0).abs() < 1e-9);
    }
}
