//! The campaign supervisor: a long-running service multiplexing many
//! concurrent Monte-Carlo campaign streams over the faultsim engine.
//!
//! The paper's design-space exploration is a batch job; this crate
//! turns it into a *service*. A [`Supervisor`] owns a job table keyed
//! by stream id and an event-loop thread selecting over {submit,
//! cancel, evict, job completion, watchdog tick, shutdown}. Admission
//! is bounded end to end — a bounded event channel plus a hard cap on
//! in-flight streams — so overload surfaces as the typed
//! [`Rejected::QueueFull`] instead of unbounded queue growth.
//!
//! Robustness applies the paper's error-mitigation philosophy to the
//! harness itself:
//!
//! - every stream checkpoints to its own spool file through the
//!   [`maxnvm_faultsim::CheckpointStore`] abstraction, with bounded
//!   retry + exponential backoff on transient I/O
//!   ([`maxnvm_faultsim::RetryPolicy`]);
//! - disk-full ([`EngineError::CheckpointDiskFull`]) **evicts** the
//!   stream — its previous snapshot stays resumable — instead of
//!   retrying hopelessly;
//! - a corrupt/torn spool snapshot self-heals: the supervisor discards
//!   it and reruns the stream from scratch (same bytes by D1);
//! - a per-stream watchdog cancels-and-quarantines stalled jobs via
//!   the engine's [`maxnvm_faultsim::CancelToken`], degrading to a
//!   clean partial [`maxnvm_faultsim::CampaignResult`] instead of
//!   wedging a slot forever;
//! - SIGKILL at any instant loses nothing durable: on restart,
//!   resubmitting a stream resumes its spool checkpoint and produces a
//!   result byte-identical to an uninterrupted run (determinism
//!   contract D1 — locked by the kill-and-resume test).
//!
//! The state machine (DESIGN.md §15):
//! `submitted → running → {done, cancelled, quarantined, evicted,
//! failed}`.
//!
//! [`EngineError`]: maxnvm_faultsim::EngineError

mod config;
mod error;
mod job;
mod supervisor;

pub use config::{
    env_watchdog_secs, parse_watchdog_secs, SupervisorConfig, DEFAULT_WATCHDOG, WATCHDOG_ENV,
};
pub use error::Rejected;
pub use job::{CampaignJob, StreamId, StreamState, StreamStatus};
pub use supervisor::{spooled_streams, Supervisor};
