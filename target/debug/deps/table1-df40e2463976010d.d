/root/repo/target/debug/deps/table1-df40e2463976010d.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-df40e2463976010d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
