//! A module-level call graph lexed out of the code channel, for the R1
//! (panic reachability) and C1 (event-loop hygiene) rule families.
//!
//! This is deliberately *not* a type-checked call graph — the lint has
//! no `syn`, no name resolution, no types. It extracts `fn` spans and
//! call sites from [`crate::scan::FileScan`] code lines and resolves
//! calls **by name within one crate**:
//!
//! - a bare call `name(...)` resolves to every crate fn named `name`;
//! - a qualified call (`.name(...)` / `path::name(...)`) resolves only
//!   when the crate has exactly **one** fn of that name (otherwise the
//!   edge is dropped rather than guessed).
//!
//! Both choices approximate in the safe direction for their consumers:
//! R1 treats extra edges as extra scrutiny, and C1 matches its banned
//! constructs at the *site* as well, so a dropped edge can only relax
//! path *reporting*, never site detection inside the reachable set.
//! The argument list of a `spawn(...)` call is carved out as a
//! *detached* region — code that runs on another thread, which C1 must
//! not attribute to the event loop (R1 still follows it: a panic on a
//! runner thread is still a panic).

use std::collections::{BTreeMap, VecDeque};

use crate::scan::{is_ident_char, FileScan};

/// A dangerous (or rule-relevant) site inside a function body.
#[derive(Clone, Debug, PartialEq)]
pub enum SiteKind {
    /// `x[i + 1]`-style indexing: arithmetic inside the brackets. In
    /// release builds the arithmetic wraps instead of panicking, so an
    /// overflow can resolve to an in-bounds *wrong* element — a silent
    /// wrong result rather than a loud panic. Enforced by R1.
    IndexArith,
    /// Plain `x[i]` indexing — a loud bounds panic at worst. Advisory.
    IndexPlain,
    /// `sleep(...)` in any spelling. Banned in event loops by C1.
    Sleep,
    /// File-system tokens (`fs::`, `File`, `OpenOptions`). Banned in
    /// event loops by C1.
    BlockingIo,
    /// `recv()`-family call with the lexical receiver it was called
    /// on. C1 allows it only on the loop's own channel parameter.
    Recv { receiver: String, method: String },
    /// An argless `.join()` — a thread join. `Path::join` and
    /// `slice::join` take arguments, so they don't match. Banned in
    /// event loops by C1.
    Join,
    /// An unbounded `channel()` constructor. Banned crate-wide in the
    /// service crates by C1 in favour of `sync_channel`.
    UnboundedChannel,
}

#[derive(Clone, Debug)]
pub struct Site {
    pub kind: SiteKind,
    pub line: usize,
    /// Inside the argument list of a `spawn(...)` call: runs on a
    /// different thread than the enclosing fn.
    pub detached: bool,
}

/// A call site, resolved by name at the crate level.
#[derive(Clone, Debug)]
pub struct Call {
    pub name: String,
    /// `.name(` or `::name(` (resolved only if unique in the crate)
    /// vs. a bare `name(` (resolved to every fn of that name).
    pub qualified: bool,
    pub detached: bool,
}

/// One lexed `fn` definition.
#[derive(Clone, Debug)]
pub struct FnInfo {
    pub name: String,
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the closing brace.
    pub end_line: usize,
    /// `pub` without a `pub(restricted)` qualifier.
    pub is_pub: bool,
    /// Names of parameters whose type mentions `Receiver` — the
    /// channel(s) an event loop legitimately blocks on.
    pub receiver_params: Vec<String>,
    pub calls: Vec<Call>,
    pub sites: Vec<Site>,
}

/// Everything the walker extracted from one file.
pub struct FileAnalysis {
    pub fns: Vec<FnInfo>,
    /// Sites outside any fn body (consts, statics): kept for the
    /// crate-wide C1 channel ban and advisory totals.
    pub orphan_sites: Vec<Site>,
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Punct(char),
}

/// Tokenizes one code-channel line into `(byte offset, token)`.
fn line_tokens(line: &str) -> Vec<(usize, Tok)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() || !c.is_ascii() {
            i += 1;
            continue;
        }
        if is_ident_char(c) {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            out.push((start, Tok::Ident(line[start..i].to_string())));
            continue;
        }
        out.push((i, Tok::Punct(c)));
        i += 1;
    }
    out
}

/// Words that look like calls but are not (`if (x)`, `while (…)`) or
/// that construct variants rather than call crate fns. `drop` is here
/// because `Drop::drop` cannot be called directly in Rust — a `drop(`
/// call is always `std::mem::drop`, so resolving it to a crate's
/// `Drop` impl would be a guaranteed false edge.
const NON_CALL_WORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "as", "in", "use", "pub", "impl", "where", "unsafe", "dyn", "box",
    "await", "async", "Some", "None", "Ok", "Err", "Self", "self", "super", "crate", "drop",
];

/// A signature seen but its body `{` not yet reached.
struct Pending {
    name: String,
    line: usize,
    is_pub: bool,
    sig: Vec<Tok>,
}

fn push_site(
    kind: SiteKind,
    line: usize,
    detached: bool,
    fns: &mut [FnInfo],
    open: &[(usize, i32)],
    orphans: &mut Vec<Site>,
) {
    let site = Site {
        kind,
        line,
        detached,
    };
    match open.last() {
        Some((f, _)) => fns[*f].sites.push(site),
        None => orphans.push(site),
    }
}

/// Lexes the `fn` spans, call sites, and dangerous sites of one file.
///
/// Test-excluded lines still drive brace/paren depth (so spans close
/// correctly) but contribute no fns, calls, or sites.
pub fn analyze_file(rel: &str, fs: &FileScan) -> FileAnalysis {
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut orphans: Vec<Site> = Vec::new();

    let mut brace_depth: i32 = 0;
    let mut paren_depth: i32 = 0;
    let mut bracket_depth: i32 = 0;
    // Open fn bodies: (index into `fns`, brace depth at entry).
    let mut open: Vec<(usize, i32)> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Tokens since the last `;` / `{` / `}` — the item prefix, for
    // `pub` detection.
    let mut prefix: Vec<Tok> = Vec::new();
    // Paren depths at which `spawn(` argument lists opened.
    let mut detached_at: Vec<i32> = Vec::new();

    for (idx, line) in fs.code.iter().enumerate() {
        let lineno = idx + 1;
        let excluded = fs.excluded[idx];
        let toks = line_tokens(line);
        let mut t = 0usize;
        while t < toks.len() {
            let (pos, tok) = &toks[t];
            match tok {
                Tok::Punct('{') => {
                    if let Some(p) = pending.take() {
                        if paren_depth == 0 {
                            fns.push(FnInfo {
                                name: p.name,
                                file: rel.to_string(),
                                line: p.line,
                                end_line: p.line,
                                is_pub: p.is_pub,
                                receiver_params: receiver_params(&p.sig),
                                calls: Vec::new(),
                                sites: Vec::new(),
                            });
                            open.push((fns.len() - 1, brace_depth));
                        } else {
                            // `{` inside a signature default — keep
                            // waiting for the body brace.
                            pending = Some(p);
                        }
                    }
                    brace_depth += 1;
                    prefix.clear();
                }
                Tok::Punct('}') => {
                    brace_depth -= 1;
                    if open.last().is_some_and(|(_, d)| *d == brace_depth) {
                        let (f, _) = open.pop().expect("non-empty");
                        fns[f].end_line = lineno;
                    }
                    prefix.clear();
                }
                Tok::Punct(';') => {
                    // `;` inside parens (fn-pointer args) or brackets
                    // (`[u8; 4]` array types) is not an item end.
                    if paren_depth == 0 && bracket_depth == 0 {
                        // A bodyless fn: a trait method declaration.
                        pending = None;
                    }
                    prefix.clear();
                }
                Tok::Punct(c) => {
                    match c {
                        '(' => paren_depth += 1,
                        ')' => {
                            paren_depth -= 1;
                            if detached_at.last() == Some(&paren_depth) {
                                detached_at.pop();
                            }
                        }
                        '[' => {
                            bracket_depth += 1;
                            if !excluded && pending.is_none() {
                                if let Some(arith) = index_site_at(line, *pos) {
                                    push_site(
                                        if arith {
                                            SiteKind::IndexArith
                                        } else {
                                            SiteKind::IndexPlain
                                        },
                                        lineno,
                                        !detached_at.is_empty(),
                                        &mut fns,
                                        &open,
                                        &mut orphans,
                                    );
                                }
                            }
                        }
                        ']' => bracket_depth -= 1,
                        _ => {}
                    }
                    if let Some(p) = pending.as_mut() {
                        p.sig.push(Tok::Punct(*c));
                    }
                    prefix.push(Tok::Punct(*c));
                }
                Tok::Ident(word) => {
                    if word == "fn" && pending.is_none() && !excluded {
                        // A definition's next token is the name;
                        // fn-pointer types (`fn(`) have none.
                        if let Some((_, Tok::Ident(name))) = toks.get(t + 1) {
                            pending = Some(Pending {
                                name: name.clone(),
                                line: lineno,
                                is_pub: prefix_is_pub(&prefix),
                                sig: Vec::new(),
                            });
                            prefix.clear();
                            t += 2; // skip `fn` and the name
                            continue;
                        }
                    }
                    if let Some(p) = pending.as_mut() {
                        p.sig.push(Tok::Ident(word.clone()));
                    } else if !excluded {
                        record_ident(
                            word,
                            &toks,
                            t,
                            lineno,
                            &mut fns,
                            &open,
                            &mut orphans,
                            &mut detached_at,
                            paren_depth,
                        );
                    }
                    prefix.push(Tok::Ident(word.clone()));
                }
            }
            t += 1;
        }
    }
    // Close any span left open by unbalanced input.
    for (f, _) in open {
        fns[f].end_line = fs.code.len();
    }
    FileAnalysis {
        fns,
        orphan_sites: orphans,
    }
}

/// Was the item prefix `pub` without a `(restricted)` qualifier?
fn prefix_is_pub(prefix: &[Tok]) -> bool {
    for (i, tok) in prefix.iter().enumerate() {
        if matches!(tok, Tok::Ident(w) if w == "pub") {
            return prefix.get(i + 1) != Some(&Tok::Punct('('));
        }
    }
    false
}

/// Names of signature parameters whose type mentions `Receiver`.
fn receiver_params(sig: &[Tok]) -> Vec<String> {
    let Some(start) = sig.iter().position(|t| *t == Tok::Punct('(')) else {
        return Vec::new();
    };
    let mut depth = 0i32;
    let mut end = sig.len();
    for (i, t) in sig.iter().enumerate().skip(start) {
        match t {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let params = &sig[start + 1..end];
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut chunk_start = 0usize;
    let flush = |chunk: &[Tok], out: &mut Vec<String>| {
        if !chunk
            .iter()
            .any(|t| matches!(t, Tok::Ident(w) if w == "Receiver"))
        {
            return;
        }
        // The param name is the ident just before the first `:`.
        if let Some(c) = chunk.iter().position(|t| *t == Tok::Punct(':')) {
            if c > 0 {
                if let Tok::Ident(n) = &chunk[c - 1] {
                    out.push(n.clone());
                }
            }
        }
    };
    for (i, t) in params.iter().enumerate() {
        match t {
            Tok::Punct('(') | Tok::Punct('<') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            // `->` in an fn-trait bound is not a closing angle.
            Tok::Punct('>') if i == 0 || params[i - 1] != Tok::Punct('-') => depth -= 1,
            Tok::Punct(',') if depth == 0 => {
                flush(&params[chunk_start..i], &mut out);
                chunk_start = i + 1;
            }
            _ => {}
        }
    }
    flush(&params[chunk_start..], &mut out);
    out
}

/// Classifies one identifier as a call and/or dangerous site and
/// records it on the innermost open fn.
#[allow(clippy::too_many_arguments)]
fn record_ident(
    word: &str,
    toks: &[(usize, Tok)],
    t: usize,
    lineno: usize,
    fns: &mut [FnInfo],
    open: &[(usize, i32)],
    orphans: &mut Vec<Site>,
    detached_at: &mut Vec<i32>,
    paren_depth: i32,
) {
    let followed_by_paren = matches!(toks.get(t + 1), Some((_, Tok::Punct('('))));
    let prev = if t > 0 { Some(&toks[t - 1].1) } else { None };
    let detached = !detached_at.is_empty();

    // File-system tokens are site-worthy even without a call shape
    // (`fs::read_to_string`, `File::open`, `OpenOptions::new`).
    if word == "File" || word == "OpenOptions" {
        push_site(SiteKind::BlockingIo, lineno, detached, fns, open, orphans);
        return;
    }
    if word == "fs" && matches!(toks.get(t + 1), Some((_, Tok::Punct(':')))) {
        push_site(SiteKind::BlockingIo, lineno, detached, fns, open, orphans);
        return;
    }

    if !followed_by_paren || NON_CALL_WORDS.contains(&word) {
        return;
    }

    // `spawn(...)`: the argument list (the runner closure) runs on
    // another thread.
    if word == "spawn" {
        detached_at.push(paren_depth);
        return;
    }

    match word {
        "sleep" => push_site(SiteKind::Sleep, lineno, detached, fns, open, orphans),
        "channel" => push_site(
            SiteKind::UnboundedChannel,
            lineno,
            detached,
            fns,
            open,
            orphans,
        ),
        "recv" | "recv_timeout" | "recv_deadline" => {
            let receiver = match (prev, t.checked_sub(2).map(|i| &toks[i].1)) {
                (Some(Tok::Punct('.')), Some(Tok::Ident(r))) => r.clone(),
                _ => String::new(),
            };
            push_site(
                SiteKind::Recv {
                    receiver,
                    method: word.to_string(),
                },
                lineno,
                detached,
                fns,
                open,
                orphans,
            );
        }
        "join"
            if matches!(prev, Some(Tok::Punct('.')))
                && matches!(toks.get(t + 2), Some((_, Tok::Punct(')')))) =>
        {
            push_site(SiteKind::Join, lineno, detached, fns, open, orphans);
        }
        _ => {}
    }

    // Every call shape also becomes a graph edge candidate.
    let qualified = matches!(prev, Some(Tok::Punct('.')) | Some(Tok::Punct(':')));
    if let Some((f, _)) = open.last() {
        fns[*f].calls.push(Call {
            name: word.to_string(),
            qualified,
            detached,
        });
    }
}

/// Is the `[` at byte `pos` an index expression (`expr[` — preceded by
/// an ident char, `)`, or `]`)? Returns whether the bracket contents
/// contain *binary* arithmetic (`+`, `-`, `*` preceded by an operand),
/// so derefs `[*i]` and ranges `[..n]` stay plain. Contents are
/// scanned within the line only.
fn index_site_at(line: &str, pos: usize) -> Option<bool> {
    let bytes = line.as_bytes();
    if pos == 0 {
        return None;
    }
    let prev = bytes[pos - 1] as char;
    if !(is_ident_char(prev) || prev == ')' || prev == ']') {
        return None;
    }
    let mut depth = 1i32;
    let mut j = pos + 1;
    let mut arith = false;
    let mut prev_sig: Option<char> = None;
    while j < bytes.len() && depth > 0 {
        let c = bytes[j] as char;
        match c {
            '[' => depth += 1,
            ']' => depth -= 1,
            '+' | '-' | '*'
                if prev_sig.is_some_and(|p| is_ident_char(p) || p == ')' || p == ']') =>
            {
                arith = true;
            }
            _ => {}
        }
        if !c.is_whitespace() {
            prev_sig = Some(c);
        }
        j += 1;
    }
    Some(arith)
}

/// The per-crate graph: every fn of every file, with name-resolved
/// edges.
pub struct CrateGraph {
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CrateGraph {
    pub fn build(fns: Vec<FnInfo>) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Self { fns, by_name }
    }

    /// Resolved callees of `f`. Bare calls fan out to every fn of that
    /// name; qualified calls resolve only when unique in the crate.
    fn callees(&self, f: usize, follow_detached: bool) -> Vec<usize> {
        let mut out = Vec::new();
        for call in &self.fns[f].calls {
            if call.detached && !follow_detached {
                continue;
            }
            let Some(targets) = self.by_name.get(&call.name) else {
                continue;
            };
            if call.qualified && targets.len() != 1 {
                continue;
            }
            out.extend_from_slice(targets);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// BFS from `roots`; returns, per fn, the predecessor on a
    /// shortest path from some root (a root maps to itself). `None` =
    /// unreachable.
    pub fn reach(&self, roots: &[usize], follow_detached: bool) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for callee in self.callees(f, follow_detached) {
                if parent[callee].is_none() {
                    parent[callee] = Some(f);
                    queue.push_back(callee);
                }
            }
        }
        parent
    }

    /// All `pub fn` indices.
    pub fn pub_roots(&self) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| self.fns[i].is_pub)
            .collect()
    }

    /// Renders the shortest call path to `target` as `root -> ... ->
    /// target`.
    pub fn path_to(&self, parent: &[Option<usize>], target: usize) -> String {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&i| self.fns[i].name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn analyze(src: &str) -> FileAnalysis {
        analyze_file("crates/x/src/lib.rs", &scan(src))
    }

    #[test]
    fn fn_spans_and_publicness_are_extracted() {
        let src = "pub fn api() { helper() }\n\nfn helper() {\n    work();\n}\n\npub(crate) fn internal() {}\n";
        let a = analyze(src);
        let names: Vec<(&str, bool)> = a.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            names,
            vec![("api", true), ("helper", false), ("internal", false)]
        );
        assert_eq!(a.fns[1].line, 3);
        assert_eq!(a.fns[1].end_line, 5);
    }

    #[test]
    fn calls_resolve_and_reachability_paths_render() {
        let src =
            "pub fn api() { mid() }\nfn mid() { leaf() }\nfn leaf() { other() }\nfn island() {}\n";
        let a = analyze(src);
        let g = CrateGraph::build(a.fns);
        let parent = g.reach(&g.pub_roots(), true);
        let leaf = g.fns.iter().position(|f| f.name == "leaf").unwrap();
        let island = g.fns.iter().position(|f| f.name == "island").unwrap();
        assert!(parent[leaf].is_some());
        assert!(parent[island].is_none());
        assert_eq!(g.path_to(&parent, leaf), "api -> mid -> leaf");
    }

    #[test]
    fn qualified_calls_resolve_only_when_unique() {
        let src = "pub fn api(x: T) { x.go() }\nfn go() { dangerous() }\nfn dangerous() {}\n";
        let a = analyze(src);
        let g = CrateGraph::build(a.fns);
        let parent = g.reach(&g.pub_roots(), true);
        let d = g.fns.iter().position(|f| f.name == "dangerous").unwrap();
        assert!(parent[d].is_some(), "unique method name resolves");

        // Two candidates: the edge is dropped, not guessed.
        let src = "pub fn api(x: T) { x.go() }\nimpl A { fn go(&self) { dangerous() } }\nimpl B { fn go(&self) {} }\nfn dangerous() {}\n";
        let a = analyze(src);
        let g = CrateGraph::build(a.fns);
        let parent = g.reach(&g.pub_roots(), true);
        let d = g.fns.iter().position(|f| f.name == "dangerous").unwrap();
        assert!(
            parent[d].is_none(),
            "ambiguous method name does not resolve"
        );
    }

    #[test]
    fn index_sites_classify_arithmetic() {
        let a = analyze("fn f(x: &[f32], i: usize) -> f32 { x[i] + x[i + 1] + x[2 * i] }\n");
        let kinds: Vec<&SiteKind> = a.fns[0].sites.iter().map(|s| &s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &SiteKind::IndexPlain,
                &SiteKind::IndexArith,
                &SiteKind::IndexArith
            ]
        );
    }

    #[test]
    fn deref_and_range_indexing_stay_plain() {
        let a = analyze(
            "fn f(x: &[f32], i: &usize, n: usize) -> f32 { x[*i] + x[..n].len() as f32 }\n",
        );
        assert!(a.fns[0]
            .sites
            .iter()
            .all(|s| s.kind == SiteKind::IndexPlain));
        assert_eq!(a.fns[0].sites.len(), 2);
    }

    #[test]
    fn attribute_type_and_macro_brackets_are_not_sites() {
        let a = analyze(
            "#[inline]\nfn f(x: &[f32]) -> [f32; 4] { let v = vec![0.0; 4]; [v[0], v[1], v[2], v[3]] }\n",
        );
        assert_eq!(a.fns[0].sites.len(), 4);
        assert!(a.fns[0]
            .sites
            .iter()
            .all(|s| s.kind == SiteKind::IndexPlain));
    }

    #[test]
    fn spawn_closures_are_detached() {
        let src = "fn event_loop() {\n    tick();\n    thread::Builder::new().spawn(move || {\n        blocking_work();\n        store.read(path);\n    });\n    after();\n}\nfn tick() {}\nfn after() {}\nfn blocking_work() { let _ = fs::read(\"x\"); }\n";
        let a = analyze(src);
        let el = &a.fns[0];
        let calls: Vec<(&str, bool)> = el
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.detached))
            .collect();
        assert!(calls.contains(&("tick", false)));
        assert!(calls.contains(&("blocking_work", true)));
        assert!(calls.contains(&("after", false)));
        // C1 (follow_detached = false) cannot reach the closure body.
        let g = CrateGraph::build(a.fns);
        let roots = vec![0usize];
        let parent = g.reach(&roots, false);
        let bw = g
            .fns
            .iter()
            .position(|f| f.name == "blocking_work")
            .unwrap();
        assert!(parent[bw].is_none());
        // R1 (follow_detached = true) still follows it.
        let parent = g.reach(&roots, true);
        assert!(parent[bw].is_some());
    }

    #[test]
    fn c1_sites_are_detected() {
        let src = "fn event_loop(rx: Receiver<Event>) {\n    let e = rx.recv_timeout(tick);\n    other.recv();\n    thread::sleep(d);\n    let f = File::open(p);\n    handle.join();\n    path.join(\"x\");\n    let (a, b) = channel();\n    let (c, d) = sync_channel(4);\n}\n";
        let a = analyze(src);
        let f = &a.fns[0];
        assert_eq!(f.receiver_params, vec!["rx".to_string()]);
        let kinds: Vec<&SiteKind> = f.sites.iter().map(|s| &s.kind).collect();
        assert!(kinds.contains(&&SiteKind::Sleep));
        assert!(kinds.contains(&&SiteKind::BlockingIo));
        assert!(kinds.contains(&&SiteKind::Join));
        assert!(kinds.contains(&&SiteKind::UnboundedChannel));
        let recvs: Vec<&SiteKind> = f
            .sites
            .iter()
            .filter(|s| matches!(s.kind, SiteKind::Recv { .. }))
            .map(|s| &s.kind)
            .collect();
        assert_eq!(recvs.len(), 2);
        assert_eq!(
            recvs[0],
            &SiteKind::Recv {
                receiver: "rx".to_string(),
                method: "recv_timeout".to_string()
            }
        );
        // `path.join("x")` has an argument: not a thread join.
        assert_eq!(
            f.sites.iter().filter(|s| s.kind == SiteKind::Join).count(),
            1
        );
        // `sync_channel` does not word-match `channel`.
        assert_eq!(
            f.sites
                .iter()
                .filter(|s| s.kind == SiteKind::UnboundedChannel)
                .count(),
            1
        );
    }

    #[test]
    fn test_modules_contribute_nothing() {
        let src = "fn lib(x: &[u32], i: usize) -> u32 { x[i + 1] }\n#[cfg(test)]\nmod tests {\n    fn t() { y[j + 2]; helper(); }\n}\n";
        let a = analyze(src);
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].sites.len(), 1);
        assert!(a.orphan_sites.is_empty());
    }

    #[test]
    fn receiver_params_handle_paths_and_multiple_params() {
        let sigs =
            analyze("fn f(cfg: &Config, rx: mpsc::Receiver<Event>, done_rx: Receiver<u32>) {}\n");
        assert_eq!(
            sigs.fns[0].receiver_params,
            vec!["rx".to_string(), "done_rx".to_string()]
        );
    }
}
