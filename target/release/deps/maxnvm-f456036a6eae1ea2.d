/root/repo/target/release/deps/maxnvm-f456036a6eae1ea2.d: crates/core/src/bin/maxnvm.rs

/root/repo/target/release/deps/maxnvm-f456036a6eae1ea2: crates/core/src/bin/maxnvm.rs

crates/core/src/bin/maxnvm.rs:
