//! Workspace facade for the MaxNVM reproduction: re-exports every
//! subsystem crate so the examples and integration tests have one import
//! surface. See the `maxnvm` crate for the pipeline API and `DESIGN.md`
//! for the system inventory.

pub use maxnvm;
pub use maxnvm_bits;
pub use maxnvm_dnn;
pub use maxnvm_ecc;
pub use maxnvm_encoding;
pub use maxnvm_envm;
pub use maxnvm_faultsim;
pub use maxnvm_nvdla;
pub use maxnvm_nvsim;
