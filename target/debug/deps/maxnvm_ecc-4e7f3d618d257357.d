/root/repo/target/debug/deps/maxnvm_ecc-4e7f3d618d257357.d: crates/ecc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_ecc-4e7f3d618d257357.rmeta: crates/ecc/src/lib.rs Cargo.toml

crates/ecc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
