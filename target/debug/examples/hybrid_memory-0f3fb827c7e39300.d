/root/repo/target/debug/examples/hybrid_memory-0f3fb827c7e39300.d: examples/hybrid_memory.rs

/root/repo/target/debug/examples/hybrid_memory-0f3fb827c7e39300: examples/hybrid_memory.rs

examples/hybrid_memory.rs:
