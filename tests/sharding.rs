//! Deterministic sharded sweeps, end to end: disjoint shard
//! partitioning, per-shard checkpoints, and the merge operation —
//! which must reproduce the unsharded single-process run byte for byte
//! (same trial outcomes, same early-stopping decisions, same
//! `failed_trials` replay seeds), including after a shard worker is
//! SIGKILLed mid-run and resumed.

use maxnvm_dnn::network::LayerMatrix;
use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::evaluate::EvalScratch;
use maxnvm_faultsim::{
    AccuracyEval, Campaign, CheckpointConfig, DseConfig, EarlyStop, EngineError, EvalContext,
    ProxyEval, RunControl, ShardSpec,
};
use std::path::{Path, PathBuf};
use std::time::Duration;

const TECH: CellTechnology = CellTechnology::MlcCtt;
const RATE_SCALE: f64 = 120.0;

/// The deterministic stand-in campaign shared with the resilience
/// suite: one sparse VGG12-scale layer, proxy evaluation, exaggerated
/// rates. Identical in every process — the multi-process tests rely on
/// each process reconstructing the same fixture.
fn fixture() -> (StoredLayer, ProxyEval) {
    let spec = zoo::vgg12();
    let m = spec.layers[4].sample_matrix(spec.paper.sparsity, 17, 48, 160);
    let c = ClusteredLayer::from_matrix(&m, 4, 5);
    let stored = StoredLayer::store(
        &c,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3),
    );
    let eval = ProxyEval::new(vec![c.reconstruct()], 0.1, 0.9);
    (stored, eval)
}

fn campaign() -> Campaign {
    Campaign {
        trials: 24,
        seed: 7,
        rate_scale: RATE_SCALE,
    }
}

fn sa() -> SenseAmp {
    SenseAmp::paper_default()
}

/// A unique directory per test; avoids collisions when the suite runs
/// multi-threaded.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("maxnvm-sharding-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs every shard of an N-way layout sequentially in this process
/// (shard workers are plain `run_controlled` calls — process isolation
/// is exercised separately below) and returns the checkpoint paths.
fn run_shards(
    c: &Campaign,
    stored: &StoredLayer,
    eval: &ProxyEval,
    count: usize,
    dir: &Path,
    base: &RunControl,
) -> Vec<PathBuf> {
    (0..count)
        .map(|index| {
            let ckpt = dir.join(format!("shard-{index}-of-{count}.ckpt"));
            let control = RunControl {
                shard: ShardSpec::of(index, count),
                checkpoint: Some(CheckpointConfig::new(&ckpt).every(1).keep_on_success()),
                ..base.clone()
            };
            c.run_controlled(std::slice::from_ref(stored), TECH, &sa(), eval, &control)
                .expect("shard run");
            ckpt
        })
        .collect()
}

#[test]
fn invalid_shard_layouts_are_rejected_with_a_typed_error() {
    let (stored, eval) = fixture();
    for (index, count) in [(0, 0), (2, 2), (5, 3)] {
        let control = RunControl {
            shard: ShardSpec::of(index, count),
            ..RunControl::default()
        };
        let err = campaign()
            .run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &eval, &control)
            .expect_err("degenerate layout must be rejected");
        assert_eq!(err, EngineError::InvalidShardConfig { index, count });
    }
}

#[test]
fn merge_of_n_shards_is_byte_identical_fixed_budget() {
    let (stored, eval) = fixture();
    let c = campaign();
    let baseline = c
        .run(std::slice::from_ref(&stored), TECH, &sa(), &eval)
        .expect("unsharded run");
    for count in [2usize, 3, 8] {
        let dir = temp_dir(&format!("fixed-{count}"));
        let sources = run_shards(&c, &stored, &eval, count, &dir, &RunControl::default());
        let merged = c
            .merge(
                &sources,
                std::slice::from_ref(&stored),
                TECH,
                &sa(),
                &eval,
                &RunControl::default(),
            )
            .expect("merge");
        assert_eq!(merged, baseline, "{count}-shard merge must be identical");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn merge_replays_early_stopping_decisions() {
    let (stored, eval) = fixture();
    let c = Campaign {
        trials: 40,
        ..campaign()
    };
    // A loose bound the scheme decisively passes: the Wilson interval
    // decides well before the full 40-trial budget.
    let base = RunControl {
        early_stop: Some(EarlyStop::new(eval.baseline_error(), 0.5)),
        ..RunControl::default()
    };
    let baseline = c
        .run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &eval, &base)
        .expect("unsharded run");
    assert!(
        baseline.stopped_early && baseline.completed_trials < c.trials,
        "fixture must actually stop early (ran {} of {})",
        baseline.completed_trials,
        c.trials
    );
    for count in [2usize, 3] {
        let dir = temp_dir(&format!("earlystop-{count}"));
        // Shard workers see the same early-stop rule (it is part of the
        // configuration fingerprint) but never stop early themselves —
        // a shard holds only a subset of each group's trials.
        let sources = run_shards(&c, &stored, &eval, count, &dir, &base);
        let merged = c
            .merge(
                &sources,
                std::slice::from_ref(&stored),
                TECH,
                &sa(),
                &eval,
                &base,
            )
            .expect("merge");
        assert_eq!(
            merged, baseline,
            "{count}-shard merge must replay the early-stopping decision"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn merge_preserves_failed_trials_and_replay_seeds() {
    let (stored, eval) = fixture();
    let c = campaign();
    let base = RunControl {
        panic_trials: vec![2, 9],
        ..RunControl::default()
    };
    let baseline = c
        .run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &eval, &base)
        .expect("unsharded run");
    assert_eq!(baseline.failed_trials.len(), 2, "both hooks must fire");
    let dir = temp_dir("failed");
    let sources = run_shards(&c, &stored, &eval, 3, &dir, &base);
    let merged = c
        .merge(
            &sources,
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &base,
        )
        .expect("merge");
    assert_eq!(merged, baseline);
    assert_eq!(
        merged
            .failed_trials
            .iter()
            .map(|f| (f.trial, f.seed))
            .collect::<Vec<_>>(),
        baseline
            .failed_trials
            .iter()
            .map(|f| (f.trial, f.seed))
            .collect::<Vec<_>>(),
        "replay seeds survive the round trip through shard checkpoints"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dse_merge_matches_the_unsharded_sweep() {
    // SLC RRAM has a compact 7-scheme candidate space — a full DSE
    // merge test at integration-suite cost.
    let spec = zoo::vgg12();
    let m = spec.layers[4].sample_matrix(spec.paper.sparsity, 17, 48, 160);
    let layer = ClusteredLayer::from_matrix(&m, 4, 5);
    let eval = ProxyEval::new(vec![layer.reconstruct()], 0.1, 0.9);
    let cfg = DseConfig {
        campaign: Campaign {
            trials: 8,
            seed: 13,
            rate_scale: RATE_SCALE,
        },
        itn_bound: 0.02,
    };
    let ctx = EvalContext::new(CellTechnology::SlcRram, &sa(), RATE_SCALE).expect("context");
    let layers = vec![layer];
    let baseline = ctx
        .run_dse_controlled(&layers, &eval, &cfg, &RunControl::default())
        .expect("unsharded sweep");
    let dir = temp_dir("dse");
    let count = 2usize;
    let sources: Vec<PathBuf> = (0..count)
        .map(|index| {
            let ckpt = dir.join(format!("shard-{index}-of-{count}.ckpt"));
            let control = RunControl {
                shard: ShardSpec::of(index, count),
                checkpoint: Some(CheckpointConfig::new(&ckpt).every(1).keep_on_success()),
                ..RunControl::default()
            };
            ctx.run_dse_controlled(&layers, &eval, &cfg, &control)
                .expect("shard sweep");
            ckpt
        })
        .collect();
    let merged = ctx
        .run_dse_controlled(
            &layers,
            &eval,
            &cfg,
            &RunControl {
                merge_sources: sources,
                ..RunControl::default()
            },
        )
        .expect("merge");
    assert_eq!(merged, baseline, "DSE merge must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_shard_layouts_refuse_to_resume() {
    let (stored, eval) = fixture();
    let c = campaign();
    let dir = temp_dir("mismatch");
    let ckpt = dir.join("shard-0-of-2.ckpt");
    let control = RunControl {
        shard: ShardSpec::of(0, 2),
        checkpoint: Some(CheckpointConfig::new(&ckpt).every(1).keep_on_success()),
        ..RunControl::default()
    };
    c.run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &eval, &control)
        .expect("shard 0 run");
    // Resuming the same snapshot under a different layout — or
    // unsharded — must fail typed, not silently run the wrong slice.
    for wrong in [ShardSpec::of(1, 2), ShardSpec::unsharded()] {
        let control = RunControl {
            shard: wrong,
            checkpoint: Some(CheckpointConfig::new(&ckpt).keep_on_success()),
            ..RunControl::default()
        };
        let err = c
            .run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &eval, &control)
            .expect_err("layout mismatch must be rejected");
        assert!(
            matches!(err, EngineError::CheckpointMismatch { .. }),
            "got {err:?}"
        );
    }
    // Merging it under the snapshot's own recorded layout is fine.
    let half = c
        .merge(
            &[ckpt],
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::default(),
        )
        .expect("merge of one shard completes the rest");
    let baseline = c
        .run(std::slice::from_ref(&stored), TECH, &sa(), &eval)
        .expect("unsharded run");
    assert_eq!(half, baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Multi-process: a real shard worker SIGKILLed mid-run, resumed, and
// merged — the sharded pipeline's answer to the resilience suite's
// kill-and-resume test.
// ---------------------------------------------------------------------

const CHILD_ENV: &str = "MAXNVM_SHARDING_CHILD_CHECKPOINT";

/// Slows every evaluation so the parent can SIGKILL the worker
/// mid-campaign; values are unchanged.
struct SlowEval<'a> {
    inner: &'a ProxyEval,
    delay: Duration,
}

impl AccuracyEval for SlowEval<'_> {
    fn baseline_error(&self) -> f64 {
        self.inner.baseline_error()
    }

    fn eval(&self, mats: &[LayerMatrix]) -> f64 {
        std::thread::sleep(self.delay);
        self.inner.eval(mats)
    }

    fn eval_scratch(&self, mats: &[LayerMatrix], scratch: &mut EvalScratch) -> f64 {
        std::thread::sleep(self.delay);
        self.inner.eval_scratch(mats, scratch)
    }
}

/// Child half: runs shard 0 of 2 slowly enough to be killed mid-run.
/// Ignored unless re-executed by the parent test with the checkpoint
/// path in the environment.
#[test]
#[ignore = "child process entry point for the sharded kill-and-resume test"]
fn child_shard_worker() {
    let Ok(ckpt) = std::env::var(CHILD_ENV) else {
        return;
    };
    let (stored, eval) = fixture();
    let slow = SlowEval {
        inner: &eval,
        delay: Duration::from_millis(25),
    };
    let control = RunControl {
        shard: ShardSpec::of(0, 2),
        checkpoint: Some(CheckpointConfig::new(&ckpt).every(1).keep_on_success()),
        ..RunControl::default()
    };
    campaign()
        .run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &slow, &control)
        .expect("child shard run");
}

#[test]
fn sigkilled_shard_worker_resumes_and_merge_stays_byte_identical() {
    let (stored, eval) = fixture();
    let c = campaign();
    let baseline = c
        .run(std::slice::from_ref(&stored), TECH, &sa(), &eval)
        .expect("unsharded run");
    let dir = temp_dir("sigkill");
    let ckpt0 = dir.join("shard-0-of-2.ckpt");
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["child_shard_worker", "--exact", "--ignored", "--nocapture"])
        .env(CHILD_ENV, &ckpt0)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn shard worker");
    // Wait until the worker has durably completed at least one trial,
    // then kill it without warning (SIGKILL on unix).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !ckpt0.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "worker never wrote a checkpoint"
        );
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("worker exited before writing a checkpoint: {status}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("kill worker");
    let _ = child.wait();
    // Resume shard 0 in this process (same layout, full speed): the
    // snapshot's shard line and folded fingerprint admit exactly this.
    let control = RunControl {
        shard: ShardSpec::of(0, 2),
        checkpoint: Some(CheckpointConfig::new(&ckpt0).every(1).keep_on_success()),
        ..RunControl::default()
    };
    c.run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &eval, &control)
        .expect("resume shard 0 after SIGKILL");
    // Run the other shard, then merge.
    let ckpt1 = dir.join("shard-1-of-2.ckpt");
    let control = RunControl {
        shard: ShardSpec::of(1, 2),
        checkpoint: Some(CheckpointConfig::new(&ckpt1).every(1).keep_on_success()),
        ..RunControl::default()
    };
    c.run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &eval, &control)
        .expect("shard 1 run");
    let merged = c
        .merge(
            &[ckpt0, ckpt1],
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::default(),
        )
        .expect("merge");
    assert_eq!(merged, baseline);
    let _ = std::fs::remove_dir_all(&dir);
}
