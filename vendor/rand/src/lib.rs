//! Offline polyfill of the small `rand` 0.8 API surface this workspace
//! uses. The build environment has no crates.io access, so the workspace
//! vendors a seeded, deterministic generator with the same *shape* as the
//! upstream crate: [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! **not** bit-compatible with upstream `rand`; everything in this
//! repository that depends on exact values derives them from seeds within
//! the same build, so only internal determinism matters.

/// Low-level entropy source: 32/64-bit outputs and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG (the polyfill's stand-in
/// for upstream's `Standard: Distribution<T>` bound).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` from the top 24 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_u128(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo + uniform_u128(rng, span) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Uniform value in `[0, span)` by rejection sampling (span > 0).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        // Only reachable for 128-bit spans, which this workspace never uses.
        ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (integers full-range, floats in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills a byte slice (mirror of upstream's `Rng::fill` for `[u8]`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Small state, excellent statistical quality, and fully deterministic
    /// per seed — everything the fault-injection campaigns need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xB7E1_5162_8AED_2A6B,
                    0x243F_6A88_85A3_08D3,
                ];
            }
            Self { s }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling and selection (the subset of upstream's trait the
    /// workspace uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_are_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut sum32 = 0.0f32;
        for _ in 0..n {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum32 += v;
        }
        assert!((sum32 / n as f32 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn works_through_dyn_like_generic_forwarding() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
