//! Regenerates paper Table 5: optimistic total time to write all DNN
//! weights per model and eNVM proposal.

use maxnvm::{optimal_design, CellTechnology};
use maxnvm_dnn::zoo;
use maxnvm_envm::WriteModel;

fn main() {
    println!("Table 5: optimistic total time to write all DNN weights\n");
    let paper: &[(&str, &str, &str)] = &[
        ("VGG12", "Opt MLC-RRAM", "13ms"),
        ("VGG12", "MLC-CTT", "2.6 minutes"),
        ("VGG12", "MLC-RRAM", "33ms"),
        ("VGG12", "SLC-RRAM", "3ms"),
        ("ResNet50", "Opt MLC-RRAM", "117ms"),
        ("ResNet50", "MLC-CTT", "15.7 minutes"),
        ("ResNet50", "MLC-RRAM", "94ms"),
        ("ResNet50", "SLC-RRAM", "4.7ms"),
        ("VGG16", "Opt MLC-RRAM", "254ms"),
        ("VGG16", "MLC-CTT", "12.2 minutes"),
        ("VGG16", "MLC-RRAM", "636ms"),
        ("VGG16", "SLC-RRAM", "23ms"),
    ];
    println!(
        "{:<10} {:<16} {:>18} {:>16}",
        "Model", "Technology", "Write time (ours)", "(paper)"
    );
    for spec in [zoo::vgg12(), zoo::resnet50(), zoo::vgg16()] {
        for tech in CellTechnology::ALL {
            let d = optimal_design(&spec, tech).expect("design");
            let p = paper
                .iter()
                .find(|(m, t, _)| *m == spec.name && *t == tech.name())
                .expect("paper row");
            println!(
                "{:<10} {:<16} {:>18} {:>16}",
                spec.name,
                tech.name(),
                WriteModel::format_duration(d.write_time_s),
                p.2
            );
        }
        println!();
    }
    println!("Shape check (paper): CTT rewrites take minutes; RRAM variants");
    println!("milliseconds — orders of magnitude apart.");
}
