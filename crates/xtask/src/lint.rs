//! `maxnvm-lint`: the repo-specific static analysis pass.
//!
//! Three rule families enforce the contracts the evaluation results rest
//! on (see DESIGN.md §11):
//!
//! - **D1 determinism** — result-affecting crates (`envm`, `encoding`,
//!   `ecc`, `dnn`, `faultsim`) must not use iteration-order-unstable
//!   containers (`HashMap`/`HashSet`), ambient randomness
//!   (`thread_rng`), or wall-clock reads (`Instant`, `SystemTime`) in
//!   library code. The one sanctioned exception — `cancel.rs` deadline
//!   checks — lives in the curated allow-list.
//! - **D2 no-panic** — library code must not call `.unwrap()`,
//!   `.expect()`, or the `panic!`-family macros; failures surface as
//!   typed errors. The `assert!` family is permitted for documented
//!   internal invariants. Direct slice indexing is reported as an
//!   advisory count only.
//! - **D3 unsafe hygiene** — every `unsafe` keyword must be covered by a
//!   `// SAFETY:` comment, and every lint escape hatch (inline allow or
//!   allow-list entry) must carry a justification, which the report
//!   prints.
//!
//! Scope: `src/` of every workspace crate plus the root package, minus
//! `src/bin/`, `tests/`, `benches/`, `examples/`, `#[cfg(test)]` /
//! `#[test]` / `#[cfg(loom)]` items, and this xtask itself.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::scan::{find_word, scan, FileScan};

/// Crates whose library code feeds Monte-Carlo results (rule D1).
const RESULT_AFFECTING: &[&str] = &["envm", "encoding", "ecc", "dnn", "faultsim"];

/// Identifiers banned by D1, with the sub-rule they trip.
const D1_BANNED: &[(&str, &str, &str)] = &[
    (
        "HashMap",
        "D1/hash-container",
        "iteration order is nondeterministic",
    ),
    (
        "HashSet",
        "D1/hash-container",
        "iteration order is nondeterministic",
    ),
    (
        "thread_rng",
        "D1/thread-rng",
        "ambient RNG breaks seeded reproducibility",
    ),
    (
        "Instant",
        "D1/wallclock",
        "wall-clock reads make results timing-dependent",
    ),
    (
        "SystemTime",
        "D1/wallclock",
        "wall-clock reads make results timing-dependent",
    ),
];

/// Macros banned by D2 (the `assert!` family is explicitly allowed).
const D2_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One rule violation at a source location.
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    pub snippet: String,
}

/// A violation suppressed by an escape hatch; justification is printed.
pub struct Allowed {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub source: &'static str, // "inline" | "allow-list"
    pub justification: String,
}

/// One entry of the curated `lint-allow.toml`.
pub struct AllowEntry {
    pub path: String,
    pub rule: String,
    pub justification: String,
    pub used: std::cell::Cell<bool>,
}

/// Parsed `lint-allow.toml`.
pub struct AllowList {
    pub version: u64,
    pub entries: Vec<AllowEntry>,
}

/// Full result of a lint run.
pub struct Report {
    pub version: u64,
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub allowed: Vec<Allowed>,
    /// Advisory: direct index expressions per crate (not enforced).
    pub slice_index_counts: BTreeMap<String, usize>,
    pub errors: Vec<String>,
}

/// Runs the pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> Report {
    let mut report = Report {
        version: 0,
        files_scanned: 0,
        violations: Vec::new(),
        allowed: Vec::new(),
        slice_index_counts: BTreeMap::new(),
        errors: Vec::new(),
    };

    let allow = match load_allow_list(&root.join("lint-allow.toml")) {
        Ok(a) => a,
        Err(e) => {
            report.errors.push(e);
            AllowList {
                version: 0,
                entries: Vec::new(),
            }
        }
    };
    report.version = allow.version;
    if allow.entries.len() > 5 {
        report.errors.push(format!(
            "lint-allow.toml has {} entries; the curated allow-list is capped at 5 — fix the code instead",
            allow.entries.len()
        ));
    }
    for e in &allow.entries {
        if e.justification.trim().is_empty() {
            report.errors.push(format!(
                "lint-allow.toml entry for {} has no justification",
                e.path
            ));
        }
    }

    for file in workspace_sources(root) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                report.errors.push(format!("cannot read {rel}: {e}"));
                continue;
            }
        };
        report.files_scanned += 1;
        lint_file(&rel, &src, &allow, &mut report);
    }

    for e in &allow.entries {
        if !e.used.get() {
            report.errors.push(format!(
                "lint-allow.toml entry for {} ({}) matched nothing — remove it",
                e.path, e.rule
            ));
        }
    }
    report
}

/// Library sources under `crates/*/src` and the root `src/`, minus
/// `src/bin/` and the xtask crate itself.
fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() && p.file_name().is_some_and(|n| n != "xtask") {
                dirs.push(p.join("src"));
            }
        }
    }
    while let Some(dir) = dirs.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n != "bin") {
                    dirs.push(p);
                }
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

/// Crate name for a repo-relative path, or `None` for the root package.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

fn is_result_affecting(rel: &str) -> bool {
    crate_of(rel).is_some_and(|c| RESULT_AFFECTING.contains(&c))
}

fn lint_file(rel: &str, src: &str, allow: &AllowList, report: &mut Report) {
    let fs = scan(src);
    let d1 = is_result_affecting(rel);
    let mut slice_indexes = 0usize;

    for (idx, line) in fs.code.iter().enumerate() {
        if fs.excluded[idx] {
            continue;
        }
        let lineno = idx + 1;
        let mut emit = |rule: &'static str, message: String| {
            record(report, &fs, allow, rel, lineno, rule, message, src);
        };

        if d1 {
            for (ident, rule, why) in D1_BANNED {
                if !find_word(line, ident).is_empty() {
                    emit(rule, format!("`{ident}` in result-affecting crate: {why}"));
                }
            }
        }

        for at in find_word(line, "unwrap") {
            if called_as_method(line, at, "unwrap") {
                emit(
                    "D2/unwrap",
                    "`.unwrap()` in library code; use a typed error or a total rewrite".into(),
                );
            }
        }
        for at in find_word(line, "expect") {
            if called_as_method(line, at, "expect") {
                emit(
                    "D2/expect",
                    "`.expect()` in library code; use a typed error or a total rewrite".into(),
                );
            }
        }
        for mac in D2_MACROS {
            for at in find_word(line, mac) {
                let rest = line[at + mac.len()..].trim_start();
                if rest.starts_with('!') {
                    emit(
                        "D2/panic",
                        format!("`{mac}!` in library code; surface a typed error"),
                    );
                }
            }
        }

        for at in find_word(line, "unsafe") {
            let _ = at;
            if !has_safety_comment(&fs, idx) {
                emit(
                    "D3/safety-comment",
                    "`unsafe` without a `// SAFETY:` comment in the preceding lines".into(),
                );
            }
        }

        slice_indexes += count_index_exprs(line);
    }

    if slice_indexes > 0 {
        let key = crate_of(rel).unwrap_or("(root)").to_string();
        *report.slice_index_counts.entry(key).or_insert(0) += slice_indexes;
    }
}

/// Records a violation, routing it through the escape hatches first.
#[allow(clippy::too_many_arguments)]
fn record(
    report: &mut Report,
    fs: &FileScan,
    allow: &AllowList,
    rel: &str,
    lineno: usize,
    rule: &'static str,
    message: String,
    src: &str,
) {
    if let Some(justification) = inline_allow(fs, lineno, rule) {
        if justification.is_empty() {
            report.violations.push(Violation {
                path: rel.to_string(),
                line: lineno,
                rule: "D3/allow-justification",
                message: format!("inline allow for {rule} has no justification text"),
                snippet: snippet(src, lineno),
            });
        } else {
            report.allowed.push(Allowed {
                path: rel.to_string(),
                line: lineno,
                rule,
                source: "inline",
                justification,
            });
        }
        return;
    }
    for entry in &allow.entries {
        if entry.path == rel && rule.starts_with(entry.rule.as_str()) {
            entry.used.set(true);
            report.allowed.push(Allowed {
                path: rel.to_string(),
                line: lineno,
                rule,
                source: "allow-list",
                justification: entry.justification.clone(),
            });
            return;
        }
    }
    report.violations.push(Violation {
        path: rel.to_string(),
        line: lineno,
        rule,
        message,
        snippet: snippet(src, lineno),
    });
}

/// Is the identifier at byte offset `at` a method call `.name(`?
fn called_as_method(line: &str, at: usize, name: &str) -> bool {
    let before = line[..at].trim_end();
    if !before.ends_with('.') {
        return false;
    }
    let after = line[at + name.len()..].trim_start();
    after.starts_with('(')
}

/// Looks for `// SAFETY:` on the same line or within the 10 preceding
/// lines (attributes and the `unsafe` item header may sit in between).
fn has_safety_comment(fs: &FileScan, idx: usize) -> bool {
    let lo = idx.saturating_sub(10);
    fs.comments[lo..=idx].iter().any(|c| c.contains("SAFETY:"))
}

/// Parses `maxnvm-lint: allow(rule): justification` on the violation
/// line or the immediately preceding comment lines. Returns the
/// justification (possibly empty) when the rule matches.
fn inline_allow(fs: &FileScan, lineno: usize, rule: &str) -> Option<String> {
    let idx = lineno - 1;
    let lo = idx.saturating_sub(3);
    for c in fs.comments[lo..=idx].iter().rev() {
        let Some(pos) = c.find("maxnvm-lint: allow(") else {
            continue;
        };
        let rest = &c[pos + "maxnvm-lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let allowed_rule = rest[..close].trim();
        if !rule.starts_with(allowed_rule) {
            continue;
        }
        let just = rest[close + 1..]
            .trim_start_matches([':', ' ', '-', '—', '–'])
            .trim()
            .to_string();
        return Some(just);
    }
    None
}

/// Advisory: counts `expr[...]` index expressions (`name[`, `)[`, `][`).
fn count_index_exprs(line: &str) -> usize {
    let bytes = line.as_bytes();
    let mut n = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if crate::scan::is_ident_char(prev) || prev == ')' || prev == ']' {
            // Attributes (`#[...]`) never match: prev is `#` or `!` there.
            n += 1;
        }
    }
    n
}

fn snippet(src: &str, lineno: usize) -> String {
    src.lines()
        .nth(lineno - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

/// Minimal parser for the subset of TOML `lint-allow.toml` uses:
/// a top-level `version = N` and `[[allow]]` tables of string keys.
pub fn load_allow_list(path: &Path) -> Result<AllowList, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut version = 0u64;
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut in_allow = false;
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(AllowEntry {
                path: String::new(),
                rule: String::new(),
                justification: String::new(),
                used: std::cell::Cell::new(false),
            });
            in_allow = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint-allow.toml:{}: expected `key = value`", n + 1));
        };
        let key = key.trim();
        let value = value.trim().trim_matches('"').to_string();
        if !in_allow {
            if key == "version" {
                version = value.parse().map_err(|_| {
                    format!("lint-allow.toml:{}: version must be an integer", n + 1)
                })?;
            }
            continue;
        }
        let entry = entries
            .last_mut()
            .ok_or_else(|| format!("lint-allow.toml:{}: key outside [[allow]]", n + 1))?;
        match key {
            "path" => entry.path = value,
            "rule" => entry.rule = value,
            "justification" => entry.justification = value,
            other => {
                return Err(format!("lint-allow.toml:{}: unknown key {other:?}", n + 1));
            }
        }
    }
    Ok(AllowList { version, entries })
}

impl Report {
    /// Non-empty violations or configuration errors fail the run.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "maxnvm-lint v{} — D1 determinism, D2 no-panic, D3 unsafe hygiene",
            self.version
        );
        for v in &self.violations {
            let _ = writeln!(out, "error[{}]: {}", v.rule, v.message);
            let _ = writeln!(out, "  --> {}:{}", v.path, v.line);
            if !v.snippet.is_empty() {
                let _ = writeln!(out, "   | {}", v.snippet);
            }
        }
        for e in &self.errors {
            let _ = writeln!(out, "error[config]: {e}");
        }
        if !self.allowed.is_empty() {
            let _ = writeln!(out, "allowed ({}):", self.allowed.len());
            for a in &self.allowed {
                let _ = writeln!(
                    out,
                    "  {}:{} [{}] ({}): {}",
                    a.path, a.line, a.rule, a.source, a.justification
                );
            }
        }
        for (krate, n) in &self.slice_index_counts {
            let _ = writeln!(
                out,
                "advisory[A1/slice-index]: {krate}: {n} direct index expressions (not enforced; panics on out-of-range)"
            );
        }
        let _ = writeln!(
            out,
            "summary: {} violation(s), {} allowed, {} file(s) scanned",
            self.violations.len() + self.errors.len(),
            self.allowed.len(),
            self.files_scanned
        );
        out
    }

    /// Machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"maxnvm-lint-report/v1\",");
        let _ = writeln!(out, "  \"lint_pass_version\": {},", self.version);
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&v.path),
                v.line,
                json_str(v.rule),
                json_str(&v.message)
            );
            out.push_str(if i + 1 < self.violations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"allowed\": [\n");
        for (i, a) in self.allowed.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"source\": {}, \"justification\": {}}}",
                json_str(&a.path),
                a.line,
                json_str(a.rule),
                json_str(a.source),
                json_str(&a.justification)
            );
            out.push_str(if i + 1 < self.allowed.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"config_errors\": [\n");
        for (i, e) in self.errors.iter().enumerate() {
            let _ = write!(out, "    {}", json_str(e));
            out.push_str(if i + 1 < self.errors.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"advisory_slice_index\": {\n");
        let total = self.slice_index_counts.len();
        for (i, (krate, n)) in self.slice_index_counts.iter().enumerate() {
            let _ = write!(out, "    {}: {}", json_str(krate), n);
            out.push_str(if i + 1 < total { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, src: &str) -> Report {
        let mut report = Report {
            version: 1,
            files_scanned: 1,
            violations: Vec::new(),
            allowed: Vec::new(),
            slice_index_counts: BTreeMap::new(),
            errors: Vec::new(),
        };
        let allow = AllowList {
            version: 1,
            entries: Vec::new(),
        };
        lint_file(rel, src, &allow, &mut report);
        report
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let r = lint_str(
            "crates/envm/src/x.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "D2/unwrap");
        assert_eq!(r.violations[0].line, 1);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let r = lint_str(
            "crates/envm/src/x.rs",
            "fn f(x: Option<u8>) { x.unwrap_or(0); }\n",
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { None::<u8>.unwrap(); }\n}\n";
        let r = lint_str("crates/envm/src/x.rs", src);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn hashmap_flagged_only_in_result_affecting_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_str("crates/envm/src/x.rs", src).violations.len(), 1);
        assert!(lint_str("crates/nvsim/src/x.rs", src).violations.is_empty());
    }

    #[test]
    fn assert_family_is_allowed() {
        let src = "fn f(n: usize) { assert!(n > 0); debug_assert_eq!(n, n); }\n";
        assert!(lint_str("crates/ecc/src/x.rs", src).violations.is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        let src = "fn f() { unreachable!(); }\n";
        let r = lint_str("crates/dnn/src/x.rs", src);
        assert_eq!(r.violations[0].rule, "D2/panic");
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { core() } }\n";
        let good = "// SAFETY: scope guard joins before return.\nfn f() { unsafe { core() } }\n";
        assert_eq!(
            lint_str("crates/faultsim/src/x.rs", bad).violations[0].rule,
            "D3/safety-comment"
        );
        assert!(lint_str("crates/faultsim/src/x.rs", good)
            .violations
            .is_empty());
    }

    #[test]
    fn inline_allow_with_justification_suppresses() {
        let src = "fn f(x: Option<u8>) {\n  // maxnvm-lint: allow(D2/unwrap): cannot fail, slot filled above\n  x.unwrap();\n}\n";
        let r = lint_str("crates/envm/src/x.rs", src);
        assert!(r.violations.is_empty());
        assert_eq!(r.allowed.len(), 1);
        assert!(r.allowed[0].justification.contains("cannot fail"));
    }

    #[test]
    fn inline_allow_without_justification_is_a_violation() {
        let src = "// maxnvm-lint: allow(D2/unwrap)\nfn f(x: Option<u8>) { x.unwrap(); }\n";
        let r = lint_str("crates/envm/src/x.rs", src);
        assert_eq!(r.violations[0].rule, "D3/allow-justification");
    }

    #[test]
    fn banned_names_in_strings_and_comments_do_not_fire() {
        let src = "fn f() -> &'static str { \"HashMap Instant unwrap()\" } // thread_rng\n";
        assert!(lint_str("crates/envm/src/x.rs", src).violations.is_empty());
    }

    #[test]
    fn sparse_modules_are_in_the_d1_scan() {
        // The sparse compute format is result-affecting end to end: the
        // walk-built matrices, the sparse GEMM, and the prefix cache all
        // feed Monte-Carlo error rates. Lock them into the D1 scan so a
        // module move can't silently drop them from enforcement.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files: Vec<String> = workspace_sources(&root)
            .iter()
            .map(|p| {
                p.strip_prefix(&root)
                    .unwrap_or(p)
                    .to_string_lossy()
                    .replace('\\', "/")
            })
            .collect();
        for rel in [
            "crates/dnn/src/sparse.rs",
            "crates/dnn/src/gemm.rs",
            "crates/dnn/src/gemm/dispatch.rs",
            "crates/dnn/src/gemm/kernel_x86.rs",
            "crates/dnn/src/gemm/kernel_neon.rs",
            "crates/dnn/src/prefix.rs",
            "crates/encoding/src/storage/prepared.rs",
            "crates/faultsim/src/evaluate.rs",
        ] {
            assert!(
                files.iter().any(|f| f == rel),
                "{rel} missing from the lint scan"
            );
            assert!(is_result_affecting(rel), "{rel} exempt from D1");
        }
        let r = lint_str(
            "crates/dnn/src/sparse.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "D1/hash-container");
    }

    #[test]
    fn server_and_checkpoint_modules_have_the_right_scan_status() {
        // The checkpoint substrate (stores, retry, parsing) feeds
        // resumed campaign results, so it must stay under the full D1
        // scan. The supervisor crate is service plumbing — its watchdog
        // legitimately reads wall clocks — so it must be *in* the scan
        // (D2 no-panic still applies) but *not* result-affecting.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files: Vec<String> = workspace_sources(&root)
            .iter()
            .map(|p| {
                p.strip_prefix(&root)
                    .unwrap_or(p)
                    .to_string_lossy()
                    .replace('\\', "/")
            })
            .collect();
        for rel in [
            "crates/faultsim/src/checkpoint.rs",
            "crates/server/src/supervisor.rs",
            "crates/server/src/config.rs",
            "crates/server/src/job.rs",
        ] {
            assert!(
                files.iter().any(|f| f == rel),
                "{rel} missing from the lint scan"
            );
        }
        assert!(is_result_affecting("crates/faultsim/src/checkpoint.rs"));
        assert!(!is_result_affecting("crates/server/src/supervisor.rs"));
        // D2 holds for the server crate even though it is D1-exempt.
        let r = lint_str(
            "crates/server/src/supervisor.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "D2/unwrap");
        // And Instant stays banned where it matters: the checkpoint
        // module retries with Duration arithmetic only.
        let r = lint_str(
            "crates/faultsim/src/checkpoint.rs",
            "use std::time::Instant;\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "D1/wallclock");
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let r = lint_str(
            "crates/envm/src/x.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        let j = r.render_json();
        assert!(j.contains("\"rule\": \"D2/unwrap\""));
        assert!(j.contains("\"clean\": false"));
    }
}
