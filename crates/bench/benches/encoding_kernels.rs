//! Criterion benchmarks for the encoding-side kernels: k-means weight
//! clustering, CSR and BitMask encode/decode, Hamming SEC-DED, and MLC
//! cell packing — the per-layer work behind Table 2 and Fig. 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maxnvm_bits::BitBuffer;
use maxnvm_dnn::network::LayerMatrix;
use maxnvm_ecc::{BlockCodec, SecDed};
use maxnvm_encoding::bitmask::BitMaskLayer;
use maxnvm_encoding::cluster::{kmeans_1d, ClusteredLayer};
use maxnvm_encoding::csr::CsrLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::MlcConfig;
use rand::{Rng, SeedableRng};

fn sample_matrix(rows: usize, cols: usize, sparsity: f64, seed: u64) -> LayerMatrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| {
            if rng.gen::<f64>() < sparsity {
                0.0
            } else {
                rng.gen::<f32>() - 0.5
            }
        })
        .collect();
    LayerMatrix::new("bench", rows, cols, data)
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_1d");
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let values: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() - 0.5).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, v| {
            b.iter(|| kmeans_1d(v, 15, 25, 7));
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let m = sample_matrix(256, 1024, 0.8, 2);
    let clustered = ClusteredLayer::from_matrix(&m, 6, 3);
    let mut group = c.benchmark_group("sparse_encode");
    group.throughput(Throughput::Elements((256 * 1024) as u64));
    group.bench_function("csr_encode", |b| b.iter(|| CsrLayer::encode(&clustered)));
    group.bench_function("bitmask_encode", |b| {
        b.iter(|| BitMaskLayer::encode(&clustered, true))
    });
    let csr = CsrLayer::encode(&clustered);
    group.bench_function("csr_reconstruct", |b| b.iter(|| csr.reconstruct_indices()));
    let bm = BitMaskLayer::encode(&clustered, true);
    group.bench_function("bitmask_reconstruct", |b| {
        b.iter(|| bm.reconstruct_indices())
    });
    group.finish();
}

fn bench_storage_round_trip(c: &mut Criterion) {
    let m = sample_matrix(128, 512, 0.7, 4);
    let clustered = ClusteredLayer::from_matrix(&m, 4, 5);
    let mut group = c.benchmark_group("mlc_storage");
    for (label, scheme) in [
        (
            "bitmask_mlc3_idxsync",
            StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync(),
        ),
        (
            "csr_mlc3_ecc",
            StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3).with_ecc(),
        ),
    ] {
        group.bench_function(format!("store/{label}"), |b| {
            b.iter(|| StoredLayer::store(&clustered, &scheme))
        });
        let stored = StoredLayer::store(&clustered, &scheme);
        group.bench_function(format!("decode_clean/{label}"), |b| {
            b.iter(|| stored.decode_clean())
        });
    }
    group.finish();
}

fn bench_secded(c: &mut Criterion) {
    let mut group = c.benchmark_group("secded");
    let code = SecDed::default_512b();
    let codec = BlockCodec::new(code);
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let data: BitBuffer = (0..64 * 1024).map(|_| rng.gen::<bool>()).collect();
    group.throughput(Throughput::Bytes(64 * 1024 / 8));
    group.bench_function("encode_64kib", |b| b.iter(|| codec.encode(&data)));
    let encoded = codec.encode(&data);
    group.bench_function("decode_64kib", |b| {
        b.iter(|| codec.decode(&encoded, data.len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kmeans, bench_encode_decode, bench_storage_round_trip, bench_secded
}
criterion_main!(benches);
