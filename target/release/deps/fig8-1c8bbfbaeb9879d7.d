/root/repo/target/release/deps/fig8-1c8bbfbaeb9879d7.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-1c8bbfbaeb9879d7: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
