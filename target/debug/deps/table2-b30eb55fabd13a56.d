/root/repo/target/debug/deps/table2-b30eb55fabd13a56.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-b30eb55fabd13a56: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
