/root/repo/target/debug/deps/table2-69c2d809c7ca8392.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-69c2d809c7ca8392: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
