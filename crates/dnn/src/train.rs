//! SGD training with softmax cross-entropy for the substrate's trainable
//! architectures (stacks of conv / linear / ReLU / max-pool / flatten).
//!
//! The paper's iso-training-noise (ITN) bound (§3.1.1) comes from training
//! the same topology repeatedly with identical hyper-parameters and using
//! the run-to-run accuracy spread as the tolerance for any model
//! alteration. [`itn_bound`] reproduces that procedure on the substrate's
//! trainable models.

use crate::gemm::{gemm_into, GemmScratch};
use crate::layer::Layer;
use crate::network::Network;
use crate::tensor::{col2im, im2col, Tensor};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// RNG seed for shuffling and (re)initialization.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            lr: 0.05,
            momentum: 0.9,
            seed: 0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean cross-entropy loss over the final epoch.
    pub final_loss: f32,
    /// Training-set error rate after the final epoch.
    pub train_error: f64,
}

/// Error returned when a network contains layers without backprop support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedBackprop(pub String);

impl fmt::Display for UnsupportedBackprop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "network '{}' contains layers without backprop support",
            self.0
        )
    }
}

impl std::error::Error for UnsupportedBackprop {}

/// Per-layer parameter gradients (only weight-bearing layers have entries).
struct ParamGrad {
    weight: Tensor,
    bias: Vec<f32>,
}

/// Initializes conv/linear weights with He-style scaled Gaussians.
pub fn he_init(net: &mut Network, seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    fn init_layers<R: Rng>(layers: &mut [Layer], rng: &mut R) {
        for l in layers {
            match l {
                Layer::Conv2d { weight, .. } | Layer::Linear { weight, .. } => {
                    let fan_in = weight.shape()[1] as f32;
                    let std = (2.0 / fan_in).sqrt();
                    for v in weight.data_mut() {
                        // Box–Muller on f32.
                        let u1: f32 = 1.0 - rng.gen::<f32>();
                        let u2: f32 = rng.gen();
                        *v =
                            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                    }
                }
                Layer::Residual { body, shortcut } => {
                    init_layers(body, rng);
                    init_layers(shortcut, rng);
                }
                _ => {}
            }
        }
    }
    init_layers(net.layers_mut(), &mut rng);
}

/// Softmax cross-entropy loss and gradient w.r.t. the logits.
fn softmax_ce(logits: &Tensor, label: usize) -> (f32, Tensor) {
    let max = logits
        .data()
        .iter()
        .fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f32> = logits.data().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
    let loss = -(probs[label].max(1e-12)).ln();
    let grad = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| if i == label { p - 1.0 } else { p })
        .collect();
    (loss, Tensor::from_vec(logits.shape(), grad))
}

/// Forward + backward for one sample. Returns the loss and per-layer
/// parameter gradients (None for parameter-free layers), or
/// [`UnsupportedBackprop`] when a layer has no backward pass.
// maxnvm-lint: allow(R1/index-arith): mirrors the forward pass's indexing: all products are over dims destructured from the validated layer shapes, and the maxpool argmax re-reads taps it just probed.
fn forward_backward(
    net: &Network,
    x: &Tensor,
    label: usize,
) -> Result<(f32, Vec<Option<ParamGrad>>), UnsupportedBackprop> {
    // Forward, caching each layer's input.
    let mut inputs: Vec<Tensor> = Vec::with_capacity(net.layers().len());
    let mut cur = x.clone();
    for l in net.layers() {
        inputs.push(cur.clone());
        cur = l.forward(&cur);
    }
    let (loss, mut grad) = softmax_ce(&cur, label);

    let mut grads: Vec<Option<ParamGrad>> = (0..net.layers().len()).map(|_| None).collect();
    for (li, l) in net.layers().iter().enumerate().rev() {
        let input = &inputs[li];
        match l {
            Layer::Linear { weight, .. } => {
                let (out, inp) = (weight.shape()[0], weight.shape()[1]);
                let mut dw = Tensor::zeros(&[out, inp]);
                let mut db = vec![0.0f32; out];
                let mut dx = vec![0.0f32; inp];
                #[allow(clippy::needless_range_loop)]
                for o in 0..out {
                    let g = grad.data()[o];
                    db[o] = g;
                    let wrow = &weight.data()[o * inp..(o + 1) * inp];
                    let dwrow = &mut dw.data_mut()[o * inp..(o + 1) * inp];
                    for i in 0..inp {
                        dwrow[i] = g * input.data()[i];
                        dx[i] += g * wrow[i];
                    }
                }
                grads[li] = Some(ParamGrad {
                    weight: dw,
                    bias: db,
                });
                grad = Tensor::from_vec(&[inp], dx);
            }
            Layer::Conv2d {
                weight,
                in_ch,
                kh,
                kw,
                stride,
                pad,
                ..
            } => {
                let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
                debug_assert_eq!(c, *in_ch);
                let (cols, oh, ow) = im2col(input, *kh, *kw, *stride, *pad);
                let out_ch = weight.shape()[0];
                let fan_in = weight.shape()[1];
                let p = oh * ow;
                // grad is [out_ch, oh, ow] -> matrix [out_ch, oh*ow]
                let gmat = grad.clone().reshape(&[out_ch, p]);
                let mut gs = GemmScratch::default();
                // dW = gmat · cols^T  ([out_ch, p] · [p, fan_in])
                let colst = cols.transpose();
                let mut dw_data = vec![0.0f32; out_ch * fan_in];
                gemm_into(
                    &mut dw_data,
                    gmat.data(),
                    colst.data(),
                    out_ch,
                    p,
                    fan_in,
                    &mut gs,
                );
                let dw = Tensor::from_vec(&[out_ch, fan_in], dw_data);
                let db: Vec<f32> = (0..out_ch)
                    .map(|o| gmat.data()[o * p..(o + 1) * p].iter().sum())
                    .collect();
                // dX_cols = W^T · gmat ([fan_in, out_ch] · [out_ch, p]),
                // then fold back.
                let wt = weight.transpose();
                let mut dcols_data = vec![0.0f32; fan_in * p];
                gemm_into(
                    &mut dcols_data,
                    wt.data(),
                    gmat.data(),
                    fan_in,
                    out_ch,
                    p,
                    &mut gs,
                );
                let dcols = Tensor::from_vec(&[fan_in, p], dcols_data);
                let dx = col2im(&dcols, c, h, w, *kh, *kw, *stride, *pad);
                grads[li] = Some(ParamGrad {
                    weight: dw,
                    bias: db,
                });
                grad = dx;
            }
            Layer::ReLU => {
                let data = grad
                    .data()
                    .iter()
                    .zip(input.data())
                    .map(|(&g, &v)| if v > 0.0 { g } else { 0.0 })
                    .collect();
                grad = Tensor::from_vec(input.shape(), data);
            }
            Layer::MaxPool2 => {
                let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
                let (oh, ow) = (h / 2, w / 2);
                let mut dx = vec![0.0f32; c * h * w];
                for ci in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            // Recompute the argmax.
                            let (mut best, mut by, mut bx) = (f32::NEG_INFINITY, 0, 0);
                            for dy in 0..2 {
                                for dx_ in 0..2 {
                                    let v = input.data()[(ci * h + oy * 2 + dy) * w + ox * 2 + dx_];
                                    if v > best {
                                        best = v;
                                        by = dy;
                                        bx = dx_;
                                    }
                                }
                            }
                            dx[(ci * h + oy * 2 + by) * w + ox * 2 + bx] +=
                                grad.data()[(ci * oh + oy) * ow + ox];
                        }
                    }
                }
                grad = Tensor::from_vec(&[c, h, w], dx);
            }
            Layer::Flatten => {
                grad = grad.clone().reshape(input.shape());
            }
            other => {
                return Err(UnsupportedBackprop(format!(
                    "{} (layer {other:?})",
                    net.name
                )));
            }
        }
    }
    Ok((loss, grads))
}

/// Trains `net` in place with SGD + momentum.
///
/// # Errors
///
/// Returns [`UnsupportedBackprop`] if the network contains layers without
/// backprop support (residual blocks, batch norm, global average pooling).
pub fn sgd_train(
    net: &mut Network,
    samples: &[(Tensor, usize)],
    cfg: &TrainConfig,
) -> Result<TrainReport, UnsupportedBackprop> {
    if !net.supports_backprop() {
        return Err(UnsupportedBackprop(net.name.clone()));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    // Momentum buffers per weight-bearing layer.
    let mut vel: Vec<Option<(Tensor, Vec<f32>)>> = net
        .layers()
        .iter()
        .map(|l| match l {
            Layer::Conv2d { weight, bias, .. } | Layer::Linear { weight, bias, .. } => {
                Some((Tensor::zeros(weight.shape()), vec![0.0; bias.len()]))
            }
            _ => None,
        })
        .collect();

    let mut final_loss = 0.0f32;
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        for &si in &order {
            let (x, y) = &samples[si];
            let (loss, grads) = forward_backward(net, x, *y)?;
            epoch_loss += loss;
            for (li, g) in grads.into_iter().enumerate() {
                let Some(g) = g else { continue };
                // Gradients and velocity buffers are built from the same
                // layer list, so a Some gradient implies a Some buffer.
                let Some((vw, vb)) = vel[li].as_mut() else {
                    continue;
                };
                for (v, dg) in vw.data_mut().iter_mut().zip(g.weight.data()) {
                    *v = cfg.momentum * *v - cfg.lr * dg;
                }
                for (v, dg) in vb.iter_mut().zip(&g.bias) {
                    *v = cfg.momentum * *v - cfg.lr * dg;
                }
                match &mut net.layers_mut()[li] {
                    Layer::Conv2d { weight, bias, .. } | Layer::Linear { weight, bias, .. } => {
                        for (w, v) in weight.data_mut().iter_mut().zip(vw.data()) {
                            *w += v;
                        }
                        for (b, v) in bias.iter_mut().zip(vb.iter()) {
                            *b += v;
                        }
                    }
                    _ => {}
                }
            }
        }
        final_loss = epoch_loss / samples.len().max(1) as f32;
    }
    Ok(TrainReport {
        final_loss,
        train_error: net.error_rate(samples),
    })
}

/// Reproduces the paper's iso-training-noise procedure (§3.1.1): trains the
/// topology `runs` times from different seeds and returns
/// `(mean_error, bound)` where the bound is the peak-to-peak spread of the
/// test error across runs.
///
/// # Errors
///
/// Returns [`UnsupportedBackprop`] if the topology cannot be trained.
pub fn itn_bound<F>(
    make_net: F,
    train: &[(Tensor, usize)],
    test: &[(Tensor, usize)],
    cfg: &TrainConfig,
    runs: usize,
) -> Result<(f64, f64), UnsupportedBackprop>
where
    F: Fn(u64) -> Network,
{
    assert!(runs >= 2, "need at least two runs for a spread");
    let mut errors = Vec::with_capacity(runs);
    for r in 0..runs {
        let mut net = make_net(cfg.seed + r as u64 * 1000 + 1);
        let cfg_r = TrainConfig {
            seed: cfg.seed + r as u64 * 7919 + 13,
            ..cfg.clone()
        };
        sgd_train(&mut net, train, &cfg_r)?;
        errors.push(net.error_rate(test));
    }
    let mean = errors.iter().sum::<f64>() / runs as f64;
    let min = errors.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = errors.iter().cloned().fold(0.0f64, f64::max);
    Ok((mean, (max - min).max(0.005)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::gaussian_clusters;

    fn mlp(seed: u64) -> Network {
        let mut net = Network::new(
            "mlp",
            vec![
                Layer::linear("fc1", 16, 8),
                Layer::ReLU,
                Layer::linear("fc2", 3, 16),
            ],
        );
        he_init(&mut net, seed);
        net
    }

    #[test]
    fn mlp_learns_gaussian_clusters() {
        let data = gaussian_clusters(8, 3, 300, 1.8, 99);
        let mut net = mlp(1);
        let before = net.error_rate(&data);
        let cfg = TrainConfig {
            epochs: 20,
            lr: 0.02,
            momentum: 0.9,
            seed: 6,
        };
        let report = sgd_train(&mut net, &data, &cfg).unwrap();
        assert!(
            report.train_error < 0.1,
            "train error {} (before {before})",
            report.train_error
        );
        assert!(report.final_loss < 0.5);
    }

    #[test]
    fn cnn_learns_simple_patterns() {
        // Classify which quadrant of an 8x8 image contains a bright blob.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut samples = Vec::new();
        for _ in 0..240 {
            let label = rng.gen_range(0..4usize);
            let (cy, cx) = ((label / 2) * 4 + 2, (label % 2) * 4 + 2);
            let mut img = vec![0.0f32; 64];
            for dy in 0..2 {
                for dx in 0..2 {
                    img[(cy + dy - 1) * 8 + (cx + dx - 1)] = 1.0 + rng.gen::<f32>() * 0.2;
                }
            }
            for v in &mut img {
                *v += (rng.gen::<f32>() - 0.5) * 0.1;
            }
            samples.push((Tensor::from_vec(&[1, 8, 8], img), label));
        }
        let mut net = Network::new(
            "quadrant",
            vec![
                Layer::conv2d("c1", 4, 1, 3, 1, 1),
                Layer::ReLU,
                Layer::MaxPool2,
                Layer::Flatten,
                Layer::linear("fc", 4, 4 * 4 * 4),
            ],
        );
        he_init(&mut net, 3);
        let cfg = TrainConfig {
            epochs: 10,
            lr: 0.02,
            momentum: 0.9,
            seed: 4,
        };
        let report = sgd_train(&mut net, &samples, &cfg).unwrap();
        assert!(report.train_error < 0.15, "error {}", report.train_error);
    }

    #[test]
    fn conv_gradient_matches_finite_difference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut net = Network::new(
            "gradcheck",
            vec![
                Layer::conv2d("c", 2, 1, 3, 1, 0),
                Layer::Flatten,
                Layer::linear("fc", 2, 2 * 4 * 4),
            ],
        );
        he_init(&mut net, 8);
        let x = Tensor::from_vec(&[1, 6, 6], (0..36).map(|_| rng.gen::<f32>()).collect());
        let (_, grads) = forward_backward(&net, &x, 1).expect("backprop-capable net");
        let g = grads[0].as_ref().unwrap();
        // Check a few weight entries against central differences.
        for &wi in &[0usize, 5, 11] {
            let eps = 1e-3f32;
            let orig = match &net.layers()[0] {
                Layer::Conv2d { weight, .. } => weight.data()[wi],
                _ => unreachable!(),
            };
            let loss_at = |net: &mut Network, v: f32| {
                if let Layer::Conv2d { weight, .. } = &mut net.layers_mut()[0] {
                    weight.data_mut()[wi] = v;
                }
                let (l, _) = forward_backward(net, &x, 1).expect("backprop-capable net");
                l
            };
            let mut net2 = net.clone();
            let lp = loss_at(&mut net2, orig + eps);
            let lm = loss_at(&mut net2, orig - eps);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = g.weight.data()[wi];
            assert!(
                (numeric - analytic).abs() < 2e-2_f32.max(0.2 * numeric.abs()),
                "w[{wi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn training_rejects_residual_networks() {
        let mut net = Network::new(
            "res",
            vec![Layer::Residual {
                body: vec![Layer::ReLU],
                shortcut: vec![],
            }],
        );
        let err = sgd_train(&mut net, &[], &TrainConfig::default());
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("res"));
    }

    #[test]
    fn itn_bound_is_positive_and_small() {
        // Train and test splits must come from the *same* generated task
        // (same cluster centers), so draw one dataset and split it.
        let all = gaussian_clusters(8, 3, 450, 2.2, 10);
        let (train, test) = all.split_at(300);
        let cfg = TrainConfig {
            epochs: 15,
            lr: 0.02,
            momentum: 0.9,
            seed: 1,
        };
        let (mean, bound) = itn_bound(mlp, train, test, &cfg, 3).expect("trainable topology");
        assert!(mean < 0.2, "mean error {mean}");
        assert!((0.005..0.2).contains(&bound), "bound {bound}");
    }
}
