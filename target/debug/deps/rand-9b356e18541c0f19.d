/root/repo/target/debug/deps/rand-9b356e18541c0f19.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-9b356e18541c0f19.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
