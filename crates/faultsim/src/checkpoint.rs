//! Campaign checkpointing: periodic, atomic snapshots of completed
//! trials so a killed process resumes exactly where it stopped.
//!
//! A [`CampaignCheckpoint`] records the run's identity (a config
//! fingerprint, the scheme label, trial budget and base seed) plus one
//! entry per finished trial — the trial index, its classification error
//! (bit-exact, stored as the hex of [`f64::to_bits`]), and its decode
//! statistics, or the panic message for a trial that failed. Because a
//! trial is a pure function of `seed + trial`, merging checkpointed
//! outcomes with freshly run ones reproduces the uninterrupted result
//! byte for byte at any worker count.
//!
//! Files are written atomically: the snapshot goes to a sibling
//! `<path>.tmp`, is fsynced, and is renamed over the target, so a
//! SIGKILL at any instant leaves either the previous snapshot or the
//! new one — never a torn file. Loading verifies a fingerprint computed
//! over the campaign configuration, the technology, and the stored
//! layers; a mismatch surfaces as
//! [`EngineError::CheckpointMismatch`] instead of silently mixing
//! trials from different configurations. The trial-semantics version
//! ([`TRIAL_SEMANTICS_VERSION`]) is folded into the fingerprint, so
//! checkpoints from an engine whose trial loop changed are rejected
//! the same way.

use crate::campaign::TrialOutcome;
use crate::engine::EngineError;
use maxnvm_encoding::storage::DecodeStats;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// On-disk format tag; bumped only when the file layout itself changes.
pub const CHECKPOINT_FORMAT: &str = "maxnvm-campaign-checkpoint v1";

/// Version of the trial semantics (seeding, fault sampling, decode and
/// summation order). Folded into every fingerprint: resuming a
/// checkpoint across an engine whose trials mean something different
/// must fail loudly.
///
/// Version 3: inference runs on the blocked GEMM kernel with its fixed
/// input-independent summation order (the old naive matmul skipped
/// zero-valued multiplicands, so logits — and hence trial error rates —
/// can differ in the last bit), and trials evaluate sparse weight
/// deltas against the cached clean decode instead of materializing
/// faulty matrices.
///
/// Version 4: every kernel accumulates with single-rounding fused
/// multiply-adds (`fma`) instead of separate multiply + add, so the
/// SIMD tiers, the scalar tier, and per-row recomputation all produce
/// identical bits on every architecture; logits differ in the last bit
/// from version 3's unfused chains.
pub const TRIAL_SEMANTICS_VERSION: u32 = 4;

/// Where and how often to checkpoint a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Snapshot file; a sibling `<path>.tmp` is used for atomic writes.
    pub path: PathBuf,
    /// Write a snapshot after every `every` newly completed trials.
    pub every: usize,
    /// Keep the file after a run completes (default: remove it, so a
    /// finished campaign cannot be accidentally "resumed").
    pub keep_on_success: bool,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every 64 trials, removing on success.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every: 64,
            keep_on_success: false,
        }
    }

    /// Sets the flush cadence (in completed trials; clamped to ≥ 1).
    pub fn every(mut self, trials: usize) -> Self {
        self.every = trials.max(1);
        self
    }

    /// Keeps the snapshot after a successful run.
    pub fn keep_on_success(mut self) -> Self {
        self.keep_on_success = true;
        self
    }
}

/// FNV-1a accumulator for configuration fingerprints. Stable across
/// platforms and runs (unlike `DefaultHasher`, which is seeded).
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Starts a fingerprint already bound to the checkpoint format and
    /// trial-semantics versions.
    pub fn new() -> Self {
        let mut f = Fingerprint(0xcbf2_9ce4_8422_2325);
        f.push_str(CHECKPOINT_FORMAT);
        f.push_u64(TRIAL_SEMANTICS_VERSION as u64);
        f
    }

    /// Folds raw bytes in.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
        self
    }

    /// Folds an integer in (little-endian bytes).
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push_bytes(&v.to_le_bytes())
    }

    /// Folds a float in, bit-exact.
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.push_u64(v.to_bits())
    }

    /// Folds a string in (length-prefixed, so `"ab","c"` ≠ `"a","bc"`).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes())
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// A resumable snapshot of a (possibly multi-scheme) campaign: which
/// trials finished and what each produced.
///
/// Plain campaigns use a single group (index 0); DSE sweeps use one
/// group per candidate scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// Digest of the campaign configuration this snapshot belongs to.
    pub fingerprint: u64,
    /// Human-readable run label (scheme label or sweep name).
    pub label: String,
    /// Number of trial groups (1 for a campaign, schemes for a DSE).
    pub groups: usize,
    /// Requested trials per group.
    pub trials: usize,
    /// Base RNG seed; trial `t` uses `seed.wrapping_add(t)`.
    pub seed: u64,
    /// Completed trials: `(group, trial, outcome)`.
    pub entries: Vec<(usize, usize, TrialOutcome)>,
}

impl CampaignCheckpoint {
    /// An empty snapshot for a fresh run.
    pub fn new(
        fingerprint: u64,
        label: impl Into<String>,
        groups: usize,
        trials: usize,
        seed: u64,
    ) -> Self {
        Self {
            fingerprint,
            label: label.into(),
            groups,
            trials,
            seed,
            entries: Vec::new(),
        }
    }

    /// Records one finished trial.
    pub fn record(&mut self, group: usize, trial: usize, outcome: TrialOutcome) {
        self.entries.push((group, trial, outcome));
    }

    /// The set of already-completed `(group, trial)` pairs. Ordered
    /// (`BTreeSet`) so any traversal is deterministic (lint rule D1).
    pub fn completed(&self) -> BTreeSet<(usize, usize)> {
        self.entries.iter().map(|(g, t, _)| (*g, *t)).collect()
    }

    /// Errors with [`EngineError::CheckpointMismatch`] unless this
    /// snapshot's fingerprint matches `expected`.
    pub fn verify(&self, expected: u64) -> Result<(), EngineError> {
        if self.fingerprint == expected {
            Ok(())
        } else {
            Err(EngineError::CheckpointMismatch {
                expected,
                found: self.fingerprint,
            })
        }
    }

    /// Serializes the snapshot to its line-based text format.
    pub fn to_text(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|(g, t, _)| (*g, *t));
        let mut out = String::with_capacity(64 + entries.len() * 48);
        out.push_str(CHECKPOINT_FORMAT);
        out.push('\n');
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!("groups {}\n", self.groups));
        out.push_str(&format!("trials {}\n", self.trials));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("label {}\n", escape(&self.label)));
        for (group, trial, outcome) in &entries {
            match outcome {
                TrialOutcome::Ok { error, stats } => {
                    out.push_str(&format!(
                        "ok {group} {trial} {:016x} {} {} {}\n",
                        error.to_bits(),
                        stats.cell_faults,
                        stats.ecc_corrected,
                        stats.ecc_uncorrectable
                    ));
                }
                TrialOutcome::Failed { seed, message } => {
                    out.push_str(&format!(
                        "failed {group} {trial} {seed} {}\n",
                        escape(message)
                    ));
                }
            }
        }
        out.push_str(&format!("end {}\n", entries.len()));
        out
    }

    /// Parses the text format produced by [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<Self, EngineError> {
        let parse = |detail: String| EngineError::CheckpointParse { detail };
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| parse("empty file".into()))?;
        if header != CHECKPOINT_FORMAT {
            return Err(parse(format!("unknown format header {header:?}")));
        }
        let mut field = |name: &str| -> Result<String, EngineError> {
            let line = lines
                .next()
                .ok_or_else(|| parse(format!("missing {name} line")))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| parse(format!("expected {name} line, got {line:?}")))
        };
        let fingerprint = u64::from_str_radix(&field("fingerprint")?, 16)
            .map_err(|e| parse(format!("bad fingerprint: {e}")))?;
        let groups = field("groups")?
            .parse()
            .map_err(|e| parse(format!("bad groups: {e}")))?;
        let trials = field("trials")?
            .parse()
            .map_err(|e| parse(format!("bad trials: {e}")))?;
        let seed = field("seed")?
            .parse()
            .map_err(|e| parse(format!("bad seed: {e}")))?;
        let label = unescape(&field("label")?);
        let mut entries = Vec::new();
        let mut ended = false;
        for line in lines {
            let (kind, rest) = line
                .split_once(' ')
                .ok_or_else(|| parse(format!("malformed line {line:?}")))?;
            match kind {
                "ok" => {
                    let mut it = rest.splitn(6, ' ');
                    let mut next = |what: &str| -> Result<&str, EngineError> {
                        it.next()
                            .ok_or_else(|| parse(format!("ok line missing {what}: {line:?}")))
                    };
                    let group = next("group")?
                        .parse()
                        .map_err(|e| parse(format!("bad group: {e}")))?;
                    let trial = next("trial")?
                        .parse()
                        .map_err(|e| parse(format!("bad trial: {e}")))?;
                    let error = f64::from_bits(
                        u64::from_str_radix(next("error")?, 16)
                            .map_err(|e| parse(format!("bad error bits: {e}")))?,
                    );
                    let cell_faults = next("cell_faults")?
                        .parse()
                        .map_err(|e| parse(format!("bad cell_faults: {e}")))?;
                    let ecc_corrected = next("ecc_corrected")?
                        .parse()
                        .map_err(|e| parse(format!("bad ecc_corrected: {e}")))?;
                    let ecc_uncorrectable = next("ecc_uncorrectable")?
                        .parse()
                        .map_err(|e| parse(format!("bad ecc_uncorrectable: {e}")))?;
                    entries.push((
                        group,
                        trial,
                        TrialOutcome::Ok {
                            error,
                            stats: DecodeStats {
                                cell_faults,
                                ecc_corrected,
                                ecc_uncorrectable,
                            },
                        },
                    ));
                }
                "failed" => {
                    let mut it = rest.splitn(4, ' ');
                    let mut next = |what: &str| -> Result<&str, EngineError> {
                        it.next()
                            .ok_or_else(|| parse(format!("failed line missing {what}: {line:?}")))
                    };
                    let group = next("group")?
                        .parse()
                        .map_err(|e| parse(format!("bad group: {e}")))?;
                    let trial = next("trial")?
                        .parse()
                        .map_err(|e| parse(format!("bad trial: {e}")))?;
                    let seed = next("seed")?
                        .parse()
                        .map_err(|e| parse(format!("bad seed: {e}")))?;
                    let message = unescape(it.next().unwrap_or(""));
                    entries.push((group, trial, TrialOutcome::Failed { seed, message }));
                }
                "end" => {
                    let count: usize = rest
                        .parse()
                        .map_err(|e| parse(format!("bad end count: {e}")))?;
                    if count != entries.len() {
                        return Err(parse(format!(
                            "truncated snapshot: end says {count}, found {}",
                            entries.len()
                        )));
                    }
                    ended = true;
                }
                other => return Err(parse(format!("unknown record kind {other:?}"))),
            }
        }
        if !ended {
            return Err(parse("truncated snapshot: missing end marker".into()));
        }
        Ok(Self {
            fingerprint,
            label,
            groups,
            trials,
            seed,
            entries,
        })
    }

    /// Atomically writes the snapshot: serialize to `<path>.tmp`, fsync,
    /// rename over `path`. A crash mid-write leaves the previous
    /// snapshot intact.
    pub fn save(&self, path: &Path) -> Result<(), EngineError> {
        let io = |detail: std::io::Error| EngineError::CheckpointIo {
            path: path.display().to_string(),
            detail: detail.to_string(),
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp).map_err(io)?;
            file.write_all(self.to_text().as_bytes()).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Loads and parses a snapshot.
    pub fn load(path: &Path) -> Result<Self, EngineError> {
        let text = std::fs::read_to_string(path).map_err(|e| EngineError::CheckpointIo {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Self::from_text(&text)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignCheckpoint {
        let mut cp = CampaignCheckpoint::new(0xdead_beef_1234_5678, "BitM+IdxSync", 2, 10, 42);
        cp.record(
            0,
            3,
            TrialOutcome::Ok {
                error: 0.12345678901234567,
                stats: DecodeStats {
                    cell_faults: 7,
                    ecc_corrected: 2,
                    ecc_uncorrectable: 0,
                },
            },
        );
        cp.record(
            1,
            0,
            TrialOutcome::Failed {
                seed: 42,
                message: "index out of bounds:\n the len is 3".into(),
            },
        );
        cp.record(
            0,
            0,
            TrialOutcome::Ok {
                error: f64::MIN_POSITIVE,
                stats: DecodeStats::default(),
            },
        );
        cp
    }

    #[test]
    fn text_round_trip_is_exact() {
        let cp = sample();
        let parsed = CampaignCheckpoint::from_text(&cp.to_text()).expect("parse");
        // Serialization sorts entries by (group, trial).
        let mut want = cp.clone();
        want.entries.sort_by_key(|(g, t, _)| (*g, *t));
        assert_eq!(parsed, want);
    }

    #[test]
    fn file_round_trip_is_exact() {
        let dir = std::env::temp_dir().join(format!("maxnvm-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        let cp = sample();
        cp.save(&path).expect("save");
        let loaded = CampaignCheckpoint::load(&path).expect("load");
        assert_eq!(loaded.fingerprint, cp.fingerprint);
        assert_eq!(loaded.entries.len(), cp.entries.len());
        // Error bits survive bit-exactly.
        let tiny = loaded
            .entries
            .iter()
            .find(|(g, t, _)| (*g, *t) == (0, 0))
            .unwrap();
        match &tiny.2 {
            TrialOutcome::Ok { error, .. } => {
                assert_eq!(error.to_bits(), f64::MIN_POSITIVE.to_bits())
            }
            other => panic!("wrong outcome {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let cp = sample();
        let text = cp.to_text();
        // Drop the end marker (simulated torn write without the rename
        // discipline).
        let torn: String = text.lines().take(7).map(|l| format!("{l}\n")).collect();
        let err = CampaignCheckpoint::from_text(&torn).expect_err("must reject");
        assert!(
            matches!(err, EngineError::CheckpointParse { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn fingerprint_mismatch_is_typed() {
        let cp = sample();
        cp.verify(cp.fingerprint).expect("same fingerprint passes");
        let err = cp.verify(1).expect_err("mismatch must fail");
        assert_eq!(
            err,
            EngineError::CheckpointMismatch {
                expected: 1,
                found: cp.fingerprint
            }
        );
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let digest = |f: &mut Fingerprint| f.finish();
        let mut a = Fingerprint::new();
        a.push_str("scheme").push_u64(20).push_f64(1.0);
        let mut b = Fingerprint::new();
        b.push_str("scheme").push_u64(20).push_f64(1.0);
        assert_eq!(digest(&mut a), digest(&mut b), "deterministic");
        let mut c = Fingerprint::new();
        c.push_str("scheme").push_u64(21).push_f64(1.0);
        assert_ne!(digest(&mut a), digest(&mut c), "sensitive to params");
        // Length prefixing: ("ab","c") vs ("a","bc") must differ.
        let mut d = Fingerprint::new();
        d.push_str("ab").push_str("c");
        let mut e = Fingerprint::new();
        e.push_str("a").push_str("bc");
        assert_ne!(digest(&mut d), digest(&mut e));
    }

    #[test]
    fn escape_round_trips_control_characters() {
        for s in ["plain", "with\nnewline", "back\\slash", "\r\n\\n mix \\"] {
            assert_eq!(unescape(&escape(s)), s, "{s:?}");
        }
    }
}
