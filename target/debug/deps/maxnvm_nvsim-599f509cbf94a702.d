/root/repo/target/debug/deps/maxnvm_nvsim-599f509cbf94a702.d: crates/nvsim/src/lib.rs crates/nvsim/src/extrapolate.rs crates/nvsim/src/sram.rs

/root/repo/target/debug/deps/maxnvm_nvsim-599f509cbf94a702: crates/nvsim/src/lib.rs crates/nvsim/src/extrapolate.rs crates/nvsim/src/sram.rs

crates/nvsim/src/lib.rs:
crates/nvsim/src/extrapolate.rs:
crates/nvsim/src/sram.rs:
