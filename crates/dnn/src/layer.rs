//! Network layers with single-sample forward inference.
//!
//! Weights are kept in the 2-D layout the paper's sparse encodings consume
//! (§3.2.1): convolution kernels `[out_ch, in_ch*kh*kw]` (the NVDLA-
//! compatible 2-D mapping of the 3-D filters) and linear weights
//! `[out, in]`.

use crate::gemm::{gemm_into, sparse_gemm_into, GemmScratch};
use crate::sparse::SparseMatrix;
use crate::tensor::{conv_out_dims, im2col, im2col_into, Tensor};
use serde::{Deserialize, Serialize};

/// Reusable buffers for [`Layer::forward_batch_scratch`]. One instance per
/// worker keeps the whole batched forward pass allocation-free after
/// warm-up: the staging vectors grow to the largest layer once and are
/// reused by every subsequent layer and trial.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    /// GEMM packing buffers (see [`GemmScratch`]).
    pub gemm: GemmScratch,
    /// Right-hand-side staging: the `[k, n·p]` im2col / column-stacked
    /// input matrix of the current weight layer.
    pub cols: Vec<f32>,
    /// GEMM output staging (`[rows, n·p]`).
    pub out: Vec<f32>,
}

/// Geometry of the packed right-hand matrix built by
/// [`Layer::weight_rhs_into`]: the weight layer computes
/// `weight (rows×k) · rhs (k × n·per_cols)` and sample `s` owns output
/// columns `s·per_cols .. (s+1)·per_cols`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RhsMeta {
    /// Inner dimension (weight fan-in).
    pub k: usize,
    /// Output columns per sample (`out_h·out_w` for conv, 1 for linear).
    pub per_cols: usize,
    /// Output rows (out channels / neurons) — the weight matrix's rows.
    pub rows: usize,
    /// Shape of one sample's output tensor.
    pub out_sample_shape: Vec<usize>,
}

/// One layer of a [`Network`](crate::Network).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution. `weight` is `[out_ch, in_ch*kh*kw]`.
    Conv2d {
        /// Layer name (used to label weight matrices).
        name: String,
        /// Kernel matrix, `[out_ch, in_ch*kh*kw]`.
        weight: Tensor,
        /// Per-output-channel bias.
        bias: Vec<f32>,
        /// Input channels.
        in_ch: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride (same in both dimensions).
        stride: usize,
        /// Zero padding (same on all sides).
        pad: usize,
    },
    /// Fully connected layer. `weight` is `[out, in]`.
    Linear {
        /// Layer name.
        name: String,
        /// Weight matrix, `[out, in]`.
        weight: Tensor,
        /// Per-output bias.
        bias: Vec<f32>,
    },
    /// Rectified linear unit.
    ReLU,
    /// 2×2 max pooling with stride 2. Requires even spatial dimensions.
    MaxPool2,
    /// Global average pooling, `[c,h,w] -> [c]`.
    AvgPoolGlobal,
    /// Flattens `[c,h,w] -> [c*h*w]`.
    Flatten,
    /// Batch normalization (inference form, per-channel affine).
    BatchNorm2d {
        /// Scale per channel.
        gamma: Vec<f32>,
        /// Shift per channel.
        beta: Vec<f32>,
        /// Running mean per channel.
        mean: Vec<f32>,
        /// Running variance per channel.
        var: Vec<f32>,
    },
    /// Residual block: `out = body(x) + shortcut(x)` (empty shortcut =
    /// identity). Forward-only.
    Residual {
        /// Main path.
        body: Vec<Layer>,
        /// Shortcut path (empty = identity).
        shortcut: Vec<Layer>,
    },
}

impl Layer {
    /// Convenience constructor for a convolution with zero-initialized
    /// parameters.
    pub fn conv2d(
        name: &str,
        out_ch: usize,
        in_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Layer::Conv2d {
            name: name.to_string(),
            weight: Tensor::zeros(&[out_ch, in_ch * k * k]),
            bias: vec![0.0; out_ch],
            in_ch,
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// Convenience constructor for a linear layer with zero-initialized
    /// parameters.
    pub fn linear(name: &str, out: usize, inp: usize) -> Self {
        Layer::Linear {
            name: name.to_string(),
            weight: Tensor::zeros(&[out, inp]),
            bias: vec![0.0; out],
        }
    }

    /// Runs the layer on a single sample.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer.
    // maxnvm-lint: allow(R1/index-arith): every flattening ((ci*h+y)*w+x, o*inp row spans) uses the dims the entry match destructured from the validated input shape, so products stay within data().len().
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d {
                weight,
                bias,
                in_ch,
                kh,
                kw,
                stride,
                pad,
                ..
            } => {
                assert_eq!(x.shape().len(), 3, "conv input must be [c,h,w]");
                assert_eq!(x.shape()[0], *in_ch, "conv input channels");
                let (cols, oh, ow) = im2col(x, *kh, *kw, *stride, *pad);
                let out_ch = weight.shape()[0];
                let k = weight.shape()[1];
                let mut out = vec![0.0f32; out_ch * oh * ow];
                gemm_into(
                    &mut out,
                    weight.data(),
                    cols.data(),
                    out_ch,
                    k,
                    oh * ow,
                    &mut GemmScratch::default(),
                );
                for (ci, row) in out.chunks_mut(oh * ow).enumerate() {
                    for v in row.iter_mut() {
                        *v += bias[ci];
                    }
                }
                Tensor::from_vec(&[out_ch, oh, ow], out)
            }
            Layer::Linear { weight, bias, .. } => {
                assert_eq!(x.shape().len(), 1, "linear input must be flat");
                let (out, inp) = (weight.shape()[0], weight.shape()[1]);
                assert_eq!(x.len(), inp, "linear input size");
                let mut y = vec![0.0f32; out];
                for (o, yo) in y.iter_mut().enumerate() {
                    let row = &weight.data()[o * inp..(o + 1) * inp];
                    // Fused dot so the single-sample path is bit-identical
                    // to the batched GEMM column (then + bias, as there).
                    *yo = bias[o] + crate::gemm::fused_dot(row, x.data());
                }
                Tensor::from_vec(&[out], y)
            }
            Layer::ReLU => {
                Tensor::from_vec(x.shape(), x.data().iter().map(|&v| v.max(0.0)).collect())
            }
            Layer::MaxPool2 => {
                assert_eq!(x.shape().len(), 3, "pool input must be [c,h,w]");
                let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
                assert!(
                    h % 2 == 0 && w % 2 == 0,
                    "pool needs even dims, got {h}x{w}"
                );
                let (oh, ow) = (h / 2, w / 2);
                let mut out = vec![0.0f32; c * oh * ow];
                for ci in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut m = f32::NEG_INFINITY;
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let v = x.data()[(ci * h + oy * 2 + dy) * w + ox * 2 + dx];
                                    m = m.max(v);
                                }
                            }
                            out[(ci * oh + oy) * ow + ox] = m;
                        }
                    }
                }
                Tensor::from_vec(&[c, oh, ow], out)
            }
            Layer::AvgPoolGlobal => {
                assert_eq!(x.shape().len(), 3, "pool input must be [c,h,w]");
                let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
                let hw = (h * w) as f32;
                let out = (0..c)
                    .map(|ci| x.data()[ci * h * w..(ci + 1) * h * w].iter().sum::<f32>() / hw)
                    .collect();
                Tensor::from_vec(&[c], out)
            }
            Layer::Flatten => {
                let n = x.len();
                x.clone().reshape(&[n])
            }
            Layer::BatchNorm2d {
                gamma,
                beta,
                mean,
                var,
            } => {
                assert_eq!(x.shape().len(), 3, "batchnorm input must be [c,h,w]");
                let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
                assert_eq!(c, gamma.len(), "batchnorm channels");
                let mut out = x.data().to_vec();
                for ci in 0..c {
                    let inv = 1.0 / (var[ci] + 1e-5).sqrt();
                    for v in &mut out[ci * h * w..(ci + 1) * h * w] {
                        *v = gamma[ci] * (*v - mean[ci]) * inv + beta[ci];
                    }
                }
                Tensor::from_vec(x.shape(), out)
            }
            Layer::Residual { body, shortcut } => {
                let mut main = x.clone();
                for l in body {
                    main = l.forward(&main);
                }
                let mut sc = x.clone();
                for l in shortcut {
                    sc = l.forward(&sc);
                }
                assert_eq!(main.shape(), sc.shape(), "residual shape mismatch");
                let data = main
                    .data()
                    .iter()
                    .zip(sc.data())
                    .map(|(a, b)| a + b)
                    .collect();
                Tensor::from_vec(main.shape(), data)
            }
        }
    }

    /// Runs the layer on a batch of same-shaped samples, allocating a
    /// fresh scratch. See [`Self::forward_batch_scratch`].
    pub fn forward_batch(&self, xs: &[Tensor]) -> Vec<Tensor> {
        self.forward_batch_scratch(xs, &mut ForwardScratch::default())
    }

    /// Runs the layer on a batch of same-shaped samples, reusing the
    /// caller's staging buffers.
    ///
    /// Conv2d and Linear batch into a single matrix multiply (one GEMM
    /// per layer per trial instead of one per sample); other layers map
    /// [`Self::forward`] over the batch. Per-sample results are identical
    /// to [`Self::forward`]: each output element accumulates the same
    /// weight terms in the same ascending-k order, independent of the
    /// other columns (see [`crate::gemm`]).
    ///
    /// # Panics
    ///
    /// Panics if the samples disagree in shape or any is incompatible
    /// with the layer.
    pub fn forward_batch_scratch(
        &self,
        xs: &[Tensor],
        scratch: &mut ForwardScratch,
    ) -> Vec<Tensor> {
        if xs.is_empty() {
            return Vec::new();
        }
        if let Some(meta) = self.weight_rhs_into(xs, &mut scratch.cols) {
            return self.forward_from_rhs(
                &scratch.cols,
                &meta,
                xs.len(),
                &mut scratch.out,
                &mut scratch.gemm,
            );
        }
        match self {
            Layer::Residual { body, shortcut } => {
                let mut main = xs.to_vec();
                for l in body {
                    main = l.forward_batch_scratch(&main, scratch);
                }
                let mut sc = xs.to_vec();
                for l in shortcut {
                    sc = l.forward_batch_scratch(&sc, scratch);
                }
                main.iter()
                    .zip(&sc)
                    .map(|(a, b)| {
                        assert_eq!(a.shape(), b.shape(), "residual shape mismatch");
                        let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
                        Tensor::from_vec(a.shape(), data)
                    })
                    .collect()
            }
            _ => xs.iter().map(|x| self.forward(x)).collect(),
        }
    }

    /// The weight matrix and bias of a Conv2d/Linear layer, `None` for
    /// every other layer kind.
    pub fn weight_bias(&self) -> Option<(&Tensor, &[f32])> {
        match self {
            Layer::Conv2d { weight, bias, .. } | Layer::Linear { weight, bias, .. } => {
                Some((weight, bias))
            }
            _ => None,
        }
    }

    /// Packs a batch of inputs into the `[k, n·per_cols]` right-hand
    /// matrix this weight layer multiplies (im2col patches unfolded side
    /// by side for Conv2d, column-stacked vectors for Linear), reusing
    /// the caller's buffer. Returns `None` (leaving `rhs` untouched) for
    /// layers without weights.
    ///
    /// # Panics
    ///
    /// Panics if the samples disagree in shape or are incompatible with
    /// the layer.
    // maxnvm-lint: allow(R1/index-arith): rhs is resized to k*n in this fn before the k*n+s writes; the row index is asserted < inp and s < n by the sample loop.
    pub fn weight_rhs_into(&self, xs: &[Tensor], rhs: &mut Vec<f32>) -> Option<RhsMeta> {
        let n = xs.len();
        match self {
            Layer::Conv2d {
                weight,
                in_ch,
                kh,
                kw,
                stride,
                pad,
                ..
            } => {
                let shape = xs[0].shape().to_vec();
                assert_eq!(shape.len(), 3, "conv input must be [c,h,w]");
                assert_eq!(shape[0], *in_ch, "conv input channels");
                let (c, h, w) = (shape[0], shape[1], shape[2]);
                let (oh, ow) = conv_out_dims(h, w, *kh, *kw, *stride, *pad);
                assert!(oh > 0 && ow > 0, "empty convolution output");
                let p = oh * ow;
                let k = c * kh * kw;
                rhs.clear();
                rhs.resize(k * n * p, 0.0);
                for (s, x) in xs.iter().enumerate() {
                    assert_eq!(x.shape(), &shape[..], "batch shapes must agree");
                    im2col_into(
                        x.data(),
                        c,
                        h,
                        w,
                        *kh,
                        *kw,
                        *stride,
                        *pad,
                        rhs,
                        n * p,
                        s * p,
                    );
                }
                Some(RhsMeta {
                    k,
                    per_cols: p,
                    rows: weight.shape()[0],
                    out_sample_shape: vec![weight.shape()[0], oh, ow],
                })
            }
            Layer::Linear { weight, .. } => {
                let (out_dim, inp) = (weight.shape()[0], weight.shape()[1]);
                rhs.clear();
                rhs.resize(inp * n, 0.0);
                for (s, x) in xs.iter().enumerate() {
                    assert_eq!(x.shape().len(), 1, "linear input must be flat");
                    assert_eq!(x.len(), inp, "linear input size");
                    for (k, &v) in x.data().iter().enumerate() {
                        rhs[k * n + s] = v;
                    }
                }
                Some(RhsMeta {
                    k: inp,
                    per_cols: 1,
                    rows: out_dim,
                    out_sample_shape: vec![out_dim],
                })
            }
            _ => None,
        }
    }

    /// Multiplies this weight layer against a packed right-hand matrix
    /// (from [`Self::weight_rhs_into`]), adds the bias, and splits the
    /// result into per-sample tensors. `out` is staging for the GEMM
    /// result. Returns empty for layers without weights.
    pub fn forward_from_rhs(
        &self,
        rhs: &[f32],
        meta: &RhsMeta,
        n: usize,
        out: &mut Vec<f32>,
        gs: &mut GemmScratch,
    ) -> Vec<Tensor> {
        let Some((weight, bias)) = self.weight_bias() else {
            return Vec::new();
        };
        let total = n * meta.per_cols;
        out.clear();
        out.resize(meta.rows * total, 0.0);
        gemm_into(out, weight.data(), rhs, meta.rows, meta.k, total, gs);
        Self::bias_and_split(out, bias, meta, n)
    }

    /// [`Self::forward_from_rhs`] computed from a sparse-encoded weight
    /// matrix instead of the layer's dense tensor: same packed right-hand
    /// matrix, same bias and per-sample split, but the multiply runs
    /// O(nnz) via [`sparse_gemm_into`] — bit-identical to the dense
    /// product of `w`'s materialization (see [`crate::gemm`]).
    ///
    /// # Panics
    ///
    /// Asserts `w` matches the layer's weight shape.
    pub fn forward_from_rhs_sparse(
        &self,
        w: &SparseMatrix,
        rhs: &[f32],
        meta: &RhsMeta,
        n: usize,
        out: &mut Vec<f32>,
        gs: &mut GemmScratch,
    ) -> Vec<Tensor> {
        let Some((weight, bias)) = self.weight_bias() else {
            return Vec::new();
        };
        assert_eq!(
            (w.rows(), w.cols()),
            (weight.shape()[0], weight.shape()[1]),
            "sparse weight shape vs layer"
        );
        let total = n * meta.per_cols;
        out.clear();
        out.resize(meta.rows * total, 0.0);
        sparse_gemm_into(out, w, rhs, total, gs);
        Self::bias_and_split(out, bias, meta, n)
    }

    /// Shared tail of the RHS paths: adds the per-row bias to the GEMM
    /// result and splits it into per-sample tensors.
    // maxnvm-lint: allow(R1/index-arith): meta describes the very buffer forward_from_rhs sized from it, so o*total+s*p+p <= out.len() by construction.
    fn bias_and_split(out: &mut [f32], bias: &[f32], meta: &RhsMeta, n: usize) -> Vec<Tensor> {
        let total = n * meta.per_cols;
        for (o, row) in out.chunks_mut(total).enumerate() {
            for v in row.iter_mut() {
                *v += bias[o];
            }
        }
        let p = meta.per_cols;
        (0..n)
            .map(|s| {
                let mut data = vec![0.0f32; meta.rows * p];
                for (o, chunk) in data.chunks_mut(p).enumerate() {
                    chunk.copy_from_slice(&out[o * total + s * p..o * total + s * p + p]);
                }
                Tensor::from_vec(&meta.out_sample_shape, data)
            })
            .collect()
    }

    /// Number of stored weights (excluding biases and batch-norm
    /// parameters) — what the paper counts as DNN "parameters" for storage.
    pub fn weight_count(&self) -> usize {
        match self {
            Layer::Conv2d { weight, .. } | Layer::Linear { weight, .. } => weight.len(),
            Layer::Residual { body, shortcut } => {
                body.iter().chain(shortcut).map(Layer::weight_count).sum()
            }
            _ => 0,
        }
    }

    /// Number of weight matrices this layer contributes to
    /// [`crate::Network::weight_matrices`] (recursing into residual
    /// blocks) — used to keep per-matrix side tables aligned with layer
    /// positions.
    pub fn weight_matrix_count(&self) -> usize {
        match self {
            Layer::Conv2d { .. } | Layer::Linear { .. } => 1,
            Layer::Residual { body, shortcut } => body
                .iter()
                .chain(shortcut)
                .map(Layer::weight_matrix_count)
                .sum(),
            _ => 0,
        }
    }

    /// Whether this layer participates in backprop training (residual and
    /// batch-norm layers are forward-only in this substrate).
    pub fn supports_backprop(&self) -> bool {
        !matches!(
            self,
            Layer::Residual { .. } | Layer::BatchNorm2d { .. } | Layer::AvgPoolGlobal
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -0.5]);
        let y = Layer::ReLU.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn linear_computes_affine() {
        let l = Layer::Linear {
            name: "fc".into(),
            weight: Tensor::from_vec(&[2, 3], vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]),
            bias: vec![1.0, -1.0],
        };
        let y = l.forward(&Tensor::from_vec(&[3], vec![2.0, 4.0, 6.0]));
        assert_eq!(y.data(), &[2.0 - 6.0 + 1.0, 6.0 - 1.0]);
    }

    #[test]
    fn conv_geometry_and_bias() {
        let mut l = Layer::conv2d("c1", 2, 1, 3, 1, 1);
        if let Layer::Conv2d { bias, .. } = &mut l {
            bias[1] = 5.0;
        }
        let y = l.forward(&Tensor::zeros(&[1, 8, 8]));
        assert_eq!(y.shape(), &[2, 8, 8]);
        // Zero weights: channel 0 all zero, channel 1 all bias.
        assert!(y.data()[..64].iter().all(|&v| v == 0.0));
        assert!(y.data()[64..].iter().all(|&v| v == 5.0));
    }

    #[test]
    fn maxpool_takes_window_max() {
        let x = Tensor::from_vec(&[1, 2, 4], vec![1.0, 2.0, 5.0, 0.0, 3.0, 4.0, -1.0, 6.0]);
        let y = Layer::MaxPool2.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[4.0, 6.0]);
    }

    #[test]
    fn global_avg_pool() {
        let x = Tensor::from_vec(&[2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]);
        let y = Layer::AvgPoolGlobal.forward(&x);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn flatten_reshapes() {
        let x = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(Layer::Flatten.forward(&x).shape(), &[24]);
    }

    #[test]
    fn batchnorm_normalizes_channel() {
        let l = Layer::BatchNorm2d {
            gamma: vec![2.0],
            beta: vec![1.0],
            mean: vec![3.0],
            var: vec![4.0],
        };
        let x = Tensor::from_vec(&[1, 1, 2], vec![3.0, 7.0]);
        let y = l.forward(&x);
        assert!((y.data()[0] - 1.0).abs() < 1e-4); // (3-3)/2*2+1
        assert!((y.data()[1] - 5.0).abs() < 1e-3); // (7-3)/2*2+1
    }

    #[test]
    fn residual_identity_shortcut_adds_input() {
        let block = Layer::Residual {
            body: vec![Layer::ReLU],
            shortcut: vec![],
        };
        let x = Tensor::from_vec(&[3], vec![-2.0, 0.0, 3.0]);
        let y = block.forward(&x);
        assert_eq!(y.data(), &[-2.0, 0.0, 6.0]);
    }

    #[test]
    fn weight_count_recurses_residual() {
        let block = Layer::Residual {
            body: vec![Layer::conv2d("a", 4, 4, 3, 1, 1), Layer::ReLU],
            shortcut: vec![Layer::conv2d("b", 4, 4, 1, 1, 0)],
        };
        assert_eq!(block.weight_count(), 4 * 4 * 9 + 4 * 4);
    }

    #[test]
    #[should_panic(expected = "even dims")]
    fn maxpool_rejects_odd_dims() {
        Layer::MaxPool2.forward(&Tensor::zeros(&[1, 3, 4]));
    }
}
