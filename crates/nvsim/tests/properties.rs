//! Property tests for the array characterizer: physical sanity must hold
//! across the whole request space, not just the calibrated points.

use maxnvm_envm::CellTechnology;
use maxnvm_nvsim::{characterize, characterize_config, ArrayRequest, OptTarget};
use proptest::prelude::*;

fn any_tech() -> impl Strategy<Value = CellTechnology> {
    prop_oneof![
        Just(CellTechnology::MlcCtt),
        Just(CellTechnology::MlcRram),
        Just(CellTechnology::OptMlcRram),
        Just(CellTechnology::SlcRram),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn area_grows_with_cells(tech in any_tech(), cells in 1_000_000u64..200_000_000) {
        let bpc = tech.max_bits_per_cell();
        let small = characterize(&ArrayRequest::new(tech, cells, bpc), OptTarget::Area)
            .expect("feasible organization");
        let big = characterize(&ArrayRequest::new(tech, cells * 2, bpc), OptTarget::Area)
            .expect("feasible organization");
        prop_assert!(big.area_mm2 > small.area_mm2);
        // And roughly proportionally: doubling cells less than triples area.
        prop_assert!(big.area_mm2 < small.area_mm2 * 3.0);
    }

    #[test]
    fn all_metrics_are_positive_and_finite(
        tech in any_tech(),
        cells in 100_000u64..50_000_000,
        target_idx in 0usize..5,
    ) {
        let bpc = tech.max_bits_per_cell();
        let d = characterize(&ArrayRequest::new(tech, cells, bpc), OptTarget::ALL[target_idx])
            .expect("feasible organization");
        prop_assert!(d.area_mm2.is_finite() && d.area_mm2 > 0.0);
        prop_assert!(d.read_latency_ns.is_finite() && d.read_latency_ns > 0.0);
        prop_assert!(d.read_energy_pj.is_finite() && d.read_energy_pj > 0.0);
        prop_assert!(d.read_bandwidth_gbps.is_finite() && d.read_bandwidth_gbps > 0.0);
        prop_assert!(d.leakage_mw.is_finite() && d.leakage_mw >= 0.0);
        prop_assert!(d.write_energy_per_cell_pj > 0.0);
        prop_assert!((8..=128).contains(&d.access_bits));
    }

    #[test]
    fn capacity_is_preserved(tech in any_tech(), mb in 1u64..64) {
        let bpc = tech.max_bits_per_cell();
        let bits = mb * 1024 * 1024 * 8;
        let req = ArrayRequest::with_capacity_bits(tech, bits, bpc);
        prop_assert!(req.capacity_bits() >= bits);
        prop_assert!(req.capacity_bits() < bits + bpc as u64);
    }

    #[test]
    fn explicit_configs_cover_requested_cells(
        cells in 100_000u64..10_000_000,
        rows_pow in 6u32..11,
        cols_pow in 6u32..10,
        mux_pow in 0u32..5,
    ) {
        let rows = 1u32 << rows_pow;
        let cols = 1u32 << cols_pow;
        let mux = 1u32 << mux_pow.min(cols_pow);
        let req = ArrayRequest::new(CellTechnology::MlcCtt, cells, 3);
        if let Some(d) = characterize_config(&req, rows, cols, mux) {
            let provided = d.config.subarrays as u64 * rows as u64 * cols as u64;
            prop_assert!(provided >= cells, "{provided} < {cells}");
        }
    }
}
