//! Regenerates paper Table 3: the NVSim sweep parameters and NVDLA
//! baseline configurations this reproduction uses.

use maxnvm_nvdla::NvdlaConfig;
use maxnvm_nvsim::OptTarget;

fn main() {
    println!("Table 3 (left): NVSim-style sweep parameters");
    println!("  Data width        8 - 128 bits");
    println!("  Subarray rows     64 - 2048");
    println!("  Subarray columns  64 - 1024");
    println!("  Column mux        1 - 32");
    print!("  Optimization targets: ");
    for (i, t) in OptTarget::ALL.iter().enumerate() {
        if i > 0 {
            print!(", ");
        }
        print!("{t:?}");
    }
    println!("\n");
    println!("Table 3 (right): NVDLA baselines");
    println!("{:<28} {:>12} {:>12}", "", "NVDLA-64", "NVDLA-1024");
    let a = NvdlaConfig::nvdla_64();
    let b = NvdlaConfig::nvdla_1024();
    let row = |label: &str, va: String, vb: String| {
        println!("{label:<28} {va:>12} {vb:>12}");
    };
    row(
        "Conv buffer",
        format!("{}KB", a.conv_buffer_kb),
        format!("{}KB", b.conv_buffer_kb),
    );
    row("Number of MACs", a.macs.to_string(), b.macs.to_string());
    row(
        "SRAM capacity",
        format!("{}KB", a.sram_kb),
        format!("{}KB", b.sram_kb),
    );
    row(
        "Frequency",
        format!("{}GHz", a.freq_ghz),
        format!("{}GHz", b.freq_ghz),
    );
    row(
        "Datapath area",
        format!("{}mm2", a.datapath_area_mm2),
        format!("{}mm2", b.datapath_area_mm2),
    );
    row(
        "Datapath power (calib.)",
        format!("{}mW", a.datapath_power_mw),
        format!("{}mW", b.datapath_power_mw),
    );
    row(
        "SRAM BW",
        format!("{}GB/s", a.sram_bw_gbps),
        format!("{}GB/s", b.sram_bw_gbps),
    );
    row(
        "DRAM read BW",
        format!("{}GB/s", a.dram_bw_gbps),
        format!("{}GB/s", b.dram_bw_gbps),
    );
    row(
        "LPDDR4 DRAM power",
        format!("{}mW", a.dram_power_mw),
        format!("{}mW", b.dram_power_mw),
    );
}
