/root/repo/target/debug/deps/serde_derive-09b43c6eb63ef636.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-09b43c6eb63ef636: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
