//! Accuracy evaluators: end-to-end network inference for the trainable
//! stand-ins, and a weight-corruption sensitivity proxy for the
//! ImageNet-scale specs.

use maxnvm_dnn::network::{LayerMatrix, Network};
use maxnvm_dnn::tensor::Tensor;

/// Relative weight-MSE at which the sensitivity proxy has risen to
/// `1 - 1/e` of its saturation error. Chosen so that (a) sub-0.1% relative
/// perturbations (adjacent-cluster flips at realistic fault rates) stay
/// within even LeNet5's 0.05% ITN bound and (b) wholesale misalignment
/// (m_rel near 1) saturates toward random-guess error — consistent with
/// the DNN perturbation-tolerance literature the paper builds on
/// [44, 57, 58].
pub const PROXY_M0: f64 = 0.05;

/// Reusable per-worker evaluation state: holds the network clone a
/// [`NetworkEval`] writes decoded weights into, so a Monte-Carlo campaign
/// clones each network once per worker instead of once per trial.
///
/// A scratch value is tied to the first evaluator that uses it (the lazily
/// cloned network keeps that evaluator's architecture); do not share one
/// scratch across different evaluators.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    net: Option<Network>,
}

/// Maps decoded weight matrices to a classification error estimate.
pub trait AccuracyEval {
    /// Error of the unperturbed model.
    fn baseline_error(&self) -> f64;
    /// Error with the given (possibly corrupted) weights in place.
    fn eval(&self, mats: &[LayerMatrix]) -> f64;
    /// [`AccuracyEval::eval`] with reusable per-worker state. The default
    /// delegates to `eval`; evaluators with per-call allocations (network
    /// clones) override it so the allocation happens once per scratch.
    fn eval_scratch(&self, mats: &[LayerMatrix], scratch: &mut EvalScratch) -> f64 {
        let _ = scratch;
        self.eval(mats)
    }
}

/// End-to-end evaluator: writes the matrices into a real network and
/// measures classification error on a held-out test set.
#[derive(Debug, Clone)]
pub struct NetworkEval {
    net: Network,
    test: Vec<(Tensor, usize)>,
    baseline: f64,
}

impl NetworkEval {
    /// Creates an evaluator; measures the baseline error immediately.
    pub fn new(net: Network, test: Vec<(Tensor, usize)>) -> Self {
        let baseline = net.error_rate(&test);
        Self {
            net,
            test,
            baseline,
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.net
    }
}

impl AccuracyEval for NetworkEval {
    fn baseline_error(&self) -> f64 {
        self.baseline
    }

    fn eval(&self, mats: &[LayerMatrix]) -> f64 {
        self.eval_scratch(mats, &mut EvalScratch::default())
    }

    fn eval_scratch(&self, mats: &[LayerMatrix], scratch: &mut EvalScratch) -> f64 {
        // Every weight of every matrix is overwritten below, so a stale
        // scratch network from a previous trial cannot leak state.
        let net = scratch.net.get_or_insert_with(|| self.net.clone());
        net.set_weight_matrices(mats);
        net.error_rate(&self.test)
    }
}

/// Sensitivity-proxy evaluator for models too large to train in this
/// substrate: classification error is estimated from the relative
/// weight-MSE between the decoded matrices and a clean reference,
///
/// `err = base + (sat - base) · (1 - exp(-m_rel / M0))`,
///
/// where `m_rel = Σ (w' - w)² / Σ w²` aggregated over layers. The shape —
/// tiny perturbations harmless, misalignment catastrophic — is what the
/// paper's Fig. 5 measures end-to-end; the constant is documented at
/// [`PROXY_M0`].
#[derive(Debug, Clone)]
pub struct ProxyEval {
    reference: Vec<LayerMatrix>,
    baseline: f64,
    saturation: f64,
}

impl ProxyEval {
    /// Creates a proxy against clean reference matrices.
    ///
    /// `baseline` is the model's reported clean error; `saturation` the
    /// error of random guessing (e.g. `0.999` for ImageNet top-1).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= baseline < saturation <= 1`.
    pub fn new(reference: Vec<LayerMatrix>, baseline: f64, saturation: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&baseline) && baseline < saturation && saturation <= 1.0,
            "invalid error bounds {baseline}, {saturation}"
        );
        Self {
            reference,
            baseline,
            saturation,
        }
    }

    /// The aggregated relative weight-MSE of `mats` against the reference.
    pub fn relative_mse(&self, mats: &[LayerMatrix]) -> f64 {
        assert_eq!(mats.len(), self.reference.len(), "layer count mismatch");
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (m, r) in mats.iter().zip(&self.reference) {
            assert_eq!(
                (m.rows, m.cols),
                (r.rows, r.cols),
                "layer shape mismatch for {}",
                r.name
            );
            for (a, b) in m.data.iter().zip(&r.data) {
                num += ((a - b) as f64).powi(2);
                den += (*b as f64).powi(2);
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Maps a relative MSE to an error estimate (the curve above).
    pub fn error_from_mse(&self, m_rel: f64) -> f64 {
        self.baseline + (self.saturation - self.baseline) * (1.0 - (-m_rel / PROXY_M0).exp())
    }
}

impl AccuracyEval for ProxyEval {
    fn baseline_error(&self) -> f64 {
        self.baseline
    }

    fn eval(&self, mats: &[LayerMatrix]) -> f64 {
        self.error_from_mse(self.relative_mse(mats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_dnn::data::gaussian_clusters;
    use maxnvm_dnn::train::{sgd_train, TrainConfig};
    use maxnvm_dnn::zoo::mlp_mini;

    fn trained_eval() -> NetworkEval {
        let all = gaussian_clusters(8, 3, 400, 2.5, 7);
        let (train, test) = all.split_at(300);
        let mut net = mlp_mini(8, 3, 16, 1);
        sgd_train(
            &mut net,
            train,
            &TrainConfig {
                epochs: 15,
                lr: 0.02,
                momentum: 0.9,
                seed: 2,
            },
        )
        .unwrap();
        NetworkEval::new(net, test.to_vec())
    }

    #[test]
    fn network_eval_baseline_is_learned() {
        let eval = trained_eval();
        assert!(eval.baseline_error() < 0.15, "{}", eval.baseline_error());
    }

    #[test]
    fn network_eval_clean_weights_reproduce_baseline() {
        let eval = trained_eval();
        let mats = eval.network().weight_matrices();
        assert_eq!(eval.eval(&mats), eval.baseline_error());
    }

    #[test]
    fn network_eval_scratch_reuse_matches_fresh_eval() {
        let eval = trained_eval();
        let mut scratch = EvalScratch::default();
        let clean = eval.network().weight_matrices();
        assert_eq!(
            eval.eval_scratch(&clean, &mut scratch),
            eval.baseline_error()
        );
        let mut corrupted = clean.clone();
        for v in &mut corrupted[0].data {
            *v += 1.7;
        }
        assert_eq!(
            eval.eval_scratch(&corrupted, &mut scratch),
            eval.eval(&corrupted),
            "reused scratch must match a fresh evaluation"
        );
        // The corrupted trial leaves no residue in the scratch network.
        assert_eq!(
            eval.eval_scratch(&clean, &mut scratch),
            eval.baseline_error()
        );
    }

    #[test]
    fn network_eval_scrambled_weights_destroy_accuracy() {
        let eval = trained_eval();
        let mut mats = eval.network().weight_matrices();
        for m in &mut mats {
            for (i, v) in m.data.iter_mut().enumerate() {
                *v = ((i * 2654435761) % 17) as f32 / 17.0 - 0.5;
            }
        }
        let err = eval.eval(&mats);
        assert!(
            err > eval.baseline_error() + 0.2,
            "scrambled error {err} vs baseline {}",
            eval.baseline_error()
        );
    }

    #[test]
    fn proxy_is_monotone_in_corruption() {
        let refm = vec![LayerMatrix::new(
            "l",
            4,
            4,
            (0..16).map(|i| i as f32).collect(),
        )];
        let proxy = ProxyEval::new(refm.clone(), 0.1, 0.9);
        assert_eq!(proxy.eval(&refm), 0.1);
        let mut light = refm.clone();
        light[0].data[3] += 0.5;
        let mut heavy = refm.clone();
        for v in &mut heavy[0].data {
            *v = -*v;
        }
        let e_light = proxy.eval(&light);
        let e_heavy = proxy.eval(&heavy);
        assert!(0.1 < e_light && e_light < e_heavy);
        assert!(e_heavy > 0.85, "wholesale corruption saturates: {e_heavy}");
    }

    #[test]
    fn proxy_tiny_perturbations_stay_within_tight_bounds() {
        // A 2e-5 relative MSE (value faults at realistic rates: LeNet5 has
        // ~80k value cells at ~9e-6 mean rate, so ~0.7 corrupted weights of
        // 60k non-zeros) must stay within LeNet5's 0.05% ITN bound.
        let refm = vec![LayerMatrix::new("l", 1, 1, vec![1.0])];
        let proxy = ProxyEval::new(refm, 0.0083, 0.9);
        let bumped = proxy.error_from_mse(2e-5);
        assert!(bumped - 0.0083 < 0.0005, "delta {}", bumped - 0.0083);
    }

    #[test]
    #[should_panic(expected = "layer shape mismatch")]
    fn proxy_rejects_mismatched_shapes() {
        let refm = vec![LayerMatrix::new("l", 2, 2, vec![1.0; 4])];
        let proxy = ProxyEval::new(refm, 0.1, 0.9);
        proxy.eval(&[LayerMatrix::new("l", 1, 4, vec![1.0; 4])]);
    }
}
