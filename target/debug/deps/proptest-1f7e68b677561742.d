/root/repo/target/debug/deps/proptest-1f7e68b677561742.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-1f7e68b677561742: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
