/root/repo/target/debug/deps/maxnvm-13a9390f54ed1aef.d: crates/core/src/bin/maxnvm.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm-13a9390f54ed1aef.rmeta: crates/core/src/bin/maxnvm.rs Cargo.toml

crates/core/src/bin/maxnvm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
