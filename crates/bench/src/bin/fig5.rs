//! Regenerates paper Fig. 5: impact of lightweight error correction (ECC)
//! or mitigation (IdxSync) on classification error for the MNIST-LeNet5
//! stand-in, with each data structure isolated (all others stored
//! perfectly) and stored as CTT SLC / MLC2 / MLC3.
//!
//! The stand-in is a *real trained network* on the synthetic-digit task;
//! errors are measured end-to-end through encode → store → inject →
//! decode → inference (the `VulnerabilityStudy` API).

use maxnvm_dnn::data::SyntheticDigits;
use maxnvm_dnn::train::{sgd_train, TrainConfig};
use maxnvm_dnn::zoo::{lenet_mini, prune_to_sparsity};
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_envm::{CellTechnology, SenseAmp};
use maxnvm_faultsim::campaign::Campaign;
use maxnvm_faultsim::evaluate::{AccuracyEval, NetworkEval};
use maxnvm_faultsim::vulnerability::VulnerabilityStudy;

fn main() {
    // Train the LeNet5 stand-in end-to-end; prune with retraining (§3.1.2).
    println!("Training the LeNet5 stand-in on synthetic digits...");
    let data = SyntheticDigits::generate(1500, 42);
    let mut net = lenet_mini(7);
    sgd_train(
        &mut net,
        &data.train,
        &TrainConfig {
            epochs: 6,
            lr: 0.005,
            momentum: 0.9,
            seed: 1,
        },
    )
    .expect("trainable");
    let mut mats = net.weight_matrices();
    for m in &mut mats {
        prune_to_sparsity(&mut m.data, 0.6);
    }
    net.set_weight_matrices(&mats);
    sgd_train(
        &mut net,
        &data.train,
        &TrainConfig {
            epochs: 2,
            lr: 0.002,
            momentum: 0.9,
            seed: 2,
        },
    )
    .expect("trainable");
    let mut mats = net.weight_matrices();
    for m in &mut mats {
        prune_to_sparsity(&mut m.data, 0.6);
    }
    net.set_weight_matrices(&mats);
    let eval = NetworkEval::new(net, data.test);
    println!(
        "Pruned+retrained baseline error: {:.2}%",
        eval.baseline_error() * 100.0
    );
    let clustered: Vec<ClusteredLayer> = mats
        .iter()
        .map(|m| ClusteredLayer::from_matrix(m, 4, 5))
        .collect();

    // The faults of interest are rare at the stand-in's small scale; the
    // paper's models have 100-1000x more cells. Scale the per-cell rates
    // so the *expected fault counts per structure* match an LeNet5-sized
    // deployment; scale the IdxSync block likewise (see EXPERIMENTS.md).
    let study = VulnerabilityStudy {
        campaign: Campaign {
            trials: 30,
            seed: 9,
            rate_scale: 150.0,
        },
        tech: CellTechnology::MlcCtt,
        sense_amp: SenseAmp::paper_default(),
        sync_block_bits: 64,
    };

    println!(
        "\nFig. 5: isolated-structure classification error (%), CTT, {} trials",
        study.campaign.trials
    );
    println!(
        "{:<28} {:>8} {:>8} {:>8}",
        "structure [+protection]", "SLC", "MLC2", "MLC3"
    );
    for row in study.run_fig5(&clustered, &eval).expect("study") {
        println!(
            "{:<28} {:>7.2}% {:>7.2}% {:>7.2}%",
            row.label(),
            row.mean_error[0] * 100.0,
            row.mean_error[1] * 100.0,
            row.mean_error[2] * 100.0
        );
    }
    println!();
    println!("Expected shape (paper): sparse metadata is far more vulnerable than");
    println!("values; the bitmask is worst; ECC and IdxSync both rescue MLC3.");
}
