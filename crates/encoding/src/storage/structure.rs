//! One structure's bit-stream packed into MLC cells, and the statistics
//! a decode pass reports.

use crate::StructureKind;
use maxnvm_bits::{BitBuffer, BitReader};
use maxnvm_ecc::{BlockCodec, SecDed};
use maxnvm_envm::gray::{binary_to_level, level_to_binary};
use maxnvm_envm::MlcConfig;
use serde::{Deserialize, Serialize};

/// One structure's bits, packed into MLC cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredStructure {
    /// Which structure this is.
    pub kind: StructureKind,
    /// Bits per cell.
    pub bpc: MlcConfig,
    /// Whether levels are Gray-coded (always true when ECC-protected).
    pub gray: bool,
    /// SEC-DED code, if protected.
    pub ecc: Option<SecDed>,
    /// Original stream length in bits (pre-ECC).
    pub payload_bits: usize,
    /// Stored length in bits (post-ECC).
    pub stored_bits: usize,
    /// Programmed cell levels.
    pub cells: Vec<u8>,
}

impl StoredStructure {
    /// Packs a bit stream into cells.
    pub(crate) fn pack(
        kind: StructureKind,
        stream: &BitBuffer,
        bpc: MlcConfig,
        ecc: Option<SecDed>,
    ) -> Self {
        let payload_bits = stream.len();
        let encoded;
        let bits: &BitBuffer = match &ecc {
            Some(code) => {
                encoded = BlockCodec::new(*code).encode(stream);
                &encoded
            }
            None => stream,
        };
        let stored_bits = bits.len();
        let w = bpc.bits() as usize;
        let gray = ecc.is_some();
        let ncells = stored_bits
            .div_ceil(w)
            .max(if stored_bits == 0 { 0 } else { 1 });
        let mut cells = Vec::with_capacity(ncells);
        let mut rd = BitReader::new(bits);
        loop {
            let remaining = rd.remaining();
            if remaining == 0 {
                break;
            }
            let take = remaining.min(w);
            // `take <= remaining`, so the read never comes up short.
            let mut v = rd.read_bits(take).unwrap_or(0) as u8;
            if take < w {
                // final partial cell: zero-pad high bits
                v &= (1u8 << w) - 1;
            }
            let level = if gray {
                binary_to_level(v as u64, bpc.bits())
            } else {
                v
            };
            cells.push(level);
        }
        Self {
            kind,
            bpc,
            gray,
            ecc,
            payload_bits,
            stored_bits,
            cells,
        }
    }

    /// Unpacks cells into the raw stored bit stream (the post-ECC-encode
    /// layout), before any ECC decode — the stream a cell's bits splice
    /// into directly.
    pub(crate) fn unpack_stored_bits(&self, cells: &[u8]) -> BitBuffer {
        let w = self.bpc.bits() as usize;
        let mut bits = BitBuffer::with_capacity(self.stored_bits);
        for &level in cells {
            let v = if self.gray {
                level_to_binary(level, self.bpc.bits())
            } else {
                level as u64
            };
            let take = (self.stored_bits - bits.len()).min(w);
            bits.push_bits(v & ((1u64 << take) - 1), take);
            if bits.len() >= self.stored_bits {
                break;
            }
        }
        bits
    }

    /// The stored bit range `start..end` that cell `cell` holds.
    pub(crate) fn cell_bit_range(&self, cell: usize) -> (usize, usize) {
        let w = self.bpc.bits() as usize;
        let start = cell * w;
        (start, (start + w).min(self.stored_bits))
    }

    /// The bit pattern a cell read back at `level` contributes to the
    /// stored stream (Gray-decoded when the structure is Gray-coded).
    pub(crate) fn cell_bits(&self, level: u8) -> u64 {
        if self.gray {
            level_to_binary(level, self.bpc.bits())
        } else {
            level as u64
        }
    }

    /// Unpacks cells back into the payload stream, applying ECC decode.
    /// Returns the stream plus (corrected, uncorrectable) codeword counts.
    pub(crate) fn unpack_cells(&self, cells: &[u8]) -> (BitBuffer, usize, usize) {
        let bits = self.unpack_stored_bits(cells);
        match &self.ecc {
            Some(code) => {
                let dec = BlockCodec::new(*code).decode(&bits, self.payload_bits);
                (dec.data, dec.corrected, dec.uncorrectable)
            }
            None => (bits, 0, 0),
        }
    }

    /// Number of memory cells used.
    pub fn num_cells(&self) -> u64 {
        self.cells.len() as u64
    }
}

/// Statistics from one decode pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeStats {
    /// Cells whose level flipped under fault injection.
    pub cell_faults: usize,
    /// ECC codewords with a corrected single error.
    pub ecc_corrected: usize,
    /// ECC codewords with a detected-uncorrectable error.
    pub ecc_uncorrectable: usize,
}

impl DecodeStats {
    /// Accumulates another pass's statistics into this one.
    pub fn absorb(&mut self, other: DecodeStats) {
        self.cell_faults += other.cell_faults;
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_uncorrectable += other.ecc_uncorrectable;
    }
}
