/root/repo/target/debug/deps/fig10-b6c03b0e02a48da8.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-b6c03b0e02a48da8: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
